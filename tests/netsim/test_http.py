"""Tests for the simulated HTTP substrate."""

import pytest

from repro.netsim.http import (
    HeaderMap,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    VirtualNetwork,
    VirtualServer,
    reason_phrase,
)


class TestHeaderMap:
    def test_case_insensitive_get(self):
        headers = HeaderMap({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_set_replaces(self):
        headers = HeaderMap()
        headers.set("X-Test", "1")
        headers.set("x-test", "2")
        assert headers.get("X-Test") == "2"
        assert len(headers) == 1

    def test_contains_and_remove(self):
        headers = HeaderMap({"Server": "cloudflare"})
        assert "server" in headers
        headers.remove("SERVER")
        assert "server" not in headers

    def test_copy_is_independent(self):
        original = HeaderMap({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original.get("A") == "1"

    def test_default(self):
        assert HeaderMap().get("missing", "x") == "x"


class TestHttpRequest:
    def test_root_page_detection(self):
        assert HttpRequest("GET", "example.com", "/").is_root_page
        assert not HttpRequest("GET", "example.com", "/index.html").is_root_page
        assert not HttpRequest("HEAD", "example.com", "/").is_root_page

    def test_url(self):
        request = HttpRequest("GET", "example.com", "/a/b")
        assert request.url == "https://example.com/a/b"

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            HttpRequest("FETCH", "example.com")

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "example.com", "index.html")


class TestHttpResponse:
    def test_ok(self):
        assert HttpResponse(200).ok
        assert HttpResponse(204).ok
        assert not HttpResponse(404).ok

    def test_content_type_strips_parameters(self):
        response = HttpResponse(200, HeaderMap({"Content-Type": "text/HTML; charset=utf-8"}))
        assert response.content_type == "text/html"

    def test_cf_detection(self):
        response = HttpResponse(200, HeaderMap({"cf-ray": "abc-SFO"}))
        assert response.served_by_cloudflare
        assert not HttpResponse(200).served_by_cloudflare

    def test_reason_phrases(self):
        assert reason_phrase(200) == "OK"
        assert reason_phrase(522) == "Connection Timed Out"
        assert reason_phrase(599) == "Unknown"


class TestVirtualNetwork:
    def test_routing(self):
        network = VirtualNetwork()
        network.register(VirtualServer(host="example.com"))
        response = network.route(HttpRequest("GET", "example.com"))
        assert response.status == 200
        assert b"example.com" in response.body

    def test_unknown_host_raises(self):
        with pytest.raises(HttpError):
            VirtualNetwork().route(HttpRequest("GET", "nowhere.invalid"))

    def test_cloudflare_server_stamps_ray(self):
        network = VirtualNetwork()
        network.register(VirtualServer(host="cf.example", behind_cloudflare=True, colo="FRA"))
        response = network.route(HttpRequest("HEAD", "cf.example"))
        assert response.served_by_cloudflare
        assert response.headers.get("cf-ray").endswith("-FRA")
        assert response.headers.get("Server") == "cloudflare"

    def test_ray_ids_unique(self):
        network = VirtualNetwork()
        network.register(VirtualServer(host="cf.example", behind_cloudflare=True))
        first = network.route(HttpRequest("HEAD", "cf.example")).headers.get("cf-ray")
        second = network.route(HttpRequest("HEAD", "cf.example")).headers.get("cf-ray")
        assert first != second

    def test_head_has_no_body(self):
        network = VirtualNetwork()
        network.register(VirtualServer(host="example.com"))
        assert network.route(HttpRequest("HEAD", "example.com")).body == b""

    def test_custom_handler(self):
        network = VirtualNetwork()

        def handler(request):
            return HttpResponse(429 if request.path == "/limited" else 200)

        network.register(VirtualServer(host="example.com", handler=handler))
        assert network.route(HttpRequest("GET", "example.com", "/limited")).status == 429
        assert network.route(HttpRequest("GET", "example.com", "/")).status == 200

    def test_reregistration_replaces(self):
        network = VirtualNetwork()
        network.register(VirtualServer(host="example.com", status=200))
        network.register(VirtualServer(host="example.com", status=503))
        assert network.route(HttpRequest("GET", "example.com")).status == 503
        assert len(network) == 1

    def test_request_logging(self):
        network = VirtualNetwork()
        network.log_requests = True
        network.register(VirtualServer(host="example.com"))
        network.route(HttpRequest("GET", "example.com", "/a"))
        assert [r.path for r in network.request_log] == ["/a"]


class TestHttpClient:
    def test_follows_same_host_redirect(self):
        network = VirtualNetwork()

        def handler(request):
            if request.path == "/":
                response = HttpResponse(302)
                response.headers.set("Location", "/landing")
                return response
            return HttpResponse(200, HeaderMap({"Content-Type": "text/html"}))

        network.register(VirtualServer(host="example.com", handler=handler))
        response = HttpClient(network).get("example.com")
        assert response.status == 200

    def test_redirect_loop_raises(self):
        network = VirtualNetwork()

        def handler(request):
            response = HttpResponse(302)
            response.headers.set("Location", "/")
            return response

        network.register(VirtualServer(host="loop.example", handler=handler))
        with pytest.raises(HttpError):
            HttpClient(network).get("loop.example")

    def test_sends_user_agent(self):
        network = VirtualNetwork()
        seen = {}

        def handler(request):
            seen["ua"] = request.headers.get("User-Agent")
            return HttpResponse(200)

        network.register(VirtualServer(host="example.com", handler=handler))
        HttpClient(network, user_agent="test-agent/2.0").head("example.com")
        assert seen["ua"] == "test-agent/2.0"
