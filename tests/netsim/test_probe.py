"""Tests for the cf-ray HEAD probe."""

from repro.netsim.http import VirtualNetwork, VirtualServer
from repro.netsim.probe import CloudflareProbe


def _network() -> VirtualNetwork:
    network = VirtualNetwork()
    network.register(VirtualServer(host="oncf.example", behind_cloudflare=True))
    network.register(VirtualServer(host="direct.example", behind_cloudflare=False))
    network.register(VirtualServer(host="broken.example", behind_cloudflare=True, status=503))
    return network


class TestProbe:
    def test_detects_cloudflare(self):
        probe = CloudflareProbe(_network())
        assert probe.probe("oncf.example").cloudflare
        assert not probe.probe("direct.example").cloudflare

    def test_error_status_still_counts(self):
        # cf-ray is stamped even on 5xx: Cloudflare proxies the error.
        result = CloudflareProbe(_network()).probe("broken.example")
        assert result.cloudflare
        assert result.status == 503

    def test_unreachable_host(self):
        result = CloudflareProbe(_network()).probe("missing.example")
        assert not result.reachable
        assert not result.cloudflare
        assert result.status is None

    def test_memoization(self):
        probe = CloudflareProbe(_network())
        probe.probe("oncf.example")
        probe.probe("ONCF.example")
        probe.probe("oncf.example")
        assert probe.probes_issued == 1

    def test_probe_many_preserves_order(self):
        probe = CloudflareProbe(_network())
        hosts = ["direct.example", "oncf.example", "missing.example"]
        results = probe.probe_many(hosts)
        assert [r.host for r in results] == hosts

    def test_cloudflare_hosts_filter(self):
        probe = CloudflareProbe(_network())
        hosts = ["direct.example", "oncf.example", "broken.example", "missing.example"]
        assert probe.cloudflare_hosts(hosts) == ["oncf.example", "broken.example"]
