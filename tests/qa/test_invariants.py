"""Invariant suite: Hypothesis drives the pure property helpers with
generated inputs, and the registry runs end-to-end against a live context
— the same checks ``repro verify-invariants`` executes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import experiment_context
from repro.qa.invariants import (
    INVARIANTS,
    idna_idempotence_violations,
    jaccard_table_violations,
    normalize_idempotence_violations,
    prefix_violations,
    relabel_invariance_violations,
    run_invariants,
    scaling_rank_violations,
    spearman_reversal_violations,
)
from repro.worldgen.config import WorldConfig

#: Small but complete world: every provider, every magnitude populated.
_QA_CONFIG = WorldConfig(n_sites=1000, n_days=4, seed=777)


@pytest.fixture(scope="module")
def qa_ctx():
    return experiment_context(config=_QA_CONFIG)


# ---------------------------------------------------------------------------
# Hypothesis properties over the pure helpers.

_id_lists = st.lists(st.integers(0, 60), unique=True, max_size=30)


class TestJaccardTableProperties:
    @given(st.dictionaries(st.sampled_from("abcd"), _id_lists, min_size=1))
    @settings(max_examples=60)
    def test_any_family_of_lists(self, lists):
        assert jaccard_table_violations(lists) == []


class TestSpearmanReversalProperties:
    @given(st.lists(st.integers(0, 1000), unique=True, min_size=2, max_size=50))
    @settings(max_examples=60)
    def test_any_ranking(self, ranking):
        assert spearman_reversal_violations(ranking) == []

    def test_short_lists_are_vacuous(self):
        assert spearman_reversal_violations([]) == []
        assert spearman_reversal_violations([7]) == []


class TestRelabelProperties:
    @given(_id_lists, _id_lists)
    @settings(max_examples=60)
    def test_any_pair(self, list_a, list_b):
        assert relabel_invariance_violations(list_a, list_b) == []


class TestNormalizeIdempotenceProperties:
    _labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
                      max_size=8)

    @given(st.lists(st.builds("{}.{}.com".format, _labels, _labels), max_size=20))
    @settings(max_examples=40)
    def test_generated_fqdns(self, entries):
        assert normalize_idempotence_violations(entries) == []

    def test_origins_and_idn(self):
        entries = [
            "https://www.example.com",
            "sub.example.co.uk",
            "bücher.example",
            "EXAMPLE.ORG",
        ]
        assert normalize_idempotence_violations(entries) == []
        assert idna_idempotence_violations(entries) == []


class TestScalingRankProperties:
    @given(
        st.lists(st.integers(0, 10_000), min_size=2, max_size=40),
        st.data(),
    )
    @settings(max_examples=60)
    def test_any_counts_vector(self, raw_counts, data):
        counts = np.asarray(raw_counts, dtype=np.float64)
        eligible = np.arange(len(counts))
        site = data.draw(st.integers(0, len(counts) - 1))
        factor = data.draw(st.floats(1.0, 100.0, allow_nan=False))
        assert scaling_rank_violations(counts, eligible, site, factor) == []

    def test_detects_a_broken_ranking(self):
        # Scaling *down* can worsen the rank — the helper must notice when
        # handed a violating transformation (factor < 1 abuses the API on
        # purpose to prove it is not vacuously green).
        counts = np.array([10.0, 8.0, 6.0])
        violations = scaling_rank_violations(counts, np.arange(3), 0, 0.1)
        assert violations and "fell from position" in violations[0]


class TestPrefixProperties:
    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=60),
        st.lists(st.integers(1, 80), min_size=1, max_size=5),
    )
    @settings(max_examples=60)
    def test_tops_of_one_score_vector(self, scores, cuts):
        values = np.asarray(scores)
        ranking = np.argsort(-values, kind="stable")
        tops = {k: ranking[:k].tolist() for k in cuts}
        assert prefix_violations(tops) == []

    def test_detects_inconsistent_views(self):
        violations = prefix_violations({1: [5], 2: [4, 3]})
        assert violations == ["top-1 is not a prefix of top-2"]

    def test_short_larger_view_detected(self):
        assert prefix_violations({2: [1, 2], 3: [1]})


# ---------------------------------------------------------------------------
# The registry end-to-end (what `repro verify-invariants` runs).


class TestRegistry:
    def test_registry_names_unique(self):
        names = [invariant.name for invariant in INVARIANTS]
        assert len(names) == len(set(names))

    def test_unknown_name_raises(self, qa_ctx):
        with pytest.raises(KeyError):
            run_invariants(qa_ctx, names=["nope"])

    @pytest.mark.parametrize(
        "name", [invariant.name for invariant in INVARIANTS]
    )
    def test_invariant_holds(self, qa_ctx, name):
        (outcome,) = run_invariants(qa_ctx, names=[name])
        assert outcome.ok, f"{name} violated: {outcome.violations[:5]}"
        assert outcome.seconds >= 0

    def test_crashing_check_reports_not_raises(self, qa_ctx, monkeypatch):
        import repro.qa.invariants as mod

        boom = mod.Invariant(
            name="boom", description="crashes", check=lambda ctx: 1 / 0
        )
        monkeypatch.setattr(mod, "INVARIANTS", (*INVARIANTS, boom))
        (outcome,) = mod.run_invariants(qa_ctx, names=["boom"])
        assert not outcome.ok
        assert "ZeroDivisionError" in outcome.violations[0]


class TestCli:
    def test_verify_invariants_exit_zero(self, capsys):
        from repro.cli import main

        code = main([
            "verify-invariants",
            "--sites", str(_QA_CONFIG.n_sites),
            "--days", str(_QA_CONFIG.n_days),
            "--seed", str(_QA_CONFIG.seed),
            "--only", "jaccard-table",
            "--only", "truncation-consistency",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 invariants hold" in out

    def test_list_and_unknown(self, capsys):
        from repro.cli import main

        assert main(["verify-invariants", "--list"]) == 0
        assert "seed-determinism" in capsys.readouterr().out
        assert main(["verify-invariants", "--only", "nope"]) == 2
