"""Tests for the repro.qa correctness-tooling subsystem."""
