"""Golden harness tests: canonical serialization, diffing, the verify
loop, manifest integration, and CLI exit codes."""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.core import experiments as experiments_mod
from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.core.pipeline import clear_contexts
from repro.qa.goldens import (
    GOLDEN_CONFIG,
    DriftCell,
    Tolerance,
    default_golden_dir,
    diff_payloads,
    dump_golden,
    golden_payload,
    verify_goldens,
)
from repro.runner.manifest import RunManifest
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)


def _mini_experiment(ctx) -> ExperimentResult:
    return ExperimentResult(
        name="mini",
        title="Mini",
        data={"cells": {"a|b": 0.5, "b|a": 0.5}, "n": ctx.world.n_sites,
              "nanval": float("nan")},
        text=f"n={ctx.world.n_sites}",
    )


def _broken_experiment(ctx) -> ExperimentResult:
    raise ValueError("broken on purpose")


@pytest.fixture()
def registry(monkeypatch):
    """SPECS swapped for a two-entry synthetic registry."""
    replacement = {
        name: ExperimentSpec(
            id=name, title=name.title(), fn=fn, required_artifacts=()
        )
        for name, fn in (("mini", _mini_experiment), ("broken", _broken_experiment))
    }
    monkeypatch.setattr(experiments_mod, "SPECS", replacement)
    monkeypatch.setattr("repro.runner.parallel.SPECS", replacement)
    monkeypatch.setattr("repro.qa.goldens.SPECS", replacement)
    monkeypatch.setattr("repro.cli.SPECS", replacement)
    clear_contexts()
    return replacement


class TestTolerance:
    def test_exact_and_within(self):
        tol = Tolerance(abs_tol=0.01, rel_tol=0.0)
        assert tol.allows(1.0, 1.0)
        assert tol.allows(1.0, 1.005)
        assert not tol.allows(1.0, 1.02)

    def test_relative(self):
        tol = Tolerance(abs_tol=0.0, rel_tol=0.1)
        assert tol.allows(100.0, 109.0)
        assert not tol.allows(100.0, 111.0)

    def test_nan_equals_nan(self):
        tol = Tolerance()
        assert tol.allows(float("nan"), float("nan"))
        assert not tol.allows(float("nan"), 0.0)
        assert not tol.allows(0.0, float("nan"))


class TestDiff:
    def test_identical(self):
        payload = {"a": [1, 2.5], "b": {"c": "x"}}
        assert diff_payloads(payload, payload, Tolerance()) == []

    def test_value_drift_has_path(self):
        cells = diff_payloads(
            {"data": {"jj": {"a|b": 0.5}}},
            {"data": {"jj": {"a|b": 0.75}}},
            Tolerance(),
        )
        assert cells == [DriftCell("data/jj/a|b", 0.5, 0.75)]

    def test_within_tolerance_passes(self):
        cells = diff_payloads({"v": 1.0}, {"v": 1.0 + 1e-12}, Tolerance())
        assert cells == []

    def test_missing_and_extra_keys(self):
        cells = diff_payloads({"a": 1, "b": 2}, {"a": 1, "c": 3}, Tolerance())
        kinds = {cell.path: cell.kind for cell in cells}
        assert kinds == {"b": "missing", "c": "extra"}

    def test_list_length_and_elements(self):
        assert diff_payloads([1, 2], [1, 2, 3], Tolerance())[0].kind == "length"
        cells = diff_payloads([1, 2], [1, 9], Tolerance())
        assert cells[0].path == "[1]"

    def test_type_mismatch(self):
        assert diff_payloads({"v": "1"}, {"v": 1}, Tolerance())[0].kind == "type"

    def test_bool_not_numeric(self):
        assert diff_payloads({"v": True}, {"v": 1}, Tolerance())[0].kind == "type"

    def test_nan_cells_equal(self):
        nan = float("nan")
        assert diff_payloads({"v": nan}, {"v": nan}, Tolerance()) == []
        assert len(diff_payloads({"v": nan}, {"v": 0.1}, Tolerance())) == 1


class TestCanonicalForm:
    def test_dump_deterministic(self):
        payload = golden_payload(
            "x", "X", _CONFIG, {"b": 1, "a": [2.0, float("nan")]}, "text"
        )
        assert dump_golden(payload) == dump_golden(json.loads(dump_golden(payload)))

    def test_round_trip_preserves_nan(self):
        payload = golden_payload("x", "X", _CONFIG, {"v": float("nan")}, "t")
        loaded = json.loads(dump_golden(payload))
        assert math.isnan(loaded["data"]["v"])

    def test_config_embedded(self):
        payload = golden_payload("x", "X", _CONFIG, {}, "t")
        assert payload["config"] == json.loads(_CONFIG.to_json())


class TestVerifyGoldens:
    def test_update_then_verify_green(self, registry, tmp_path):
        golden_dir = tmp_path / "golden"
        report = verify_goldens(golden_dir, names=["mini"], config=_CONFIG, update=True)
        assert report.ok and report.statuses[0].status == "updated"
        first = (golden_dir / "mini.json").read_bytes()

        report = verify_goldens(golden_dir, names=["mini"], config=_CONFIG, update=True)
        assert (golden_dir / "mini.json").read_bytes() == first, "update is idempotent"

        report = verify_goldens(golden_dir, names=["mini"], config=_CONFIG)
        assert report.ok and report.statuses[0].status == "pass"

    def test_missing_golden_fails(self, registry, tmp_path):
        report = verify_goldens(tmp_path / "golden", names=["mini"], config=_CONFIG)
        assert not report.ok
        assert report.statuses[0].status == "missing"

    def test_perturbed_golden_reports_cells(self, registry, tmp_path):
        golden_dir = tmp_path / "golden"
        verify_goldens(golden_dir, names=["mini"], config=_CONFIG, update=True)
        golden = json.loads((golden_dir / "mini.json").read_text())
        golden["data"]["cells"]["a|b"] = 0.9
        (golden_dir / "mini.json").write_text(json.dumps(golden))

        report = verify_goldens(golden_dir, names=["mini"], config=_CONFIG)
        assert not report.ok
        (status,) = report.drifted
        assert status.status == "drift"
        assert [c.path for c in status.cells] == ["data/cells/a|b"]
        assert "expected 0.9" in report.render()

    def test_config_mismatch_is_drift(self, registry, tmp_path):
        golden_dir = tmp_path / "golden"
        verify_goldens(golden_dir, names=["mini"], config=_CONFIG, update=True)
        other = _CONFIG.scaled(seed=12)
        report = verify_goldens(golden_dir, names=["mini"], config=other)
        assert not report.ok
        paths = {c.path for c in report.statuses[0].cells}
        assert "config/seed" in paths

    def test_failing_experiment_is_error(self, registry, tmp_path):
        report = verify_goldens(
            tmp_path / "golden", names=["broken", "mini"], config=_CONFIG, update=True
        )
        assert not report.ok
        by_name = {s.name: s for s in report.statuses}
        assert by_name["broken"].status == "error"
        assert "broken on purpose" in by_name["broken"].error
        assert by_name["mini"].status == "updated", "error must not block the rest"


class TestManifestIntegration:
    """Satellite: manifest contents when an experiment drifts vs passes."""

    def _run(self, tmp_path, perturb: bool):
        golden_dir = tmp_path / "golden"
        store = tmp_path / "store"
        verify_goldens(
            golden_dir, names=["mini"], config=_CONFIG, update=True, cache_dir=store
        )
        if perturb:
            golden = json.loads((golden_dir / "mini.json").read_text())
            golden["data"]["n"] = -1
            (golden_dir / "mini.json").write_text(json.dumps(golden))
        return verify_goldens(
            golden_dir, names=["mini"], config=_CONFIG, cache_dir=store
        )

    def test_pass_manifest_fields(self, registry, tmp_path):
        report = self._run(tmp_path, perturb=False)
        outcome = report.manifest.outcomes[0]
        assert outcome.ok and outcome.golden_status == "pass"
        assert outcome.cache, "cache hit/miss accounting must still be present"
        assert report.manifest.qa["statuses"] == {"mini": "pass"}
        assert report.manifest.qa["mode"] == "verify"
        assert report.manifest.qa["drift_cells"] == {}

    def test_drift_manifest_fields_and_round_trip(self, registry, tmp_path):
        report = self._run(tmp_path, perturb=True)
        outcome = report.manifest.outcomes[0]
        assert outcome.ok, "the experiment itself ran fine"
        assert outcome.golden_status == "drift"
        assert report.manifest.qa["statuses"] == {"mini": "drift"}
        cells = report.manifest.qa["drift_cells"]["mini"]
        assert cells[0]["path"] == "data/n"

        # The qa block survives the on-disk round trip.
        assert report.manifest_file is not None
        reloaded = RunManifest.from_dict(json.loads(report.manifest_file.read_text()))
        assert reloaded.qa["statuses"] == {"mini": "drift"}
        assert reloaded.outcomes[0].golden_status == "drift"

    def test_old_manifest_without_qa_still_loads(self):
        manifest = RunManifest.from_dict(
            {"config": {}, "schema_version": 1, "jobs": 1,
             "started_unix": 0.0,
             "outcomes": [{"name": "x", "ok": True, "seconds": 0.1,
                           "worker_pid": 1}]}
        )
        assert manifest.qa is None
        assert manifest.outcomes[0].golden_status is None


class TestCli:
    def test_exit_codes_and_update(self, registry, tmp_path, capsys):
        golden_dir = tmp_path / "golden"
        args = ["--golden-dir", str(golden_dir), "--experiment", "mini",
                "--sites", str(_CONFIG.n_sites), "--days", str(_CONFIG.n_days),
                "--seed", str(_CONFIG.seed), "--no-cache"]
        assert main(["verify-goldens", "--update", *args]) == 0
        assert main(["verify-goldens", *args]) == 0
        out = capsys.readouterr().out
        assert "match goldens" in out

        golden = json.loads((golden_dir / "mini.json").read_text())
        golden["data"]["cells"]["a|b"] = 0.123
        (golden_dir / "mini.json").write_text(json.dumps(golden))
        assert main(["verify-goldens", *args]) == 1
        assert "data/cells/a|b" in capsys.readouterr().out

    def test_unknown_experiment_usage_error(self, registry, capsys):
        assert main(["verify-goldens", "--experiment", "nope", "--no-cache"]) == 2


class TestCheckedInGoldens:
    """The real registry matches the committed snapshots.

    This is the same check CI runs via ``repro verify-goldens``; a failure
    here means a change shifted reproduced paper results — either fix the
    regression or regenerate the goldens in the same commit with
    ``repro verify-goldens --update`` and justify the shift.
    """

    def test_checked_in_goldens_match(self):
        golden_dir = default_golden_dir()
        missing = [n for n in SPECS if not (golden_dir / f"{n}.json").exists()]
        assert not missing, f"goldens missing for: {missing}"
        report = verify_goldens(golden_dir, config=GOLDEN_CONFIG)
        drifted = {s.name: [c.render() for c in s.cells[:3]] for s in report.drifted}
        assert report.ok, f"golden drift: {drifted}"
