"""End-to-end shape tests: the paper's headline findings must hold.

These run the real experiment code over the shared small world and assert
the *qualitative* results the paper reports — the reproduction's acceptance
criteria from DESIGN.md Section 5.
"""

import numpy as np
import pytest

from repro.cdn.filters import FINAL_SEVEN
from repro.core.similarity import pairwise_jaccard, spearman
from repro.providers.registry import PROVIDER_ORDER


@pytest.fixture(scope="module")
def fig2_matrix(small_world, small_evaluator, small_providers):
    # The full-list magnitude is the statistically stable one at test scale.
    magnitude = small_world.config.bucket_sizes[3]
    return small_evaluator.evaluate_matrix(
        small_providers, FINAL_SEVEN, magnitude,
        days=range(small_world.config.n_days),
    )


class TestHeadlineFindings:
    def test_crux_best_by_jaccard(self, fig2_matrix):
        """Finding 1: CrUX captures popular sites best.  At the small test
        scale we require a strict win on a majority of metrics and top-3 on
        all; the bench-scale run asserts the strict all-metric win."""
        wins = 0
        for combo in FINAL_SEVEN:
            scores = {name: fig2_matrix[name][combo].jaccard for name in PROVIDER_ORDER}
            order = sorted(scores, key=scores.get, reverse=True)
            assert "crux" in order[:5], combo
            if order[0] == "crux":
                wins += 1
        assert wins >= 4

    def test_secrank_and_majestic_worst(self, fig2_matrix):
        """Finding 2: Secrank and Majestic trail everyone."""
        for combo in FINAL_SEVEN:
            scores = {name: fig2_matrix[name][combo].jaccard for name in PROVIDER_ORDER}
            worst_two = sorted(scores, key=scores.get)[:2]
            assert set(worst_two) == {"secrank", "majestic"}, combo

    def test_metrics_agree_on_list_ordering(self, fig2_matrix):
        """Finding 3: the seven CF metrics rank list accuracy almost
        identically (the paper reports exactly 1.0)."""
        orderings = []
        for combo in FINAL_SEVEN:
            scores = [fig2_matrix[name][combo].jaccard for name in PROVIDER_ORDER]
            orderings.append(np.argsort(np.argsort(scores)))
        rhos = [
            spearman(orderings[i], orderings[j]).rho
            for i in range(len(orderings))
            for j in range(i + 1, len(orderings))
        ]
        assert np.mean(rhos) > 0.65

    def test_crux_within_intra_cf_band(self, small_engine, fig2_matrix):
        """Finding 4: only CrUX reaches the agreement level the CF metrics
        have with each other."""
        depth = max(50, small_engine.n_cf_sites // 5)
        cf_lists = {c: small_engine.top(0, c, depth) for c in FINAL_SEVEN}
        jj = pairwise_jaccard(cf_lists)
        intra_min = min(v for (a, b), v in jj.items() if a != b)
        crux_best = max(fig2_matrix["crux"][c].jaccard for c in FINAL_SEVEN)
        majestic_best = max(fig2_matrix["majestic"][c].jaccard for c in FINAL_SEVEN)
        assert crux_best > intra_min * 0.8
        assert majestic_best < intra_min * 1.1

    def test_rank_correlations_weak_overall(self, fig2_matrix):
        """Finding 5: Spearman correlations are at best moderate."""
        for name in PROVIDER_ORDER:
            for combo in FINAL_SEVEN:
                rho = fig2_matrix[name][combo].spearman
                if not np.isnan(rho):
                    assert rho < 0.75

    def test_tranco_trexa_between_components(self, fig2_matrix):
        """Finding 6: amalgam lists land between their best and worst
        components."""
        for combo in FINAL_SEVEN:
            scores = {name: fig2_matrix[name][combo].jaccard for name in PROVIDER_ORDER}
            component_max = max(scores["alexa"], scores["umbrella"], scores["majestic"])
            component_min = min(scores["alexa"], scores["umbrella"], scores["majestic"])
            assert scores["tranco"] >= component_min
            assert scores["tranco"] <= component_max * 1.25


class TestCoverageShape:
    def test_secrank_lowest_full_coverage(self, small_world, small_evaluator, small_providers):
        """Table 1: Secrank's Chinese skew gives it the worst coverage."""
        full = small_world.config.list_length
        coverage = {
            name: small_evaluator.coverage(provider, full)
            for name, provider in small_providers.items()
        }
        assert min(coverage, key=coverage.get) == "secrank"

    def test_all_lists_partially_covered(self, small_world, small_evaluator, small_providers):
        for name, provider in small_providers.items():
            value = small_evaluator.coverage(provider, small_world.config.bucket_sizes[2])
            assert 0.0 <= value < 0.6, name
