"""End-to-end determinism: identical configs must reproduce identical
experiment outputs, bit for bit, across fresh object graphs."""

import numpy as np

from repro.cdn.metrics import CdnMetricEngine
from repro.core.evaluation import CloudflareEvaluator
from repro.providers.registry import build_providers
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

_CONFIG = WorldConfig(n_sites=900, n_days=6, seed=2024)


def _evaluate_once():
    world = build_world(_CONFIG)
    traffic = TrafficModel(world)
    providers = build_providers(world, traffic)
    engine = CdnMetricEngine(world, traffic)
    evaluator = CloudflareEvaluator(world, engine)
    magnitude = _CONFIG.bucket_sizes[2]
    scores = {}
    for name in ("alexa", "umbrella", "crux"):
        result = evaluator.evaluate_month(
            providers[name], "all:ips", magnitude, days=range(3)
        )
        scores[name] = (result.jaccard, result.spearman, result.n)
    head = providers["umbrella"].daily_list(1).name_rows[:50]
    return scores, head


class TestDeterminism:
    def test_full_pipeline_reproduces(self):
        first_scores, first_head = _evaluate_once()
        second_scores, second_head = _evaluate_once()
        for name in first_scores:
            a, b = first_scores[name], second_scores[name]
            assert a[0] == b[0], name
            assert (a[1] == b[1]) or (np.isnan(a[1]) and np.isnan(b[1])), name
            assert a[2] == b[2], name
        assert np.array_equal(first_head, second_head)

    def test_different_seed_differs(self):
        world_a = build_world(_CONFIG)
        world_b = build_world(_CONFIG.scaled(seed=2025))
        assert world_a.sites.names != world_b.sites.names
