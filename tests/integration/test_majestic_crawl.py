"""Integration: crawl-derived Majestic vs the analytic backlink model."""

import numpy as np
import pytest

from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.providers.majestic import MajesticProvider
from repro.providers.majestic_crawl import (
    CrawledMajestic,
    crawl_link_graph,
    crawled_backlink_ranking,
)
from repro.worldgen.linkgraph import build_link_graph


class TestCrawl:
    def test_budget_respected(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=300)
        discovered = crawl_link_graph(graph, budget=50)
        crawled_with_outlinks = [n for n in discovered if discovered.out_degree(n) > 0]
        assert len(crawled_with_outlinks) <= 50

    def test_discovers_edges_beyond_frontier(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=300)
        discovered = crawl_link_graph(graph, budget=30)
        # Edges to never-crawled sites are still visible backlinks.
        assert discovered.number_of_nodes() > 30

    def test_empty_graph(self):
        import networkx as nx

        discovered = crawl_link_graph(nx.DiGraph(), budget=10)
        assert crawled_backlink_ranking(discovered, 10).size == 0

    def test_ranking_sorted_by_indegree(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=300)
        discovered = crawl_link_graph(graph, budget=300)
        ranking = crawled_backlink_ranking(discovered, tiny_world.n_sites)
        degrees = [discovered.in_degree(int(s)) for s in ranking]
        assert degrees == sorted(degrees, reverse=True)


class TestCrawledMajestic:
    @pytest.fixture(scope="class")
    def crawled(self, tiny_world):
        return CrawledMajestic(tiny_world, budget=tiny_world.n_sites)

    def test_builds_list(self, crawled):
        ranked = crawled.daily_list(0)
        assert len(ranked) > 30
        assert crawled.crawled_sites > 0
        assert crawled.discovered_edges > crawled.crawled_sites

    def test_static_across_days(self, crawled):
        assert crawled.daily_list(0) is crawled.daily_list(3)

    def test_agrees_with_analytic_majestic(self, tiny_world, tiny_traffic, crawled):
        """A full-budget crawl should broadly agree with the analytic
        backlink counts — both are views of the same latent link scores."""
        crawl_sites = tiny_world.names.site[crawled.daily_list(0).name_rows][:60]
        analytic = MajesticProvider(tiny_world, tiny_traffic)
        analytic_sites = tiny_world.names.site[analytic.daily_list(0).name_rows][:60]
        jj = jaccard_index(crawl_sites, analytic_sites)
        assert jj > 0.3
        rho = rank_correlation_of_lists(crawl_sites, analytic_sites).rho
        assert np.isnan(rho) or rho > 0.2

    def test_pagerank_variant(self, tiny_world):
        variant = CrawledMajestic(tiny_world, budget=tiny_world.n_sites,
                                  use_pagerank=True)
        ranked = variant.daily_list(0)
        assert len(ranked) > 30
        # PageRank and in-degree mostly agree but are not identical.
        base = CrawledMajestic(tiny_world, budget=tiny_world.n_sites)
        a = ranked.name_rows[:50].tolist()
        b = base.daily_list(0).name_rows[:50].tolist()
        assert a != b
        assert jaccard_index(a, b) > 0.4
