"""End-to-end smoke test: ``repro all --jobs 2``, cold then warm.

Exercises the whole subsystem the way CI does: a cold parallel run over a
fresh cache directory populates the store, a warm run hydrates from it, and
both produce identical experiment text (checked via the manifests'
``text_sha256`` digests — no tolerance, the store round-trip is lossless).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.core.pipeline import clear_contexts
from repro.runner import RunManifest

_WORLD_ARGS = ["--sites", "1000", "--days", "6", "--seed", "42"]


def _run_all(tmp_path: Path, tag: str) -> RunManifest:
    manifest_path = tmp_path / f"{tag}.json"
    code = main(
        ["all", *_WORLD_ARGS, "--jobs", "2",
         "--cache-dir", str(tmp_path / "store"),
         "--manifest", str(manifest_path)]
    )
    assert code == 0, f"{tag} run must exit 0"
    return RunManifest.from_dict(json.loads(manifest_path.read_text()))


class TestColdWarmSmoke:
    def test_cold_then_warm(self, tmp_path, capsys):
        clear_contexts()
        cold = _run_all(tmp_path, "cold")
        assert not cold.failures
        cold_totals = cold.cache_totals()
        assert cold_totals.get("world", {}).get("puts", 0) >= 1

        # Warm run: same cache dir, new worker pool.  World construction is
        # skipped — the manifest shows hydration hits for every heavy kind.
        clear_contexts()
        warm = _run_all(tmp_path, "warm")
        assert not warm.failures
        warm_totals = warm.cache_totals()
        for kind in ("world", "traffic", "metrics"):
            assert warm_totals.get(kind, {}).get("hits", 0) > 0, (
                f"warm run must hydrate {kind} from the store: {warm_totals}"
            )
        assert warm.total_hits() > 0

        # Results are numerically identical cold vs warm.
        cold_digests = {o.name: o.text_sha256 for o in cold.outcomes}
        warm_digests = {o.name: o.text_sha256 for o in warm.outcomes}
        assert cold_digests == warm_digests
        assert all(digest for digest in cold_digests.values())

        # Both runs actually went through the pool.
        assert cold.jobs == 2 and warm.jobs == 2
        capsys.readouterr()  # swallow the CLI chatter
