"""Integration: the HEAD-probe path equals the ground-truth fast path.

The evaluator's default uses the world's ``cf_served`` flags directly; the
paper's actual methodology issues HTTP HEAD requests and checks ``cf-ray``.
This test runs the full probe methodology over simulated HTTP and verifies
the two produce identical evaluations.
"""

import numpy as np
import pytest

from repro.cdn.adoption import build_virtual_network
from repro.core.evaluation import CloudflareEvaluator
from repro.netsim.probe import CloudflareProbe


class TestProbeEquivalence:
    def test_probe_derived_flags_match(self, tiny_world):
        network = build_virtual_network(tiny_world)
        probe = CloudflareProbe(network)
        probed = np.array(
            [probe.probe(name).cloudflare for name in tiny_world.sites.names]
        )
        assert np.array_equal(probed, tiny_world.sites.cf_served)

    def test_probe_based_evaluation_identical(self, tiny_world, tiny_traffic):
        from repro.cdn.metrics import CdnMetricEngine
        from repro.providers.registry import build_providers

        engine = CdnMetricEngine(tiny_world, tiny_traffic)
        providers = build_providers(tiny_world, tiny_traffic)

        network = build_virtual_network(tiny_world)
        probe = CloudflareProbe(network)
        probed_flags = np.array(
            [probe.probe(name).cloudflare for name in tiny_world.sites.names]
        )

        ground_truth = CloudflareEvaluator(tiny_world, engine)
        probed = CloudflareEvaluator(tiny_world, engine, cf_served=probed_flags)

        magnitude = tiny_world.config.bucket_sizes[2]
        for name in ("alexa", "umbrella", "crux"):
            a = ground_truth.evaluate_day(providers[name], 0, "all:requests", magnitude)
            b = probed.evaluate_day(providers[name], 0, "all:requests", magnitude)
            assert a.jaccard == pytest.approx(b.jaccard)
            assert a.n == b.n
