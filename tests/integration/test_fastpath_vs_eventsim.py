"""Cross-validation: the analytic fast path vs literal event counting.

The bench-scale experiments trust the vectorized expectation model; these
tests justify that trust by simulating a day of concrete events over the
same world and checking that the two pipelines agree on the statistics the
paper's metrics consume.
"""

import numpy as np
import pytest

from repro.core.similarity import rank_correlation_of_lists
from repro.traffic.eventsim import EventSimulator


@pytest.fixture(scope="module")
def pipelines(tiny_world, tiny_traffic):
    simulator = EventSimulator(tiny_world, tiny_traffic)
    events = simulator.simulate_day(0, n_sessions=30_000, include_bots=False)
    from repro.cdn.metrics import CdnMetricEngine

    engine = CdnMetricEngine(tiny_world, tiny_traffic, apply_sampling_noise=False)
    return events, engine


class TestAgreement:
    def test_request_share_agreement(self, tiny_world, pipelines):
        """Per-site request shares agree between the two engines for the
        sites with enough event-level samples."""
        events, engine = pipelines
        observed = events.logs.day_count_arrays(0, tiny_world.n_sites, ("all:requests",))[
            "all:requests"
        ]
        expected = engine.day_counts(0, combos=("all:requests",))["all:requests"]
        big = (expected > 0) & (observed > 200)
        assert big.sum() > 10
        obs_share = observed[big] / observed[big].sum()
        exp_share = expected[big] / expected[big].sum()
        ratio = obs_share / exp_share
        assert np.median(ratio) == pytest.approx(1.0, abs=0.35)

    def test_ranking_agreement(self, tiny_world, pipelines):
        """The two pipelines rank busy Cloudflare sites consistently."""
        events, engine = pipelines
        event_ranking = events.logs.ranking(0, "all:requests", tiny_world.n_sites)[:60]
        fast_ranking = engine.ranking(0, "all:requests")[:60]
        rho = rank_correlation_of_lists(event_ranking, fast_ranking).rho
        assert rho > 0.5

    def test_root_fraction_agreement(self, tiny_world, pipelines):
        """Observed root-load fractions track the ground-truth root_frac."""
        events, _ = pipelines
        counts = events.logs.day_counts(0, combos=("root:requests", "all:requests"))
        roots = counts["root:requests"]
        everything = counts["all:requests"]
        checked = 0
        for site, total in everything.items():
            if total < 400:
                continue
            observed_frac = roots.get(site, 0.0) / total
            truth = (
                tiny_world.sites.root_frac[site] / tiny_world.sites.subres_mult[site]
            )
            assert observed_frac == pytest.approx(truth, abs=0.15)
            checked += 1
        assert checked > 3

    def test_country_mix_agreement(self, tiny_world, pipelines):
        """Session country sampling matches the analytic country split —
        the input the Chrome per-country telemetry is built from."""
        events, _ = pipelines
        import numpy as np

        observed = np.zeros(tiny_world.clients.n_countries)
        for session in events.sessions:
            observed[session.country] += session.pages
        observed = observed / observed.sum()
        tensors = None
        from repro.traffic.fastpath import TrafficModel

        expected = TrafficModel(tiny_world).day(0).country_pageloads.sum(axis=0)
        expected = expected / expected.sum()
        # Major countries within a few points; tiny ones are noise-bound.
        for c in range(len(observed)):
            if expected[c] > 0.05:
                assert observed[c] == pytest.approx(expected[c], rel=0.25)

    def test_platform_mix_agreement(self, tiny_world, pipelines):
        """Mobile/desktop session split tracks the sites' mobile shares."""
        events, _ = pipelines
        import numpy as np

        mobile_sessions = sum(1 for s in events.sessions if s.platform == 1)
        observed = mobile_sessions / len(events.sessions)
        weights = TrafficModelCache.weights(tiny_world)
        expected = float((weights * tiny_world.sites.mobile_share).sum())
        assert observed == pytest.approx(expected, abs=0.06)

    def test_browser_filter_agreement(self, tiny_world, pipelines):
        """Top-5-browser share of requests is near the site parameter."""
        events, _ = pipelines
        counts = events.logs.day_counts(0, combos=("browsers:requests", "all:requests"))
        checked = 0
        for site, total in counts["all:requests"].items():
            if total < 500:
                continue
            share = counts["browsers:requests"].get(site, 0.0) / total
            # Bots were disabled, so nearly everything is a top-5 browser
            # except opera sessions.
            assert share > 0.85
            checked += 1
        assert checked > 3


class TrafficModelCache:
    """Tiny helper: day-0 pageload weights for expectation math."""

    @staticmethod
    def weights(world):
        from repro.traffic.fastpath import TrafficModel

        loads = TrafficModel(world).day(0).pageloads
        return loads / loads.sum()
