"""Integration: event-level DNS list vs the analytic Umbrella provider."""

import numpy as np
import pytest

from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.providers.dns_pipeline import dns_list_from_log, dns_site_ranking
from repro.providers.umbrella import UmbrellaProvider
from repro.traffic.eventsim import EventSimulator


@pytest.fixture(scope="module")
def dns_day(tiny_world, tiny_traffic):
    simulator = EventSimulator(tiny_world, tiny_traffic, n_orgs=4)
    return simulator.simulate_day(0, n_sessions=25_000, with_dns=True)


class TestEventDnsList:
    def test_list_builds(self, tiny_world, dns_day):
        ranked = dns_list_from_log(tiny_world, dns_day.dns_log, 0)
        assert len(ranked) > 50
        assert ranked.granularity == "fqdn"

    def test_rows_resolve_to_names(self, tiny_world, dns_day):
        ranked = dns_list_from_log(tiny_world, dns_day.dns_log, 0)
        strings = ranked.strings(tiny_world, limit=20)
        assert all("." in s for s in strings)

    def test_limit_respected(self, tiny_world, dns_day):
        ranked = dns_list_from_log(tiny_world, dns_day.dns_log, 0, limit=30)
        assert len(ranked) == 30

    @staticmethod
    def _expected_site_ranking(tiny_world, tiny_traffic):
        """The analytic model's noise- and bias-free site ranking.

        The event simulator samples the *true* client population with no
        panel skew, daily resolver noise, or score quantization, so the
        validation target is the analytic expectation layer — fold the
        expected unique-client counts per FQDN to sites, best first."""
        provider = UmbrellaProvider(tiny_world, tiny_traffic)
        provider._taste = np.ones(tiny_world.n_sites)  # noqa: SLF001 - test probe
        provider._ttl_factor = np.ones(tiny_world.n_sites)  # noqa: SLF001
        expected = provider._unique_clients_per_fqdn(0)  # noqa: SLF001
        order = np.argsort(-expected)
        sites = tiny_world.names.site[provider._fqdn_rows[order]]  # noqa: SLF001
        seen = set()
        ranking = []
        for site in sites:
            site = int(site)
            if site >= 0 and site not in seen:
                seen.add(site)
                ranking.append(site)
        return np.asarray(ranking)

    def test_agrees_with_analytic_expectation_sets(self, tiny_world, tiny_traffic, dns_day):
        """Event counting and the analytic occupancy/caching expectations
        broadly agree on which sites are DNS-popular."""
        event_sites = dns_site_ranking(tiny_world, dns_day.dns_log, 0)[:40]
        analytic_sites = self._expected_site_ranking(tiny_world, tiny_traffic)[:40]
        jj = jaccard_index(event_sites, analytic_sites)
        assert jj > 0.3

    def test_head_rank_correlation(self, tiny_world, tiny_traffic, dns_day):
        event_sites = dns_site_ranking(tiny_world, dns_day.dns_log, 0)[:60]
        analytic_sites = self._expected_site_ranking(tiny_world, tiny_traffic)[:60]
        rho = rank_correlation_of_lists(event_sites, analytic_sites).rho
        assert rho > 0.3

    def test_event_list_tracks_true_popularity(self, tiny_world, dns_day):
        sites = dns_site_ranking(tiny_world, dns_day.dns_log, 0)
        assert len(sites) > 30
        # The head of the DNS ranking skews toward truly popular sites.
        assert np.median(sites[:30]) < tiny_world.n_sites * 0.4
