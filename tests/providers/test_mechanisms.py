"""Per-provider mechanism tests: each list's documented bias must show."""

import numpy as np
import pytest

from repro.core.normalize import normalize_list
from repro.weblib.categories import category_index
from repro.worldgen.countries import country_index
from repro.worldgen.nametable import NameKind


def _top_sites(world, providers, name, k=500, day=0):
    normalized = normalize_list(world, providers[name].daily_list(day))
    return normalized.sites[:k]


class TestAlexa:
    def test_excludes_adult(self, small_world, small_providers):
        """Private-mode browsing hides adult sites from the extension panel."""
        sites = small_world.sites
        adult = category_index("adult")
        top = _top_sites(small_world, small_providers, "alexa", k=800)
        adult_rate_list = (sites.category[top] == adult).mean()
        adult_rate_truth = (sites.category[:800] == adult).mean()
        assert adult_rate_list < adult_rate_truth * 0.6

    def test_panel_boost_improves_accuracy(self):
        """The late-window panel enlargement makes the deep list richer."""
        from repro.providers.alexa import AlexaProvider
        from repro.traffic.fastpath import TrafficModel
        from repro.worldgen.config import WorldConfig
        from repro.worldgen.world import build_world

        config = WorldConfig(
            n_sites=800, n_days=8, seed=5, alexa_change_day=4,
            alexa_change_boost=10.0, alexa_daily_events=300.0,
        )
        world = build_world(config)
        alexa = AlexaProvider(world, TrafficModel(world))
        before = len(alexa.daily_list(3))
        after = len(alexa.daily_list(7))
        assert after > before  # bigger panel observes more of the tail

    def test_tail_incomplete(self, small_world, small_providers):
        """A small panel cannot rank the whole universe."""
        ranked = small_providers["alexa"].daily_list(0)
        assert len(ranked) < small_world.config.list_length * 1.0 + 1


class TestUmbrella:
    def test_fqdn_granularity(self, small_world, small_providers):
        ranked = small_providers["umbrella"].daily_list(0)
        kinds = small_world.names.kind[ranked.name_rows]
        assert (kinds == NameKind.FQDN).all()

    def test_infra_names_at_head(self, small_world, small_providers):
        head = small_providers["umbrella"].daily_list(0).strings(small_world, 10)
        assert "com" in head

    def test_blocked_categories_suppressed(self, small_world, small_providers):
        sites = small_world.sites
        adult = category_index("adult")
        top = _top_sites(small_world, small_providers, "umbrella", k=800)
        adult_rate_list = (sites.category[top] == adult).mean()
        adult_rate_truth = (sites.category[:800] == adult).mean()
        assert adult_rate_list < adult_rate_truth * 0.7

    def test_alphabetical_tie_runs_in_tail(self, small_world, small_providers):
        """Quantized scores create alphabetically sorted runs."""
        strings = small_providers["umbrella"].daily_list(0).strings(small_world)
        tail = strings[-200:]
        sorted_pairs = sum(1 for a, b in zip(tail, tail[1:]) if a <= b)
        # Far more ascending pairs than the ~50% random expectation.
        assert sorted_pairs > 0.7 * (len(tail) - 1)


class TestMajestic:
    def test_rank_tracks_backlinks(self, small_world, small_providers):
        ranked = small_providers["majestic"].daily_list(0)
        sites = small_world.names.site[ranked.name_rows[:100]]
        top_links = small_world.sites.backlinks[sites].mean()
        assert top_links > small_world.sites.backlinks.mean() * 3

    def test_stable_day_to_day(self, small_world, small_providers):
        a = set(small_providers["majestic"].daily_list(0).name_rows[:300].tolist())
        b = set(small_providers["majestic"].daily_list(1).name_rows[:300].tolist())
        overlap = len(a & b) / len(a)
        assert overlap > 0.9


class TestSecrank:
    def test_china_dominates(self, small_world, small_providers):
        sites = small_world.sites
        cn = country_index("cn")
        top = _top_sites(small_world, small_providers, "secrank", k=500)
        cn_rate_list = (sites.home_country[top] == cn).mean()
        cn_rate_truth = (sites.home_country[:500] == cn).mean()
        assert cn_rate_list > cn_rate_truth * 1.5

    def test_smoothing_stabilizes(self, small_providers):
        a = set(small_providers["secrank"].daily_list(2).name_rows[:300].tolist())
        b = set(small_providers["secrank"].daily_list(3).name_rows[:300].tolist())
        assert len(a & b) / len(a) > 0.85


class TestTranco:
    def test_component_union(self, small_world, small_providers):
        """Tranco only contains domains seen by some component."""
        tranco_sites = set(
            small_world.names.site[small_providers["tranco"].daily_list(3).name_rows].tolist()
        )
        component_sites = set()
        for component in small_providers["tranco"].components:
            for day in range(4):
                ranked = component.daily_list(day)
                sites = small_world.names.site[ranked.name_rows]
                component_sites.update(sites[sites >= 0].tolist())
        assert tranco_sites <= component_sites

    def test_dowdall_scores(self):
        from repro.providers.tranco import dowdall_scores

        ranks_a = np.array([1.0, 2.0, 0.0])  # site 2 absent
        ranks_b = np.array([2.0, 1.0, 3.0])
        scores = dowdall_scores([ranks_a, ranks_b], 3)
        assert scores[0] == pytest.approx(1.0 + 0.5)
        assert scores[1] == pytest.approx(0.5 + 1.0)
        assert scores[2] == pytest.approx(1.0 / 3.0)


class TestTrexa:
    def test_interleave_dedupes(self):
        from repro.providers.trexa import interleave_rankings

        primary = np.array([1, 2, 3, 4])
        secondary = np.array([3, 9, 1, 8])
        merged = interleave_rankings(primary, secondary, 2)
        assert merged.tolist() == [1, 2, 3, 4, 9, 8]

    def test_interleave_weight_validated(self):
        from repro.providers.trexa import interleave_rankings

        with pytest.raises(ValueError):
            interleave_rankings(np.array([1]), np.array([2]), 0)

    def test_alexa_weighted(self, small_world, small_providers):
        """Trexa's head tracks Alexa more than Tranco."""
        trexa = small_providers["trexa"].daily_list(0).name_rows[:300]
        alexa = small_providers["alexa"].daily_list(0).name_rows[:300]
        tranco = small_providers["tranco"].daily_list(0).name_rows[:300]
        alexa_overlap = len(set(trexa.tolist()) & set(alexa.tolist()))
        tranco_overlap = len(set(trexa.tolist()) & set(tranco.tolist()))
        assert alexa_overlap >= tranco_overlap


class TestCrux:
    def test_origin_granularity_and_buckets(self, small_world, small_providers):
        ranked = small_providers["crux"].monthly_list()
        assert ranked.is_bucketed
        kinds = small_world.names.kind[ranked.name_rows]
        assert (kinds == NameKind.ORIGIN).all()
        assert ranked.bucket_bounds[-1] == len(ranked)

    def test_fixed_for_the_month(self, small_providers):
        a = small_providers["crux"].daily_list(0)
        b = small_providers["crux"].daily_list(5)
        assert a is b

    def test_privacy_threshold_drops_tail(self, small_world, small_providers):
        """Origins with too few panel visitors must not be published."""
        ranked = small_providers["crux"].monthly_list()
        origin_rows = small_world.names.rows_of_kind(NameKind.ORIGIN)
        assert len(ranked) < len(origin_rows)

    def test_country_lists(self, small_world, small_providers):
        """Per-country CrUX tables exist, differ, and stay bucketed."""
        crux = small_providers["crux"]
        us = crux.country_list("us")
        jp = crux.country_list("jp")
        assert us.is_bucketed and jp.is_bucketed
        assert len(us) > 50 and len(jp) > 50
        assert set(us.name_rows[:100].tolist()) != set(jp.name_rows[:100].tolist())
        assert crux.country_list("us") is us  # cached

    def test_country_list_reflects_local_web(self, small_world, small_providers):
        """Japan's table is dominated by sites with heavy JP traffic."""
        from repro.worldgen.countries import country_index

        crux = small_providers["crux"]
        jp = country_index("jp")
        rows = crux.country_list("jp").name_rows[:80]
        sites = small_world.names.site[rows]
        jp_share = small_world.sites.country_share[sites, jp].mean()
        global_share = small_world.sites.country_share[:, jp].mean()
        assert jp_share > global_share * 2

    def test_unknown_country_raises(self, small_providers):
        with pytest.raises(KeyError):
            small_providers["crux"].country_list("atlantis")

    def test_includes_adult_unlike_alexa(self, small_world, small_providers):
        """CrUX is the only list without the adult-exclusion bias."""
        sites = small_world.sites
        adult = category_index("adult")
        crux_top = _top_sites(small_world, small_providers, "crux", k=800)
        alexa_top = _top_sites(small_world, small_providers, "alexa", k=800)
        crux_rate = (sites.category[crux_top] == adult).mean()
        alexa_rate = (sites.category[alexa_top] == adult).mean()
        assert crux_rate > alexa_rate
