"""Tests for the adversarial manipulation experiment."""

import numpy as np
import pytest

from repro.providers.manipulation import (
    AttackWindow,
    ManipulatedAlexa,
    ManipulatedUmbrella,
    rank_of_site,
    run_manipulation_experiment,
)
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def attack_world():
    config = WorldConfig(n_sites=1500, n_days=10, seed=13)
    world = build_world(config)
    return world, TrafficModel(world)


class TestAttackWindow:
    def test_active_window(self):
        attack = AttackWindow(target_site=5, start_day=2, end_day=4, intensity=100)
        assert not attack.active(1)
        assert attack.active(2)
        assert attack.active(4)
        assert not attack.active(5)


class TestAttacks:
    def test_panel_inflation_lifts_target(self, attack_world):
        world, traffic = attack_world
        target = 1200
        attack = AttackWindow(target, start_day=2, end_day=5, intensity=5000)
        clean = ManipulatedAlexa(world, traffic, AttackWindow(target, 99, 99, 0))
        dirty = ManipulatedAlexa(world, traffic, attack)
        clean_rank = rank_of_site(world, clean, 4, target)
        dirty_rank = rank_of_site(world, dirty, 4, target)
        assert dirty_rank is not None and dirty_rank < 50
        assert clean_rank is None or clean_rank > dirty_rank * 5

    def test_attack_decays_after_stop(self, attack_world):
        world, traffic = attack_world
        target = 1200
        attack = AttackWindow(target, start_day=2, end_day=3, intensity=5000)
        dirty = ManipulatedAlexa(world, traffic, attack)
        during = rank_of_site(world, dirty, 3, target)
        later = rank_of_site(world, dirty, 9, target)
        assert during is not None
        assert later is None or later > during

    def test_botnet_queries_lift_target(self, attack_world):
        world, traffic = attack_world
        target = 1300
        attack = AttackWindow(target, start_day=2, end_day=5, intensity=50_000)
        clean = ManipulatedUmbrella(world, traffic, AttackWindow(target, 99, 99, 0))
        dirty = ManipulatedUmbrella(world, traffic, attack)
        clean_rank = rank_of_site(world, clean, 4, target)
        dirty_rank = rank_of_site(world, dirty, 4, target)
        assert dirty_rank is not None
        assert clean_rank is None or dirty_rank < clean_rank

    def test_attack_outside_window_is_noop(self, attack_world):
        world, traffic = attack_world
        target = 1200
        idle = ManipulatedAlexa(world, traffic, AttackWindow(target, 50, 60, 1e9))
        baseline = ManipulatedAlexa(world, traffic, AttackWindow(target, 99, 99, 0))
        a = idle.daily_list(3).name_rows
        b = baseline.daily_list(3).name_rows
        assert np.array_equal(a, b)


class TestExperiment:
    def test_tranco_dampens(self, attack_world):
        """The hardening claim: the target climbs far less on Tranco."""
        world, traffic = attack_world
        target = 1200
        attack = AttackWindow(target, start_day=3, end_day=5, intensity=5000)
        report = run_manipulation_experiment(world, traffic, attack)
        alexa_best = report.best_rank("alexa")
        tranco_best = report.best_rank("tranco")
        assert alexa_best is not None
        assert tranco_best is None or tranco_best > alexa_best

    def test_report_structure(self, attack_world):
        world, traffic = attack_world
        report = run_manipulation_experiment(
            world, traffic, AttackWindow(700, 2, 3, 100.0), days=range(5)
        )
        assert set(report.trajectories) == {"alexa", "umbrella", "tranco"}
        assert all(len(t) == 5 for t in report.trajectories.values())
        assert report.true_rank == 701
