"""Tests for RankedList and the provider base class."""

import numpy as np
import pytest

from repro.providers.base import Granularity, RankedList
from repro.providers.registry import PROVIDER_ORDER


class TestRankedList:
    def test_head_truncates(self):
        ranked = RankedList("x", 0, Granularity.DOMAIN, np.arange(100))
        head = ranked.head(10)
        assert len(head) == 10
        assert np.array_equal(head.name_rows, np.arange(10))

    def test_head_clips_buckets(self):
        ranked = RankedList(
            "x", None, Granularity.ORIGIN, np.arange(100),
            bucket_bounds=np.array([10, 50, 100]),
        )
        head = ranked.head(50)
        assert head.bucket_bounds.tolist() == [10, 50]
        head2 = ranked.head(30)
        assert head2.bucket_bounds.tolist() == [10, 30]

    def test_head_exactly_at_bucket_boundary(self):
        """k on a bound keeps that bucket whole and drops the rest."""
        ranked = RankedList(
            "x", None, Granularity.ORIGIN, np.arange(100),
            bucket_bounds=np.array([10, 50, 100]),
        )
        head = ranked.head(10)
        assert len(head) == 10
        assert head.bucket_bounds.tolist() == [10]

    def test_head_inside_first_bucket(self):
        """k below the first bound shrinks that bucket to k."""
        ranked = RankedList(
            "x", None, Granularity.ORIGIN, np.arange(100),
            bucket_bounds=np.array([10, 50, 100]),
        )
        head = ranked.head(5)
        assert len(head) == 5
        assert head.bucket_bounds.tolist() == [5]

    def test_head_beyond_length_is_unchanged(self):
        ranked = RankedList(
            "x", None, Granularity.ORIGIN, np.arange(100),
            bucket_bounds=np.array([10, 50, 100]),
        )
        head = ranked.head(500)
        assert len(head) == 100
        assert head.bucket_bounds.tolist() == [10, 50, 100]

    def test_head_bounds_always_close_at_length(self):
        """Invariant the serve layer reports to clients: the clipped
        bounds stay strictly increasing and end exactly at len(head)."""
        ranked = RankedList(
            "x", None, Granularity.ORIGIN, np.arange(100),
            bucket_bounds=np.array([10, 50, 100]),
        )
        for k in (1, 9, 10, 11, 49, 50, 51, 99, 100, 101):
            head = ranked.head(k)
            bounds = head.bucket_bounds.tolist()
            assert bounds[-1] == len(head)
            assert bounds == sorted(set(bounds))

    def test_head_bucketed_provider_boundaries(self, small_providers):
        """Same invariant on a real bucketed provider (CrUX)."""
        ranked = small_providers["crux"].daily_list(0)
        assert ranked.is_bucketed
        ks = [1, 10, 100] + ranked.bucket_bounds.tolist()[:2]
        for k in ks:
            head = ranked.head(k)
            bounds = head.bucket_bounds.tolist()
            assert bounds[-1] == len(head) == min(k, len(ranked))
            assert all(b1 < b2 for b1, b2 in zip(bounds, bounds[1:]))

    def test_strings(self, small_world, small_providers):
        ranked = small_providers["alexa"].daily_list(0)
        strings = ranked.strings(small_world, limit=5)
        assert len(strings) == 5
        assert all(isinstance(s, str) for s in strings)

    def test_is_bucketed(self):
        plain = RankedList("x", 0, Granularity.DOMAIN, np.arange(5))
        assert not plain.is_bucketed


class TestAllProviders:
    """Contract tests every provider must satisfy."""

    @pytest.fixture(scope="class", params=list(PROVIDER_ORDER))
    def provider(self, request, small_providers):
        return small_providers[request.param]

    def test_daily_list_nonempty(self, provider):
        assert len(provider.daily_list(0)) > 0

    def test_rows_are_valid(self, small_world, provider):
        ranked = provider.daily_list(0)
        assert (ranked.name_rows >= 0).all()
        assert (ranked.name_rows < len(small_world.names)).all()

    def test_rows_unique(self, provider):
        rows = provider.daily_list(0).name_rows
        assert len(np.unique(rows)) == len(rows)

    def test_respects_length_cap(self, small_world, provider):
        assert len(provider.daily_list(0)) <= small_world.config.list_length

    def test_deterministic(self, provider):
        a = provider.daily_list(1).name_rows
        b = provider.daily_list(1).name_rows
        assert np.array_equal(a, b)

    def test_granularity_matches_rows(self, small_world, provider):
        ranked = provider.daily_list(0)
        kinds = small_world.names.kind[ranked.name_rows]
        from repro.worldgen.nametable import NameKind

        expected = {
            Granularity.DOMAIN: NameKind.DOMAIN,
            Granularity.FQDN: NameKind.FQDN,
            Granularity.ORIGIN: NameKind.ORIGIN,
        }[provider.granularity]
        assert (kinds == expected).all()

    def test_head_is_truly_popular(self, small_world, provider):
        """The top of every list should skew toward truly popular sites."""
        ranked = provider.daily_list(0)
        sites = small_world.names.site[ranked.name_rows[:50]]
        sites = sites[sites >= 0]
        median_rank = np.median(sites)
        # Majestic is the loosest: links track popularity only weakly.
        assert median_rank < small_world.n_sites * 0.4
