"""Rolling-window Dowdall: bit-identity with batch recompute.

The property tests drive :class:`RollingDowdall` with synthetic rank
vectors over paper-scale windows (30-90 days); the world tests stream a
real :class:`TrancoProvider` through :class:`ContinuousTranco` and
require byte-identical ranked lists and snapshots.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.providers.tranco import dowdall_scores
from repro.ranking import ContinuousTranco, RollingDowdall, proof_of_equivalence
from repro.ranking.snapshots import canonical_bytes, snapshot_doc


def _synthetic_day(rng: np.random.RandomState, n_sites: int) -> np.ndarray:
    """One component-day rank vector: a permutation of 1..n with a random
    subset absent (rank 0), like a truncated real list."""
    ranks = rng.permutation(n_sites).astype(np.float64) + 1.0
    absent = rng.random_sample(n_sites) < 0.3
    ranks[absent] = 0.0
    return ranks


class TestRollingDowdall:
    @given(
        window=st.integers(min_value=30, max_value=90),
        extra_days=st.integers(min_value=0, max_value=8),
        n_components=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_rolling_equals_batch_recompute(
        self, window, extra_days, n_components, seed
    ):
        n_sites = 40
        total_days = window + extra_days
        rng = np.random.RandomState(seed)
        stream = [
            [_synthetic_day(rng, n_sites) for _ in range(n_components)]
            for _ in range(total_days)
        ]
        rolling = RollingDowdall(n_sites, window, n_components)
        for day, vectors in enumerate(stream):
            rolling.fold_in(day, vectors)
            window_days = range(max(0, day - window + 1), day + 1)
            batch = dowdall_scores(
                [stream[d][c] for c in range(n_components) for d in window_days],
                n_sites,
            )
            assert rolling.scores().tobytes() == batch.tobytes()

    def test_memory_bounded_by_window(self):
        rolling = RollingDowdall(n_sites=10, window=3, n_components=1)
        for day in range(8):
            rolling.fold_in(day, [np.arange(1.0, 11.0)])
            assert len(rolling.days_held) <= 3
        assert rolling.days_held == [5, 6, 7]

    def test_rejects_nonconsecutive_days(self):
        rolling = RollingDowdall(n_sites=4, window=2, n_components=1)
        rolling.fold_in(0, [np.ones(4)])
        with pytest.raises(ValueError, match="consecutive"):
            rolling.fold_in(2, [np.ones(4)])

    def test_rejects_wrong_component_count(self):
        rolling = RollingDowdall(n_sites=4, window=2, n_components=2)
        with pytest.raises(ValueError, match="component"):
            rolling.fold_in(0, [np.ones(4)])

    def test_rejects_wrong_vector_shape(self):
        rolling = RollingDowdall(n_sites=4, window=2, n_components=1)
        with pytest.raises(ValueError, match="shape"):
            rolling.fold_in(0, [np.ones(5)])

    def test_scores_before_any_day_raises(self):
        rolling = RollingDowdall(n_sites=4, window=2, n_components=1)
        with pytest.raises(ValueError, match="no days"):
            rolling.scores()

    @pytest.mark.parametrize("bad_window", [0, -1])
    def test_rejects_bad_window(self, bad_window):
        with pytest.raises(ValueError):
            RollingDowdall(n_sites=4, window=bad_window, n_components=1)


class TestContinuousTranco:
    def test_every_day_matches_batch_byte_for_byte(
        self, rolling_world, rolling_tranco
    ):
        stream = ContinuousTranco(rolling_tranco)
        for day in range(rolling_world.config.n_days):
            incremental = stream.advance()
            batch = rolling_tranco.daily_list(day)
            assert np.array_equal(incremental.name_rows, batch.name_rows)
            inc_bytes = canonical_bytes(snapshot_doc(incremental, rolling_world))
            batch_bytes = canonical_bytes(snapshot_doc(batch, rolling_world))
            assert inc_bytes == batch_bytes

    def test_lists_iterates_the_remaining_days(self, rolling_world, rolling_tranco):
        stream = ContinuousTranco(rolling_tranco)
        emitted = list(stream.lists())
        assert len(emitted) == rolling_world.config.n_days
        assert [ranked.day for ranked in emitted] == list(
            range(rolling_world.config.n_days)
        )
        assert stream.next_day == rolling_world.config.n_days


class TestProofOfEquivalence:
    def test_reports_identical_on_the_real_pipeline(self, rolling_tranco):
        report = proof_of_equivalence(rolling_tranco, k=50)
        assert report["identical"] is True
        assert report["mismatched_days"] == []
        assert report["days_checked"] == 6
        for entry in report["days"]:
            assert entry["scores_identical"]
            assert entry["ranks_identical"]
            assert entry["snapshot_identical"]
            assert entry["incremental_sha256"] == entry["batch_sha256"]

    def test_report_is_json_serializable(self, rolling_tranco):
        report = proof_of_equivalence(rolling_tranco, days=[0, 2], k=10)
        assert report["days_checked"] == 2
        json.dumps(report)

    def test_rejects_empty_and_negative_days(self, rolling_tranco):
        with pytest.raises(ValueError):
            proof_of_equivalence(rolling_tranco, days=[])
        with pytest.raises(ValueError):
            proof_of_equivalence(rolling_tranco, days=[-1])
