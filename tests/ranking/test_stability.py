"""StabilityTracker against hand-computed fixtures.

Three days of top-3 lists with known membership moves pin every metric:

* day 0: [a, b, c]   (baseline; churn defined as 0)
* day 1: [a, b, d]   (one entrant -> churn 1/3; baseline overlap 2/3)
* day 2: [d, e, f]   (two entrants -> churn 2/3; baseline overlap 0)
"""

from __future__ import annotations

import json

import pytest

from repro.ranking import StabilityTracker

_DAYS = (["a", "b", "c"], ["a", "b", "d"], ["d", "e", "f"])


def _tracked(k: int = 3) -> StabilityTracker:
    tracker = StabilityTracker(k)
    for names in _DAYS:
        tracker.observe(names)
    return tracker


class TestChurnAndDecay:
    def test_churn_series_matches_hand_computation(self):
        tracker = _tracked()
        assert tracker.churn == pytest.approx([0.0, 1 / 3, 2 / 3])

    def test_intersection_decay_matches_hand_computation(self):
        tracker = _tracked()
        assert tracker.intersection == pytest.approx([1.0, 2 / 3, 0.0])

    def test_identical_days_have_zero_churn_full_intersection(self):
        tracker = StabilityTracker(3)
        for _ in range(4):
            tracker.observe(["a", "b", "c"])
        assert tracker.churn == [0.0] * 4
        assert tracker.intersection == [1.0] * 4

    def test_only_the_top_k_participates(self):
        tracker = StabilityTracker(2)
        tracker.observe(["a", "b", "zzz"])
        tracker.observe(["a", "b", "different-tail"])
        # The tail name changed but the top-2 did not.
        assert tracker.churn == [0.0, 0.0]
        assert tracker.intersection == [1.0, 1.0]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            StabilityTracker(0)


class TestWeekdayPeriodicity:
    def test_buckets_follow_start_weekday(self):
        # start_weekday=3 (Thursday): day 1 lands on Friday, day 2 on
        # Saturday — one weekday sample, one weekend sample.
        weekday = _tracked().weekday_summary(start_weekday=3)
        assert weekday["mean_churn"]["fri"] == pytest.approx(1 / 3)
        assert weekday["mean_churn"]["sat"] == pytest.approx(2 / 3)
        assert weekday["mean_churn"]["mon"] is None
        assert weekday["weekend_weekday_ratio"] == pytest.approx(2.0)

    def test_ratio_is_none_without_weekend_samples(self):
        # start_weekday=0 (Monday): days 1-2 land Tue/Wed, no weekend.
        weekday = _tracked().weekday_summary(start_weekday=0)
        assert weekday["weekend_weekday_ratio"] is None

    def test_day_zero_is_excluded_from_weekday_stats(self):
        weekday = _tracked().weekday_summary(start_weekday=3)
        # Day 0 lands on Thursday; its churn is undefined, not 0.0.
        assert weekday["mean_churn"]["thu"] is None


class TestSummary:
    def test_summary_shape_and_values(self):
        summary = _tracked().summary(start_weekday=3)
        assert summary["k"] == 3
        assert summary["days"] == 3
        assert summary["mean_churn"] == pytest.approx(0.5)
        assert summary["min_intersection"] == pytest.approx(0.0)
        assert summary["churn"] == pytest.approx([0.0, 1 / 3, 2 / 3])
        assert summary["intersection_decay"] == pytest.approx([1.0, 2 / 3, 0.0])
        json.dumps(summary)

    def test_empty_tracker_summary_is_safe(self):
        summary = StabilityTracker(5).summary()
        assert summary["days"] == 0
        assert summary["mean_churn"] == 0.0
        assert summary["min_intersection"] is None


class TestDuplicateGuard:
    def test_duplicate_in_top_k_raises_with_the_name(self):
        tracker = StabilityTracker(3)
        with pytest.raises(ValueError, match=r"duplicate name 'a' in day 0"):
            tracker.observe(["a", "b", "a"])

    def test_duplicate_beyond_top_k_is_fine(self):
        tracker = StabilityTracker(2)
        tracker.observe(["a", "b", "a"])
        assert tracker.days_observed == 1

    def test_failed_observe_leaves_state_untouched(self):
        tracker = StabilityTracker(3)
        tracker.observe(["a", "b", "c"])
        with pytest.raises(ValueError):
            tracker.observe(["d", "d", "e"])
        assert tracker.days_observed == 1
        tracker.observe(["a", "b", "d"])
        assert tracker.churn == pytest.approx([0.0, 1 / 3])


class TestDegradedDays:
    def _tracked(self):
        tracker = StabilityTracker(3)
        tracker.observe(["a", "b", "c"])
        tracker.observe(["a", "b", "c"], degraded=True)  # carried forward
        tracker.observe(["d", "e", "f"])
        return tracker

    def test_degraded_churn_recorded_but_skipped_in_mean(self):
        tracker = self._tracked()
        # Raw series keeps the artifact zero; the mean only sees day 2.
        assert tracker.churn == pytest.approx([0.0, 0.0, 1.0])
        assert tracker.summary()["mean_churn"] == pytest.approx(1.0)

    def test_degraded_days_listed_in_summary(self):
        assert self._tracked().summary()["degraded_days"] == [1]

    def test_weekday_buckets_skip_degraded_days(self):
        tracker = self._tracked()
        weekday = tracker.weekday_summary(start_weekday=0)
        # Day 1 (tue) is degraded: its bucket must be empty, day 2 (wed)
        # carries the only sample.
        assert weekday["mean_churn"]["tue"] is None
        assert weekday["mean_churn"]["wed"] == pytest.approx(1.0)
