"""``repro ranking``: equivalence verdict drives the exit code."""

from __future__ import annotations

import json

from repro.cli import main

_WORLD_ARGS = ["--sites", "400", "--days", "4", "--seed", "11"]


class TestRankingCommand:
    def test_reports_identical_and_exits_zero(self, tmp_path, capsys):
        report_path = tmp_path / "ranking.json"
        code = main([
            "ranking", *_WORLD_ARGS, "--k", "25",
            "--cache-dir", str(tmp_path / "store"),
            "--json", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical" in out
        assert "stability @ k=25" in out
        report = json.loads(report_path.read_text())
        assert report["equivalence"]["identical"] is True
        assert report["equivalence"]["days_checked"] == 4
        assert report["stability"]["k"] == 25
        assert len(report["stability"]["churn"]) == 4

    def test_rejects_bad_k(self, capsys):
        code = main(["ranking", "--k", "0", *_WORLD_ARGS, "--no-cache"])
        capsys.readouterr()
        assert code == 2
