"""Ingestion contracts, the gap policy, and the degraded feed.

The contract edge cases run against *real* provider contracts (Alexa,
Umbrella, Tranco — domain and DNS granularities, different publication
shapes) built over the shared rolling world, not against synthetic
contracts only: the paper's premise is that provider mess arrives at the
aggregation boundary, so that boundary is what gets tested.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, FaultRule, day_key, default_data_plan
from repro.providers.registry import build_providers
from repro.ranking.ingest import (
    DegradedFeed,
    GapPolicy,
    IngestGate,
    ProviderContract,
    contract_for,
    digest_of_data_log,
    legacy_wire_doc,
    wire_doc,
)

_PROVIDERS = ("alexa", "umbrella", "tranco")


@pytest.fixture(scope="module")
def providers(rolling_world):
    return build_providers(rolling_world)


def _contract(providers, rolling_world, name) -> ProviderContract:
    return contract_for(providers[name], rolling_world)


def _doc(contract: ProviderContract, day: int, rows) -> dict:
    return wire_doc(contract.provider, day, contract.granularity, rows)


class TestContractEdgeCases:
    """Satellite: empty / single-domain / non-contiguous / short days,
    across at least Tranco, Umbrella, and Alexa contracts."""

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_empty_day_is_quarantined(self, providers, rolling_world, name):
        contract = _contract(providers, rolling_world, name)
        status, rows, reasons, _ = contract.classify(
            _doc(contract, 3, []), day=3
        )
        assert status == "quarantined"
        assert rows is None
        assert "empty_day" in reasons

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_single_domain_day_is_clean(self, providers, rolling_world, name):
        contract = _contract(providers, rolling_world, name)
        status, rows, reasons, repairs = contract.classify(
            _doc(contract, 0, [5]), day=0
        )
        assert status == "clean"
        assert rows == (5,)
        assert reasons == () and repairs == ()

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_single_domain_day_below_floor_is_truncated(
        self, providers, rolling_world, name
    ):
        contract = _contract(providers, rolling_world, name)
        status, rows, reasons, _ = contract.classify(
            _doc(contract, 1, [5]), day=1, reference_length=100
        )
        assert status == "quarantined"
        assert "truncated" in reasons

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_non_contiguous_day_number_is_quarantined(
        self, providers, rolling_world, name
    ):
        contract = _contract(providers, rolling_world, name)
        status, _, reasons, _ = contract.classify(
            _doc(contract, 4, [1, 2, 3]), day=3
        )
        assert status == "quarantined"
        assert "day_mismatch" in reasons

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_short_day_above_floor_is_repaired(
        self, providers, rolling_world, name
    ):
        contract = _contract(providers, rolling_world, name)
        status, rows, _, repairs = contract.classify(
            _doc(contract, 2, list(range(60))), day=2, reference_length=100
        )
        assert status == "repaired"
        assert len(rows) == 60
        assert "short_day" in repairs

    @pytest.mark.parametrize("name", _PROVIDERS)
    def test_row_out_of_range_is_quarantined(
        self, providers, rolling_world, name
    ):
        contract = _contract(providers, rolling_world, name)
        status, _, reasons, _ = contract.classify(
            _doc(contract, 0, [0, contract.n_rows]), day=0
        )
        assert status == "quarantined"
        assert "row_out_of_range" in reasons

    def test_rank_vector_shorter_than_n_sites_still_folds(
        self, providers, rolling_world
    ):
        # A repaired short day yields a rank vector with absences, not a
        # shape error: fold it through the real rows -> sites path.
        from repro.providers.tranco import site_rank_vector

        contract = _contract(providers, rolling_world, "alexa")
        status, rows, _, _ = contract.classify(
            _doc(contract, 0, [3, 1, 4]), day=0
        )
        assert status == "clean"
        vector = site_rank_vector(rolling_world, list(rows))
        assert vector.shape == (rolling_world.n_sites,)
        assert (vector > 0).sum() <= 3

    def test_duplicate_ranks_are_repaired_first_occurrence_wins(
        self, providers, rolling_world
    ):
        contract = _contract(providers, rolling_world, "umbrella")
        status, rows, _, repairs = contract.classify(
            _doc(contract, 0, [7, 3, 7, 5, 3]), day=0
        )
        assert status == "repaired"
        assert rows == (7, 3, 5)
        assert "duplicate_ranks" in repairs

    def test_legacy_schema_is_repaired_as_drift(
        self, providers, rolling_world
    ):
        contract = _contract(providers, rolling_world, "tranco")
        doc = legacy_wire_doc(
            contract.provider, 2, contract.granularity, [9, 8, 7]
        )
        status, rows, _, repairs = contract.classify(doc, day=2)
        assert status == "repaired"
        assert rows == (9, 8, 7)
        assert "schema_drift" in repairs

    def test_unknown_schema_and_wrong_provider_quarantined(
        self, providers, rolling_world
    ):
        contract = _contract(providers, rolling_world, "alexa")
        status, _, reasons, _ = contract.classify(
            {"schema": "repro/day-list/9"}, day=0
        )
        assert (status, reasons) == ("quarantined", ("unknown_schema",))
        impostor = wire_doc("umbrella", 0, contract.granularity, [1])
        status, _, reasons, _ = contract.classify(impostor, day=0)
        assert "provider_mismatch" in reasons

    def test_stale_repeat_detected_against_previous_rows(
        self, providers, rolling_world
    ):
        contract = _contract(providers, rolling_world, "umbrella")
        status, rows, _, repairs = contract.classify(
            _doc(contract, 1, [4, 2]), day=1, previous_rows=(4, 2)
        )
        assert status == "repaired"
        assert "stale_repeat" in repairs
        assert rows == (4, 2)


class TestIngestGate:
    def _gate(self, providers, rolling_world, name="alexa", **policy) -> IngestGate:
        return IngestGate(
            _contract(providers, rolling_world, name), GapPolicy(**policy)
        )

    def test_days_must_arrive_in_order(self, providers, rolling_world):
        gate = self._gate(providers, rolling_world)
        gate.ingest(0, _doc(gate.contract, 0, [1, 2]))
        with pytest.raises(ValueError, match="in order"):
            gate.ingest(2, _doc(gate.contract, 2, [1, 2]))

    def test_carry_forward_is_bounded_then_unrecoverable(
        self, providers, rolling_world
    ):
        gate = self._gate(providers, rolling_world, max_carry=2)
        gate.ingest(0, _doc(gate.contract, 0, [1, 2, 3]))
        resolutions = [gate.ingest(day, None).resolution
                       for day in range(1, 5)]
        assert resolutions == [
            "carried_forward", "carried_forward",
            "unrecoverable", "unrecoverable",
        ]
        stalenesses = [r.staleness for r in gate.records[1:]]
        assert stalenesses == [1, 2, 3, 4]

    def test_carried_rows_are_the_last_accepted_list(
        self, providers, rolling_world
    ):
        gate = self._gate(providers, rolling_world)
        gate.ingest(0, _doc(gate.contract, 0, [9, 4]))
        record = gate.ingest(1, None)
        assert record.status == "missing"
        assert record.rows == (9, 4)
        assert record.degraded

    def test_retirement_is_sticky_and_never_carries(
        self, providers, rolling_world
    ):
        gate = self._gate(providers, rolling_world)
        gate.ingest(0, _doc(gate.contract, 0, [1, 2]))
        gate.ingest(1, None, injected="data.provider.retired")
        record = gate.ingest(2, _doc(gate.contract, 2, [1, 2]))
        assert gate.retired_at == 1
        assert record.resolution == "retired"
        assert record.rows is None

    def test_fresh_accept_resets_staleness(self, providers, rolling_world):
        gate = self._gate(providers, rolling_world)
        gate.ingest(0, _doc(gate.contract, 0, [1, 2]))
        gate.ingest(1, None)
        record = gate.ingest(2, _doc(gate.contract, 2, [2, 3]))
        assert record.resolution == "clean"
        assert record.staleness == 0

    def test_reference_length_is_the_max_accepted(
        self, providers, rolling_world
    ):
        gate = self._gate(providers, rolling_world)
        gate.ingest(0, _doc(gate.contract, 0, list(range(100))))
        # 30 rows < half the learned reference: quarantined, carried.
        record = gate.ingest(1, _doc(gate.contract, 1, list(range(30))))
        assert record.status == "quarantined"
        assert "truncated" in record.reasons
        assert record.resolution == "carried_forward"


class TestDegradedFeed:
    def _feed(self, providers, seed=11, n_days=8):
        plan = default_data_plan(seed, n_days)
        pool = {n: providers[n] for n in ("alexa", "umbrella", "majestic")}
        return DegradedFeed(pool, plan)

    def test_double_consult_is_an_error(self, providers):
        feed = self._feed(providers)
        feed.fetch("alexa", 1)
        with pytest.raises(ValueError, match="consulted twice"):
            feed.fetch("alexa", 1)

    def test_day_zero_is_always_clean(self, providers, rolling_world):
        feed = self._feed(providers)
        doc, injected = feed.fetch("alexa", 0)
        assert injected is None
        contract = _contract(providers, rolling_world, "alexa")
        status, _, _, _ = contract.classify(doc, day=0)
        assert status == "clean"

    def test_digest_replays_in_run(self, providers):
        feed = self._feed(providers)
        for day in range(6):
            for name in ("alexa", "umbrella", "majestic"):
                feed.fetch(name, day)
        digest = feed.fault_digest()
        assert digest == feed.replay_digest()
        assert feed.fired_sites(), "the default plan must actually fire"

    def test_digest_reproduces_across_feeds_and_interleavings(
        self, providers
    ):
        by_provider = self._feed(providers)
        for name in ("alexa", "umbrella", "majestic"):
            for day in range(6):
                by_provider.fetch(name, day)
        by_day = self._feed(providers)
        for day in range(6):
            for name in ("majestic", "alexa", "umbrella"):
                by_day.fetch(name, day)
        assert by_provider.fault_digest() == by_day.fault_digest()

    def test_digest_is_order_insensitive_but_content_sensitive(self):
        log = [
            {"key": day_key("alexa", 1), "site": "data.day.missing"},
            {"key": day_key("umbrella", 2), "site": "data.day.truncated"},
        ]
        assert digest_of_data_log(log) == digest_of_data_log(log[::-1])
        assert digest_of_data_log(log) != digest_of_data_log(log[:1])

    def test_retirement_is_sticky_without_reconsulting(self, providers):
        plan = FaultPlan(
            [FaultRule("data.provider.retired",
                       match=day_key("alexa", 2), probability=1.0)],
            seed=5,
        )
        feed = DegradedFeed({"alexa": providers["alexa"]}, plan)
        assert feed.fetch("alexa", 1)[1] is None
        assert feed.fetch("alexa", 2) == (None, "data.provider.retired")
        assert feed.fetch("alexa", 3) == (None, "data.provider.retired")
        # Only the firing consult is logged; stickiness adds nothing.
        assert len(feed.fault_log) == 1

    def test_truncation_honors_rule_fraction(self, providers):
        plan = FaultPlan(
            [FaultRule("data.day.truncated", match=day_key("alexa", 1),
                       probability=1.0, fraction=0.25)],
            seed=5,
        )
        feed = DegradedFeed({"alexa": providers["alexa"]}, plan)
        full, _ = feed.fetch("alexa", 0)
        cut, injected = feed.fetch("alexa", 1)
        assert injected == "data.day.truncated"
        assert len(cut["rows"]) == max(1, int(len(full["rows"]) * 0.25))
