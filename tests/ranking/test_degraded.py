"""Gap-tolerant rolling ranks: degraded-vs-batch bit-identity.

Runs the degraded twin over the shared rolling world (window 3 over 6
days, so every fault lands inside at least one full window roll) and
holds it to the acceptance invariants: rolling == batch on the same
degraded input, every non-clean window marked, clean windows identical
to the undegraded pipeline, every armed site fired, digest replays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, FaultRule, day_key, default_data_plan
from repro.ranking import gap_dowdall_scores
from repro.ranking.degraded import DegradedTranco, proof_of_degraded_equivalence
from repro.providers.tranco import dowdall_scores


def _vec(rng, n):
    ranks = rng.permutation(n).astype(np.float64) + 1.0
    ranks[rng.random_sample(n) < 0.3] = 0.0
    return ranks


class TestGapDowdall:
    def test_complete_window_matches_flat_batch_bitwise(self):
        rng = np.random.RandomState(3)
        cells = [[_vec(rng, 50) for _ in range(4)] for _ in range(2)]
        flat = [v for comp in cells for v in comp]
        assert (gap_dowdall_scores(cells, 50).tobytes()
                == dowdall_scores(flat, 50).tobytes())

    def test_holes_rescale_by_expected_over_present(self):
        rng = np.random.RandomState(4)
        present = [_vec(rng, 50), _vec(rng, 50)]
        cells = [[present[0], None, present[1]]]
        expected = dowdall_scores(present, 50) * (3.0 / 2.0)
        assert gap_dowdall_scores(cells, 50).tobytes() == expected.tobytes()

    def test_fully_empty_component_contributes_nothing(self):
        rng = np.random.RandomState(5)
        alive = [_vec(rng, 50) for _ in range(3)]
        cells = [[None, None, None], list(alive)]
        expected = dowdall_scores(alive, 50)
        assert gap_dowdall_scores(cells, 50).tobytes() == expected.tobytes()

    def test_ragged_components_rejected(self):
        with pytest.raises(ValueError):
            gap_dowdall_scores([[None], [None, None]], 10)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            gap_dowdall_scores([], 10)


class TestProofOfDegradedEquivalence:
    def test_default_plan_proof_holds(self, rolling_tranco):
        plan = default_data_plan(11, rolling_tranco.world.config.n_days)
        proof = proof_of_degraded_equivalence(rolling_tranco, plan)
        assert proof["ok"], proof
        assert proof["identical"]
        assert proof["marking_consistent"]
        assert proof["clean_days_identical"]
        assert proof["all_armed_sites_fired"]
        assert proof["digest_match"]
        assert proof["degraded_days"], "the plan must actually degrade days"

    def test_unfaulted_plan_is_the_clean_pipeline(self, rolling_tranco):
        plan = FaultPlan([], seed=1)
        proof = proof_of_degraded_equivalence(rolling_tranco, plan)
        assert proof["ok"]
        assert proof["degraded_days"] == []
        assert proof["clean_days"] == list(
            range(rolling_tranco.world.config.n_days)
        )

    def test_proof_is_seed_deterministic(self, rolling_tranco):
        n_days = rolling_tranco.world.config.n_days
        first = proof_of_degraded_equivalence(
            rolling_tranco, default_data_plan(11, n_days)
        )
        second = proof_of_degraded_equivalence(
            rolling_tranco, default_data_plan(11, n_days)
        )
        assert first["fault_digest"] == second["fault_digest"]
        assert [d["sha256"] for d in first["days"]] == [
            d["sha256"] for d in second["days"]
        ]
        third = proof_of_degraded_equivalence(
            rolling_tranco, default_data_plan(12, n_days)
        )
        assert third["fault_digest"] != first["fault_digest"]


class TestDegradedTranco:
    def test_retirement_drops_component_without_perturbing_survivors(
        self, rolling_tranco
    ):
        # Retire alexa from day 1: every emission must equal the batch
        # aggregation of the surviving components only.
        plan = FaultPlan(
            [FaultRule("data.provider.retired",
                       match=day_key("alexa", 1), probability=1.0)],
            seed=2,
        )
        pipeline = DegradedTranco(rolling_tranco, plan)
        world = rolling_tranco.world
        names = pipeline.component_names
        for day in range(world.config.n_days):
            ranked, health = pipeline.advance()
            window = list(rolling_tranco.window_days(day))
            cells = [[pipeline.cells[(n, d)] for d in window] for n in names]
            if day >= 1:
                assert health["components"]["alexa"]["status"] == "retired"
                alexa_cells = dict(zip(window, cells[names.index("alexa")]))
                assert all(cell is None for d, cell in alexa_cells.items()
                           if d >= 1)
            batch = rolling_tranco.assemble_scores(
                gap_dowdall_scores(cells, world.n_sites), day
            )
            assert np.array_equal(ranked.name_rows, batch.name_rows)

    def test_health_block_marks_exactly_the_degraded_windows(
        self, rolling_tranco
    ):
        plan = FaultPlan(
            [FaultRule("data.day.missing",
                       match=day_key("umbrella", 2), probability=1.0)],
            seed=3,
        )
        pipeline = DegradedTranco(rolling_tranco, plan)
        window = rolling_tranco.world.config.tranco_window
        flags = []
        for day in range(rolling_tranco.world.config.n_days):
            _, health = pipeline.advance()
            flags.append(health["degraded"])
        # Degraded exactly while day 2 sits inside the rolling window.
        expected = [2 <= day <= 2 + window - 1
                    for day in range(len(flags))]
        assert flags == expected
