"""Snapshot documents, canonical bytes/ETags, and rank diffs."""

from __future__ import annotations

import hashlib
import json

from repro.ranking import diff_ranked, snapshot_doc, snapshot_etag
from repro.ranking.snapshots import canonical_bytes


class TestCanonicalBytesAndEtag:
    def test_canonical_bytes_sort_keys(self):
        assert canonical_bytes({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}'

    def test_etag_is_quoted_sha256_of_the_body(self):
        body = b'{"a": 1}'
        etag = snapshot_etag(body)
        assert etag == '"%s"' % hashlib.sha256(body).hexdigest()
        assert etag.startswith('"') and etag.endswith('"')
        assert len(etag) == 66  # 64 hex chars + 2 quotes

    def test_equal_docs_give_equal_etags(self):
        a = snapshot_etag(canonical_bytes({"x": 1, "y": [2, 3]}))
        b = snapshot_etag(canonical_bytes({"y": [2, 3], "x": 1}))
        assert a == b


class TestSnapshotDoc:
    def test_doc_shape_and_k_slice(self, rolling_world, rolling_tranco):
        ranked = rolling_tranco.daily_list(0)
        doc = snapshot_doc(ranked, rolling_world, k=5)
        assert doc["provider"] == "tranco"
        assert doc["day"] == 0
        assert doc["count"] == len(doc["names"]) == 5
        assert all(isinstance(name, str) for name in doc["names"])
        assert doc["names"] == snapshot_doc(ranked, rolling_world)["names"][:5]
        json.dumps(doc)

    def test_full_doc_defaults_to_whole_list(self, rolling_world, rolling_tranco):
        ranked = rolling_tranco.daily_list(1)
        doc = snapshot_doc(ranked, rolling_world)
        assert doc["count"] == len(ranked)


class TestDiffRanked:
    def test_hand_computed_diff(self):
        diff = diff_ranked(["a", "b", "c", "d"], ["b", "a", "c", "e"])
        assert diff["entrants"] == [{"name": "e", "rank": 4}]
        assert diff["dropouts"] == [{"name": "d", "rank": 4}]
        assert diff["moved"] == [
            {"name": "b", "from_rank": 2, "to_rank": 1, "delta": 1},
            {"name": "a", "from_rank": 1, "to_rank": 2, "delta": -1},
        ]
        assert diff["unchanged"] == 1
        assert diff["from_count"] == diff["to_count"] == 4

    def test_identical_lists_diff_to_nothing(self):
        diff = diff_ranked(["a", "b"], ["a", "b"])
        assert diff["entrants"] == []
        assert diff["dropouts"] == []
        assert diff["moved"] == []
        assert diff["unchanged"] == 2

    def test_disjoint_lists(self):
        diff = diff_ranked(["a"], ["b", "c"])
        assert [e["name"] for e in diff["entrants"]] == ["b", "c"]
        assert [d["name"] for d in diff["dropouts"]] == ["a"]
        assert diff["unchanged"] == 0
        assert diff["from_count"] == 1 and diff["to_count"] == 2

    def test_empty_sides_are_fine(self):
        diff = diff_ranked([], [])
        assert diff["unchanged"] == 0
        assert diff["entrants"] == [] and diff["dropouts"] == []

    def test_deterministic_ordering_by_rank(self):
        diff = diff_ranked(["a", "b", "c"], ["c", "b", "a"])
        assert [m["to_rank"] for m in diff["moved"]] == [1, 3]
        # b kept rank 2.
        assert diff["unchanged"] == 1
