"""A tiny world with a short Tranco window, so incremental-vs-batch
equivalence runs over several full window rolls in test time."""

from __future__ import annotations

import pytest

from repro.providers.registry import build_providers
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

ROLLING_CONFIG = WorldConfig(n_sites=400, n_days=6, seed=11, tranco_window=3)


@pytest.fixture(scope="session")
def rolling_world():
    return build_world(ROLLING_CONFIG)


@pytest.fixture(scope="session")
def rolling_tranco(rolling_world):
    return build_providers(rolling_world)["tranco"]
