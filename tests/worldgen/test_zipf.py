"""Tests for popularity distributions and count sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.worldgen.zipf import lognormal_factors, sample_counts, zipf_weights


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(1000, 0.95)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()
        assert (weights > 0).all()

    def test_exponent_controls_skew(self):
        flat = zipf_weights(1000, 0.5)
        steep = zipf_weights(1000, 1.5)
        assert steep[0] > flat[0]
        assert steep[-1] < flat[-1]

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_n(self, bad):
        with pytest.raises(ValueError):
            zipf_weights(bad, 1.0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            zipf_weights(10, 0.0)

    @given(st.integers(min_value=1, max_value=2000),
           st.floats(min_value=0.1, max_value=2.5))
    @settings(max_examples=30)
    def test_property_valid_distribution(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 1e-15).all()


class TestSampleCounts:
    def test_zero_expectation_gives_zero(self, rng):
        assert (sample_counts(rng, np.zeros(100)) == 0).all()

    def test_negative_treated_as_zero(self, rng):
        assert (sample_counts(rng, np.array([-5.0, -0.1])) == 0).all()

    def test_small_means_poisson_like(self, rng):
        expected = np.full(50_000, 3.0)
        observed = sample_counts(rng, expected)
        assert observed.mean() == pytest.approx(3.0, rel=0.05)
        assert observed.var() == pytest.approx(3.0, rel=0.1)

    def test_large_means_normal_approx(self, rng):
        expected = np.full(10_000, 1e6)
        observed = sample_counts(rng, expected)
        assert observed.mean() == pytest.approx(1e6, rel=0.001)
        # Poisson variance ~ mean.
        assert observed.std() == pytest.approx(1000.0, rel=0.1)

    def test_integral_and_nonnegative(self, rng):
        expected = np.abs(rng.normal(10, 20, size=1000))
        observed = sample_counts(rng, expected)
        assert (observed >= 0).all()
        assert (observed == np.rint(observed)).all()

    def test_mixed_magnitudes_shape_preserved(self, rng):
        expected = np.array([[0.5, 5e5], [50.0, 0.0]])
        observed = sample_counts(rng, expected)
        assert observed.shape == expected.shape


class TestLognormalFactors:
    def test_zero_sigma_is_ones(self, rng):
        assert (lognormal_factors(rng, 0.0, 10) == 1.0).all()

    def test_positive(self, rng):
        assert (lognormal_factors(rng, 1.0, 1000) > 0).all()

    def test_median_near_one(self, rng):
        factors = lognormal_factors(rng, 0.5, 100_000)
        assert np.median(factors) == pytest.approx(1.0, rel=0.02)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            lognormal_factors(rng, -0.1, 10)
