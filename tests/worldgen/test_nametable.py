"""Tests for the name table."""

import numpy as np
import pytest

from repro.weblib.domains import parse_origin
from repro.weblib.psl import default_psl
from repro.worldgen.nametable import INFRA_DNS_NAMES, NameKind


class TestLayout:
    def test_domain_rows_lead_in_site_order(self, small_world):
        names = small_world.names
        n = small_world.n_sites
        assert (names.kind[:n] == NameKind.DOMAIN).all()
        assert (names.site[:n] == np.arange(n)).all()
        assert names.strings[:n] == small_world.sites.names

    def test_infra_rows_present(self, small_world):
        names = small_world.names
        infra = names.dns_weight > 0
        expected_chaff = round(
            small_world.config.dns_chaff_fraction * small_world.n_sites
        )
        assert infra.sum() == len(INFRA_DNS_NAMES) + expected_chaff
        assert (names.site[infra] == -1).all()

    def test_strings_unique_per_kind(self, small_world):
        # A site's apex legitimately appears both as its domain row and as
        # an FQDN row; within one kind, strings must be unique.
        names = small_world.names
        for kind in (NameKind.DOMAIN, NameKind.FQDN, NameKind.ORIGIN):
            rows = names.rows_of_kind(kind)
            strings = [names.strings[int(r)] for r in rows]
            assert len(set(strings)) == len(strings)

    def test_lookup(self, small_world):
        names = small_world.names
        domain = small_world.sites.names[5]
        row = names.lookup(domain)
        assert row == 5
        assert names.lookup("not-a-real-name.zz") is None


class TestFqdns:
    def test_every_site_has_fqdns(self, small_world):
        names = small_world.names
        fqdn_sites = names.site[names.rows_of_kind(NameKind.FQDN)]
        owned = fqdn_sites[fqdn_sites >= 0]
        assert set(owned.tolist()) == set(range(small_world.n_sites))

    def test_fqdn_shares_sum_to_one_per_site(self, small_world):
        names = small_world.names
        rows = names.rows_of_kind(NameKind.FQDN)
        sites = names.site[rows]
        shares = names.share[rows]
        totals = np.zeros(small_world.n_sites)
        np.add.at(totals, sites[sites >= 0], shares[sites >= 0])
        assert np.allclose(totals, 1.0, atol=1e-6)

    def test_fqdns_fold_to_owner_domain(self, small_world):
        names = small_world.names
        psl = default_psl()
        rows = names.rows_of_kind(NameKind.FQDN)[:300]
        for row in rows:
            site = int(names.site[row])
            if site < 0:
                continue
            registrable = psl.registrable_domain(names.strings[row])
            assert registrable == small_world.sites.names[site]


class TestOrigins:
    def test_every_site_has_an_origin(self, small_world):
        names = small_world.names
        origin_sites = names.site[names.rows_of_kind(NameKind.ORIGIN)]
        assert set(origin_sites.tolist()) == set(range(small_world.n_sites))

    def test_origins_parse(self, small_world):
        names = small_world.names
        rows = names.rows_of_kind(NameKind.ORIGIN)[:300]
        for row in rows:
            origin = parse_origin(names.strings[row])
            assert origin.scheme in ("http", "https")

    def test_origin_shares_bounded_per_site(self, small_world):
        names = small_world.names
        rows = names.rows_of_kind(NameKind.ORIGIN)
        sites = names.site[rows]
        shares = names.share[rows]
        totals = np.zeros(small_world.n_sites)
        np.add.at(totals, sites, shares)
        assert (totals <= 1.0 + 1e-6).all()
        assert (totals > 0).all()

    def test_some_http_origins_exist(self, small_world):
        names = small_world.names
        rows = names.rows_of_kind(NameKind.ORIGIN)
        http = [row for row in rows if names.strings[row].startswith("http://")]
        expected = small_world.config.http_origin_prob * small_world.n_sites
        assert len(http) == pytest.approx(expected, rel=0.35)
