"""Tests for the world summary renderer and its CLI command."""

from repro.cli import main
from repro.worldgen.summary import summarize_world


class TestSummary:
    def test_contains_key_sections(self, small_world):
        text = summarize_world(small_world)
        assert "category mix" in text
        assert "geography" in text
        assert "cloudflare adoption" in text
        assert "name table" in text
        assert "request shape" in text

    def test_mentions_top_site(self, small_world):
        text = summarize_world(small_world)
        assert small_world.sites.names[0] in text

    def test_universe_line(self, small_world):
        text = summarize_world(small_world)
        assert str(small_world.n_sites) in text
        assert str(small_world.config.list_length) in text

    def test_japan_hosts_more_than_user_share(self, small_world):
        """The site_share mechanism must be visible in the summary data."""
        from repro.worldgen.countries import country_index

        jp = country_index("jp")
        hosted = (small_world.sites.home_country == jp).mean()
        assert hosted > 0.04  # ~7% site share vs 2.8% user share


class TestSummaryCli:
    def test_cli(self, capsys):
        code = main(["summary", "--sites", "1200", "--days", "8", "--seed", "77"])
        assert code == 0
        out = capsys.readouterr().out
        assert "category mix" in out
