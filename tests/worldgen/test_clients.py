"""Tests for the client population."""

import numpy as np
import pytest

from repro.worldgen.countries import COUNTRIES, TELEMETRY_COUNTRIES, country_index


class TestClientPopulation:
    def test_totals_match_config(self, small_world):
        clients = small_world.clients
        assert clients.total_clients == pytest.approx(
            small_world.config.n_clients, rel=0.1
        )

    def test_platform_split_tracks_android_share(self, small_world):
        clients = small_world.clients
        split = clients.platform_split()
        android = np.array([c.android_share for c in COUNTRIES])
        assert np.allclose(split, android, atol=0.02)

    def test_china_dominates_secrank(self, small_world):
        clients = small_world.clients
        assert clients.secrank_share[country_index("cn")] > 0.9

    def test_us_dominates_umbrella(self, small_world):
        clients = small_world.clients
        us = clients.umbrella_share[country_index("us")]
        assert us == max(clients.umbrella_share)
        assert us > 0.5

    def test_chrome_panel_positive_everywhere(self, small_world):
        panel = small_world.clients.chrome_panel_clients()
        assert (panel > 0).all()

    def test_alexa_panel_desktop_only_definition(self, small_world):
        clients = small_world.clients
        panel = clients.alexa_panel_clients()
        # Panel sizes bounded by the desktop populations.
        assert (panel <= clients.counts[:, 0]).all()
        assert (panel >= 0).all()

    def test_country_count(self, small_world):
        assert small_world.clients.n_countries == len(COUNTRIES)
        assert len(TELEMETRY_COUNTRIES) == 11


class TestCountryTable:
    def test_shares_sum_to_one(self):
        assert sum(c.web_population_share for c in COUNTRIES) == pytest.approx(1.0)

    def test_codes_unique(self):
        codes = [c.code for c in COUNTRIES]
        assert len(set(codes)) == len(codes)

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            country_index("atlantis")

    def test_japan_is_most_local(self):
        jp = COUNTRIES[country_index("jp")]
        others = [c for c in COUNTRIES if c.code != "jp"]
        assert jp.locality_mean > max(c.locality_mean for c in others if c.code != "cn")
