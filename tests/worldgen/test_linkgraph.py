"""Tests for the explicit hyperlink graph."""

import numpy as np

from repro.worldgen.linkgraph import backlink_counts, build_link_graph, link_pagerank


class TestLinkGraph:
    def test_builds_over_prefix(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=150)
        assert graph.number_of_nodes() == 150
        assert graph.number_of_edges() > 150  # mean_outlinks >> 1

    def test_no_self_loops(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=100)
        assert all(u != v for u, v in graph.edges())

    def test_backlink_counts_match_in_degree(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=100)
        counts = backlink_counts(graph, 100)
        assert counts.sum() == graph.number_of_edges()
        for node in (0, 50, 99):
            assert counts[node] == graph.in_degree(node)

    def test_high_score_sites_attract_links(self, tiny_world, rng):
        sites = tiny_world.sites
        graph = build_link_graph(sites, rng, max_sites=300, mean_outlinks=20)
        counts = backlink_counts(graph, 300)
        score = sites.backlink_score[:300]
        top_scored = np.argsort(-score)[:30]
        bottom_scored = np.argsort(-score)[-30:]
        assert counts[top_scored].mean() > counts[bottom_scored].mean() * 2

    def test_pagerank_is_distribution(self, tiny_world, rng):
        graph = build_link_graph(tiny_world.sites, rng, max_sites=120)
        ranks = link_pagerank(graph, 120)
        assert ranks.sum() == np.float64(1.0) or abs(ranks.sum() - 1.0) < 1e-6
        assert (ranks >= 0).all()

    def test_deterministic_given_rng(self, tiny_world):
        a = build_link_graph(tiny_world.sites, np.random.default_rng(5), max_sites=80)
        b = build_link_graph(tiny_world.sites, np.random.default_rng(5), max_sites=80)
        assert sorted(a.edges()) == sorted(b.edges())
