"""Tests for the site universe generator."""

import numpy as np
import pytest

from repro.weblib.categories import CATEGORIES, category_index
from repro.weblib.psl import default_psl
from repro.worldgen.countries import COUNTRIES, country_index


class TestStructure:
    def test_sorted_by_weight(self, small_world):
        weights = small_world.sites.weight
        assert (np.diff(weights) <= 1e-18).all()
        assert weights.sum() == pytest.approx(1.0)

    def test_names_unique_and_registrable(self, small_world):
        names = small_world.sites.names
        assert len(set(names)) == len(names)
        psl = default_psl()
        sample = names[::25]
        assert all(psl.registrable_domain(n) == n for n in sample)

    def test_array_lengths_consistent(self, small_world):
        sites = small_world.sites
        n = sites.n_sites
        for attr in (
            "weight", "category", "home_country", "locality", "subres_mult",
            "root_frac", "tls_per_pageload", "html_frac", "success_rate",
            "referer_null_frac", "bot_share", "browser5_frac", "mobile_share",
            "completion_rate", "dwell_seconds", "private_rate", "work_affinity",
            "enterprise_block", "robots_public", "backlink_score", "backlinks",
            "cf_served",
        ):
            assert len(getattr(sites, attr)) == n, attr
        assert sites.country_share.shape == (n, len(COUNTRIES))


class TestInvariants:
    def test_country_share_rows_sum_to_one(self, small_world):
        rows = small_world.sites.country_share.sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_home_country_gets_locality_share(self, small_world):
        sites = small_world.sites
        idx = np.arange(sites.n_sites)
        home_share = sites.country_share[idx, sites.home_country]
        assert np.allclose(home_share, sites.locality, atol=1e-9)

    def test_request_shape_bounds(self, small_world):
        sites = small_world.sites
        assert (sites.subres_mult >= 1.0).all()
        assert (sites.root_frac > 0).all() and (sites.root_frac < 1).all()
        assert (sites.tls_per_pageload >= 1.0).all()
        assert (sites.tls_per_pageload <= sites.subres_mult + 1e-9).all()
        assert (sites.html_frac > 0).all() and (sites.html_frac <= 0.95).all()
        assert (sites.success_rate > 0).all() and (sites.success_rate <= 1).all()
        assert (sites.bot_share >= 0).all() and (sites.bot_share < 1).all()
        assert (sites.browser5_frac + 1e-12 >= 0).all()
        assert (sites.browser5_frac <= 1 - sites.bot_share + 1e-9).all()

    def test_root_loads_never_exceed_requests(self, small_world):
        # The bookend property of Section 3.4.
        sites = small_world.sites
        assert (sites.root_frac <= sites.subres_mult).all()

    def test_giants_never_on_cloudflare(self, small_world):
        giants = small_world.config.cf_excluded_giants
        assert not small_world.sites.cf_served[:giants].any()

    def test_cf_adoption_in_plausible_range(self, small_world):
        rate = small_world.sites.cf_served.mean()
        assert 0.1 < rate < 0.45

    def test_backlinks_nonnegative(self, small_world):
        assert (small_world.sites.backlinks >= 0).all()

    def test_backlinks_weakly_track_popularity(self, small_world):
        # Correlated, but far from perfectly (majestic_link_fidelity).
        sites = small_world.sites
        top = np.log10(sites.backlinks[:200] + 1).mean()
        tail = np.log10(sites.backlinks[-200:] + 1).mean()
        assert top > tail

    def test_china_low_cf_adoption(self, small_world):
        sites = small_world.sites
        cn = sites.home_country == country_index("cn")
        if cn.sum() > 100 and (~cn).sum() > 100:
            assert sites.cf_served[cn].mean() < sites.cf_served[~cn].mean() * 0.6


class TestCategoryMechanisms:
    def test_adult_sites_browsed_privately(self, small_world):
        sites = small_world.sites
        adult = sites.category == category_index("adult")
        rest = ~adult
        if adult.sum() > 10:
            assert sites.private_rate[adult].mean() > sites.private_rate[rest].mean() + 0.3

    def test_news_overrepresented_at_top(self, small_world):
        # popularity_tilt makes news punch above its prevalence.
        sites = small_world.sites
        news = category_index("news")
        top_share = (sites.category[:250] == news).mean()
        prevalence = CATEGORIES[news].prevalence
        assert top_share > prevalence

    def test_parked_underrepresented_at_top(self, small_world):
        sites = small_world.sites
        parked = category_index("parked")
        top_share = (sites.category[:250] == parked).mean()
        assert top_share < CATEGORIES[parked].prevalence

    def test_every_category_present(self, small_world):
        present = set(np.unique(small_world.sites.category).tolist())
        assert present == set(range(len(CATEGORIES)))
