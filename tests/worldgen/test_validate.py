"""Tests for the world self-validation battery."""

import pytest

from repro.cli import main
from repro.worldgen.validate import WORLD_CHECKS, validate_world


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # corruption tests poke NaNs downstream
class TestValidateWorld:
    def test_fixture_worlds_pass(self, small_world, tiny_world):
        for world in (small_world, tiny_world):
            results = validate_world(world)
            assert all(r.passed for r in results), [
                (r.name, r.detail) for r in results if not r.passed
            ]

    def test_all_checks_run(self, tiny_world):
        results = validate_world(tiny_world)
        assert len(results) == len(WORLD_CHECKS)
        assert len({r.name for r in results}) == len(results)

    def test_detects_broken_weights(self, tiny_world):
        # Corrupt a copy of the weight vector and confirm detection.
        original = tiny_world.sites.weight
        tiny_world.sites.weight = original.copy()
        try:
            tiny_world.sites.weight[0] = -1.0
            results = {r.name: r for r in validate_world(tiny_world)}
            assert not results["site weights"].passed
        finally:
            tiny_world.sites.weight = original

    def test_detects_cf_giant(self, tiny_world):
        original = tiny_world.sites.cf_served
        tiny_world.sites.cf_served = original.copy()
        try:
            tiny_world.sites.cf_served[0] = True
            results = {r.name: r for r in validate_world(tiny_world)}
            assert not results["cloudflare giants"].passed
        finally:
            tiny_world.sites.cf_served = original

    def test_detects_share_corruption(self, tiny_world):
        original = tiny_world.sites.country_share
        tiny_world.sites.country_share = original.copy()
        try:
            tiny_world.sites.country_share[5] *= 2.0
            results = {r.name: r for r in validate_world(tiny_world)}
            assert not results["country shares"].passed
        finally:
            tiny_world.sites.country_share = original


class TestValidateCli:
    def test_cli_passes_on_healthy_world(self, capsys):
        code = main(["validate", "--sites", "1200", "--days", "8", "--seed", "77"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "FAIL" not in out
