"""Tests for domain-name generation."""

import numpy as np

from repro.weblib.domains import is_valid_hostname
from repro.weblib.psl import default_psl
from repro.worldgen.countries import country_index
from repro.weblib.categories import category_index
from repro.worldgen.names import generate_site_names


def _generate(rng, n=500, country=None, category=None):
    home = np.full(n, country if country is not None else 0, dtype=np.int64)
    cats = np.full(n, category if category is not None else 5, dtype=np.int64)
    if country is None:
        home = rng.integers(0, 12, size=n)
    if category is None:
        cats = rng.integers(0, 22, size=n)
    return generate_site_names(rng, home, cats)


class TestGeneration:
    def test_unique(self, rng):
        names = _generate(rng, n=2000)
        assert len(set(names)) == 2000

    def test_syntactically_valid(self, rng):
        assert all(is_valid_hostname(n) for n in _generate(rng, n=500))

    def test_registrable(self, rng):
        psl = default_psl()
        names = _generate(rng, n=500)
        assert all(psl.registrable_domain(n) == n for n in names)

    def test_country_tlds(self, rng):
        jp_names = _generate(rng, n=400, country=country_index("jp"),
                             category=category_index("business"))
        jp_ish = [n for n in jp_names if n.endswith(".jp") or ".jp" in n]
        assert len(jp_ish) > 100  # co.jp / ne.jp / jp dominate

    def test_government_tld_override(self, rng):
        gov_names = _generate(rng, n=300, country=country_index("gb"),
                              category=category_index("government"))
        gov_uk = [n for n in gov_names if n.endswith(".gov.uk")]
        assert len(gov_uk) > 150  # 85% override rate

    def test_collision_suffixing(self, rng):
        # With a huge n relative to the word pools, serials must kick in
        # and still produce unique names.
        names = _generate(rng, n=5000, country=0, category=5)
        assert len(set(names)) == 5000
