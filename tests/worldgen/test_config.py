"""Tests for WorldConfig validation and derived quantities."""

import pytest

from repro.worldgen.config import PAPER_MAGNITUDES, WorldConfig


class TestValidation:
    def test_defaults_valid(self):
        config = WorldConfig()
        assert config.n_sites > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sites": 50},
            {"n_days": 0},
            {"start_weekday": 7},
            {"bucket_fractions": (0.5, 0.1)},
            {"bucket_fractions": (0.1, 1.5)},
            {"bucket_fractions": (0.1, 0.5)},  # label count mismatch
            {"zipf_exponent": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            WorldConfig(**kwargs)


class TestDerived:
    def test_bucket_sizes_increasing(self):
        sizes = WorldConfig(n_sites=20000).bucket_sizes
        assert list(sizes) == sorted(sizes)
        assert len(sizes) == len(PAPER_MAGNITUDES)

    def test_bucket_sizes_scale_with_list(self):
        config = WorldConfig(n_sites=20000, list_fraction=0.3)
        assert config.bucket_sizes[-1] == config.list_length

    def test_bucket_ratio_matches_paper(self):
        # Buckets are 10x apart, like 1K/10K/100K (the last is the full list).
        sizes = WorldConfig(n_sites=50000).bucket_sizes
        assert sizes[1] == pytest.approx(10 * sizes[0], rel=0.05)
        assert sizes[2] == pytest.approx(10 * sizes[1], rel=0.05)

    def test_weekday_cycle(self):
        config = WorldConfig(start_weekday=1)  # Tuesday, like Feb 1 2022
        assert config.weekday_of(0) == 1
        assert config.weekday_of(6) == 0
        # Feb 5-6 2022 were Sat-Sun.
        assert config.is_weekend(4)
        assert config.is_weekend(5)
        assert not config.is_weekend(6)

    def test_scaled_override(self):
        config = WorldConfig()
        bigger = config.scaled(n_sites=30000)
        assert bigger.n_sites == 30000
        assert bigger.seed == config.seed
        assert config.n_sites != 30000  # frozen original untouched

    def test_hashable_for_context_cache(self):
        assert hash(WorldConfig()) == hash(WorldConfig())
        assert WorldConfig() == WorldConfig()


class TestJsonRoundTrip:
    def test_round_trip_preserves_every_field(self):
        config = WorldConfig(n_sites=4321, n_days=9, seed=5, zipf_exponent=1.1)
        assert WorldConfig.from_json(config.to_json()) == config

    def test_tuples_survive_round_trip(self):
        config = WorldConfig.from_json(WorldConfig().to_json())
        assert isinstance(config.bucket_fractions, tuple)
        assert isinstance(config.bucket_labels, tuple)
        assert config.bucket_sizes == WorldConfig().bucket_sizes

    def test_canonical_encoding_is_sorted_and_compact(self):
        text = WorldConfig().to_json()
        import json

        keys = list(json.loads(text).keys())
        assert keys == sorted(keys)
        assert ": " not in text and ", " not in text

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            WorldConfig.from_json('{"not_a_field": 1}')

    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError):
            WorldConfig.from_json("[1, 2, 3]")


class TestCacheKeyStability:
    def test_key_stable_across_field_orderings(self):
        from repro.store import config_key

        a = WorldConfig(n_sites=3000, n_days=5, seed=3)
        b = WorldConfig(seed=3, n_days=5, n_sites=3000)
        assert a.to_json() == b.to_json()
        assert config_key(a) == config_key(b)

    def test_key_stable_across_processes(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        from repro.store import config_key

        config = WorldConfig(n_sites=3000, n_days=5, seed=3)
        script = (
            "from repro.worldgen.config import WorldConfig\n"
            "from repro.store import config_key\n"
            # Deliberately different kwarg order than the parent process.
            "print(config_key(WorldConfig(seed=3, n_sites=3000, n_days=5)))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == config_key(config)
