"""Tests for WorldConfig validation and derived quantities."""

import pytest

from repro.worldgen.config import PAPER_MAGNITUDES, WorldConfig


class TestValidation:
    def test_defaults_valid(self):
        config = WorldConfig()
        assert config.n_sites > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sites": 50},
            {"n_days": 0},
            {"start_weekday": 7},
            {"bucket_fractions": (0.5, 0.1)},
            {"bucket_fractions": (0.1, 1.5)},
            {"bucket_fractions": (0.1, 0.5)},  # label count mismatch
            {"zipf_exponent": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            WorldConfig(**kwargs)


class TestDerived:
    def test_bucket_sizes_increasing(self):
        sizes = WorldConfig(n_sites=20000).bucket_sizes
        assert list(sizes) == sorted(sizes)
        assert len(sizes) == len(PAPER_MAGNITUDES)

    def test_bucket_sizes_scale_with_list(self):
        config = WorldConfig(n_sites=20000, list_fraction=0.3)
        assert config.bucket_sizes[-1] == config.list_length

    def test_bucket_ratio_matches_paper(self):
        # Buckets are 10x apart, like 1K/10K/100K (the last is the full list).
        sizes = WorldConfig(n_sites=50000).bucket_sizes
        assert sizes[1] == pytest.approx(10 * sizes[0], rel=0.05)
        assert sizes[2] == pytest.approx(10 * sizes[1], rel=0.05)

    def test_weekday_cycle(self):
        config = WorldConfig(start_weekday=1)  # Tuesday, like Feb 1 2022
        assert config.weekday_of(0) == 1
        assert config.weekday_of(6) == 0
        # Feb 5-6 2022 were Sat-Sun.
        assert config.is_weekend(4)
        assert config.is_weekend(5)
        assert not config.is_weekend(6)

    def test_scaled_override(self):
        config = WorldConfig()
        bigger = config.scaled(n_sites=30000)
        assert bigger.n_sites == 30000
        assert bigger.seed == config.seed
        assert config.n_sites != 30000  # frozen original untouched

    def test_hashable_for_context_cache(self):
        assert hash(WorldConfig()) == hash(WorldConfig())
        assert WorldConfig() == WorldConfig()
