"""Tests for world assembly, RNG streams, and determinism."""

import numpy as np
import pytest

from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(n_sites=400, n_days=2, seed=7)
        a = build_world(config)
        b = build_world(config)
        assert a.sites.names == b.sites.names
        assert np.array_equal(a.sites.weight, b.sites.weight)
        assert np.array_equal(a.sites.cf_served, b.sites.cf_served)
        assert a.names.strings == b.names.strings

    def test_different_seed_different_world(self):
        a = build_world(WorldConfig(n_sites=400, n_days=2, seed=7))
        b = build_world(WorldConfig(n_sites=400, n_days=2, seed=8))
        assert a.sites.names != b.sites.names

    def test_stream_rewinds(self, tiny_world):
        first = tiny_world.rng("cdn").random(5)
        second = tiny_world.rng("cdn").random(5)
        assert np.array_equal(first, second)

    def test_streams_independent(self, tiny_world):
        a = tiny_world.rng("cdn").random(5)
        b = tiny_world.rng("alexa").random(5)
        assert not np.array_equal(a, b)

    def test_day_streams_differ(self, tiny_world):
        day0 = tiny_world.day_rng("traffic", 0).random(5)
        day1 = tiny_world.day_rng("traffic", 1).random(5)
        assert not np.array_equal(day0, day1)

    def test_day_stream_reproducible(self, tiny_world):
        a = tiny_world.day_rng("traffic", 3).random(5)
        b = tiny_world.day_rng("traffic", 3).random(5)
        assert np.array_equal(a, b)

    def test_unknown_stream_raises(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.rng("nonexistent-subsystem")


class TestAccessors:
    def test_site_index_of_domain(self, tiny_world):
        domain = tiny_world.sites.names[10]
        assert tiny_world.site_index_of_domain(domain) == 10

    def test_unknown_domain_raises(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.site_index_of_domain("zzz-not-here.example")

    def test_infra_name_raises(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.site_index_of_domain("com")

    def test_shape_properties(self, tiny_world):
        assert tiny_world.n_sites == tiny_world.sites.n_sites
        assert tiny_world.n_days == tiny_world.config.n_days
