"""Smoke tests: every shipped example must run end to end.

Examples are documentation that executes; letting them rot is worse than
having none.  Each is run in-process (runpy) with a captured stdout and
checked for its key output line.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script,marker",
    [
        ("quickstart.py", "crux"),
        ("evaluate_custom_list.py", "jaccard"),
        ("request_log_anatomy.py", "metrics"),
    ],
)
def test_example_runs(script, marker, capsys):
    out = _run_example(script, capsys)
    assert marker in out.lower()


def test_bias_audit_example(capsys):
    out = _run_example("bias_audit.py", capsys, argv=["umbrella"])
    assert "accuracy by client country" in out
    assert "platform skew" in out


def test_bias_audit_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        _run_example("bias_audit.py", capsys, argv=["nosuchlist"])


def test_attack_and_defend_example(capsys):
    out = _run_example("attack_and_defend.py", capsys)
    assert "best attacked rank" in out
    assert "tranco" in out


def test_choose_a_list_example(capsys):
    out = _run_example("choose_a_list.py", capsys, argv=["--magnitude", "1M"])
    assert "recommendation:" in out
