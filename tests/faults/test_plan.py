"""FaultPlan/FaultRule tests: matching, budgets, determinism, JSON."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    DATA_SITES,
    SITES,
    FaultPlan,
    FaultRule,
    day_key,
    default_chaos_plan,
    default_data_plan,
    default_net_plan,
    default_serve_plan,
)


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("store.read.on_fire")

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultRule("worker.crash", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("worker.crash", probability=-0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("worker.crash", max_fires=-1)

    def test_round_trip(self):
        rule = FaultRule(
            "worker.hang", match="fig*", probability=0.5, max_fires=3,
            delay_seconds=12.0, exit_code=7,
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_defaults_omitted_from_dict(self):
        payload = FaultRule("store.read.corrupt").to_dict()
        assert "delay_seconds" not in payload
        assert "exit_code" not in payload
        assert "min_occurrence" not in payload

    def test_negative_min_occurrence_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("store.read.corrupt", min_occurrence=-1)

    def test_min_occurrence_round_trips(self):
        rule = FaultRule("store.read.corrupt", min_occurrence=2, max_fires=1)
        payload = rule.to_dict()
        assert payload["min_occurrence"] == 2
        assert FaultRule.from_dict(payload) == rule


class TestFire:
    def test_site_and_glob_must_match(self):
        plan = FaultPlan([FaultRule("store.read.corrupt", match="traffic/*")])
        assert plan.fire("store.write.enospc", "traffic/day-000") is None
        assert plan.fire("store.read.corrupt", "world/arrays") is None
        assert plan.fire("store.read.corrupt", "traffic/day-000") is not None

    def test_max_fires_budget_is_per_key(self):
        plan = FaultPlan([FaultRule("store.read.corrupt", max_fires=1)])
        assert plan.fire("store.read.corrupt", "traffic/day-000") is not None
        assert plan.fire("store.read.corrupt", "traffic/day-000") is None
        # A different key has its own occurrence counter.
        assert plan.fire("store.read.corrupt", "traffic/day-001") is not None

    def test_min_occurrence_opens_a_firing_window(self):
        plan = FaultPlan(
            [FaultRule("store.read.corrupt", min_occurrence=1, max_fires=1)]
        )
        # Occurrence 0 is the warmup read: spared.  Occurrence 1 fires,
        # occurrence 2 is past the (min_occurrence + max_fires) window.
        assert plan.fire("store.read.corrupt", "results/fig1") is None
        assert plan.fire("store.read.corrupt", "results/fig1") is not None
        assert plan.fire("store.read.corrupt", "results/fig1") is None
        # The window is per key: a fresh key gets its own warmup pass.
        assert plan.fire("store.read.corrupt", "results/fig2") is None
        assert plan.fire("store.read.corrupt", "results/fig2") is not None

    def test_min_occurrence_respects_explicit_occurrence(self):
        plan = FaultPlan(
            [FaultRule("worker.crash", min_occurrence=2, max_fires=1)]
        )
        assert plan.fire("worker.crash", "fig1", occurrence=1) is None
        assert plan.fire("worker.crash", "fig1", occurrence=2) is not None
        assert plan.fire("worker.crash", "fig1", occurrence=3) is None

    def test_explicit_occurrence_does_not_advance_counter(self):
        plan = FaultPlan([FaultRule("worker.crash", max_fires=1)])
        # Submission 1 (occurrence 0) fires; submission 2 (occurrence 1)
        # is over budget — the recovery run is guaranteed clean.
        assert plan.fire("worker.crash", "fig1", occurrence=0) is not None
        assert plan.fire("worker.crash", "fig1", occurrence=1) is None
        # Replaying occurrence 0 still fires: the decision is a pure
        # function, not a consumable.
        assert plan.fire("worker.crash", "fig1", occurrence=0) is not None

    def test_first_matching_rule_wins(self):
        specific = FaultRule("store.read.corrupt", match="traffic/*", exit_code=9)
        blanket = FaultRule("store.read.corrupt", match="*")
        plan = FaultPlan([specific, blanket])
        assert plan.fire("store.read.corrupt", "traffic/day-000") is specific
        assert plan.fire("store.read.corrupt", "world/arrays") is blanket

    def test_fired_tally_by_site(self):
        plan = FaultPlan([
            FaultRule("store.read.corrupt", max_fires=2),
            FaultRule("store.write.enospc"),
        ])
        plan.fire("store.read.corrupt", "traffic/day-000")
        plan.fire("store.read.corrupt", "traffic/day-001")
        plan.fire("store.write.enospc", "metrics/day-000")
        assert plan.fired == {"store.read.corrupt": 2, "store.write.enospc": 1}
        snapshot = plan.fired_snapshot()
        snapshot["store.read.corrupt"] = 99
        assert plan.fired["store.read.corrupt"] == 2, "snapshot is a copy"


class TestDeterminism:
    def test_probability_zero_never_fires(self):
        plan = FaultPlan([FaultRule("store.read.corrupt", probability=0.0,
                                    max_fires=100)])
        assert all(
            plan.fire("store.read.corrupt", f"traffic/day-{i:03d}") is None
            for i in range(50)
        )

    def test_probability_one_always_fires(self):
        plan = FaultPlan([FaultRule("store.read.corrupt", probability=1.0,
                                    max_fires=100)])
        assert all(
            plan.fire("store.read.corrupt", f"traffic/day-{i:03d}") is not None
            for i in range(50)
        )

    def test_fractional_probability_is_seed_stable(self):
        def decisions(seed):
            plan = FaultPlan(
                [FaultRule("store.read.corrupt", probability=0.5, max_fires=10**6)],
                seed=seed,
            )
            return [
                plan.fire("store.read.corrupt", f"traffic/day-{i:03d}") is not None
                for i in range(200)
            ]

        first, second = decisions(7), decisions(7)
        assert first == second, "same seed must replay bit-for-bit"
        assert decisions(8) != first, "different seeds must diverge"
        assert 40 < sum(first) < 160, "p=0.5 should fire roughly half the time"

    def test_decision_independent_of_other_sites(self):
        # Interleaving fires at another site must not perturb decisions:
        # they hash (seed, rule, site, key, occurrence), not call order.
        rules = [
            FaultRule("store.read.corrupt", probability=0.5, max_fires=10**6),
            FaultRule("store.write.enospc", probability=0.5, max_fires=10**6),
        ]
        quiet, noisy = FaultPlan(rules, seed=3), FaultPlan(rules, seed=3)
        outcomes_quiet = []
        outcomes_noisy = []
        for i in range(100):
            key = f"traffic/day-{i:03d}"
            outcomes_quiet.append(quiet.fire("store.read.corrupt", key) is not None)
            noisy.fire("store.write.enospc", f"metrics/day-{i:03d}")
            outcomes_noisy.append(noisy.fire("store.read.corrupt", key) is not None)
        assert outcomes_quiet == outcomes_noisy


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule("store.read.corrupt", match="traffic/*", probability=0.25),
                FaultRule("worker.hang", match="fig3", delay_seconds=60.0),
            ],
            seed=42,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 42
        assert clone.rules == plan.rules
        assert clone.fired == {}, "fire accounting never serializes"

    def test_from_json_rejects_unknown_site(self):
        text = json.dumps({"seed": 0, "rules": [{"site": "nope"}]})
        with pytest.raises(ValueError):
            FaultPlan.from_json(text)


class TestDefaultChaosPlan:
    NAMES = ["fig1", "fig2", "table1", "survey"]

    def test_covers_every_runner_site(self):
        plan = default_chaos_plan(1337, self.NAMES)
        runner_sites = [s for s in SITES
                        if not s.startswith(("store.read.slow", "serve.",
                                             "net.", "data."))]
        assert sorted(rule.site for rule in plan.rules) == sorted(runner_sites)
        assert plan.seed == 1337

    def test_default_plans_jointly_cover_every_site(self):
        chaos = default_chaos_plan(1337, self.NAMES)
        serve = default_serve_plan(1337)
        net = default_net_plan(1337)
        data = default_data_plan(1337, 8)
        covered = (
            {r.site for r in chaos.rules}
            | {r.site for r in serve.rules}
            | {r.site for r in net.rules}
            | {r.site for r in data.rules}
        )
        assert covered == set(SITES)

    def test_worker_victims_drawn_from_names(self):
        plan = default_chaos_plan(1337, self.NAMES)
        victims = {
            rule.site: rule.match
            for rule in plan.rules
            if rule.site.startswith(("worker.", "experiment."))
        }
        assert set(victims.values()) <= set(self.NAMES)

    def test_victims_rotate_with_seed(self):
        def victims(seed):
            return tuple(
                rule.match
                for rule in default_chaos_plan(seed, list(range(20)) and
                                               [f"e{i}" for i in range(20)]).rules
                if rule.site.startswith(("worker.", "experiment."))
            )

        assert victims(1) == victims(1)
        assert any(victims(s) != victims(1) for s in (2, 3, 4, 5))

    def test_hang_outlasts_requested_deadline(self):
        plan = default_chaos_plan(0, self.NAMES, hang_seconds=480.0)
        hang = next(r for r in plan.rules if r.site == "worker.hang")
        assert hang.delay_seconds == 480.0

    def test_empty_names_fall_back_to_wildcard(self):
        plan = default_chaos_plan(0, [])
        crash = next(r for r in plan.rules if r.site == "worker.crash")
        assert crash.match == "*"


class TestServeSites:
    def test_serve_sites_registered(self):
        assert "store.read.slow" in SITES
        assert "serve.request.error" in SITES

    def test_rules_accept_serve_sites(self):
        slow = FaultRule("store.read.slow", match="results/*", delay_seconds=0.1)
        error = FaultRule("serve.request.error", match="/v1/lists/*")
        assert slow.delay_seconds == 0.1
        assert error.probability == 1.0


class TestDefaultServePlan:
    def test_shape(self):
        plan = default_serve_plan(1337)
        assert [rule.site for rule in plan.rules] == [
            "store.read.slow",
            "store.read.corrupt",
            "serve.request.error",
        ]
        slow, corrupt, error = plan.rules
        assert slow.match == "results/*"
        assert corrupt.match == "results/*"
        assert error.match == "/v1/lists/*"
        assert slow.delay_seconds == 0.15

    def test_deterministic_for_a_seed(self):
        assert default_serve_plan(7).to_dict() == default_serve_plan(7).to_dict()

    def test_round_trips_through_json(self):
        plan = default_serve_plan(42, slow_seconds=0.2)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 42

    def test_slow_seconds_is_tunable(self):
        plan = default_serve_plan(1, slow_seconds=0.5)
        assert plan.rules[0].delay_seconds == 0.5

    def test_warmup_reads_spare_the_first_read_per_key(self):
        plan = default_serve_plan(7, warmup_reads=1)
        store_rules = [r for r in plan.rules if r.site.startswith("store.")]
        assert all(rule.min_occurrence == 1 for rule in store_rules)
        # Armed before warmup (the loadgen --spawn sequencing): the single
        # warmup read per key passes clean, the first live read fires.
        assert plan.fire("store.read.slow", "results/fig1") is None
        assert plan.fire("store.read.slow", "results/fig1") is not None

    def test_error_probability_is_tunable(self):
        plan = default_serve_plan(7, error_probability=0.25)
        (error_rule,) = [
            r for r in plan.rules if r.site == "serve.request.error"
        ]
        assert error_rule.probability == 0.25
        # The default remains a certain fire, as the selftest expects.
        (default_rule,) = [
            r for r in default_serve_plan(7).rules
            if r.site == "serve.request.error"
        ]
        assert default_rule.probability == 1.0


class TestDataPlan:
    def test_unknown_consult_site_names_the_valid_set(self):
        plan = default_data_plan(7, 8)
        with pytest.raises(ValueError, match="choose from"):
            plan.fire("data.day.on_fire", day_key("alexa", 3))

    def test_rule_errors_carry_the_rule_index(self):
        doc = default_data_plan(7, 8).to_dict()
        doc["rules"][2]["site"] = "nope"
        with pytest.raises(ValueError, match=r"rule #2.*unknown fault site"):
            FaultPlan.from_dict(doc)

    def test_covers_every_data_site_and_only_data_sites(self):
        plan = default_data_plan(7, 8)
        armed = {rule.site for rule in plan.rules}
        assert armed == set(DATA_SITES)

    def test_pinned_fires_are_deterministic_per_seed(self):
        a = default_data_plan(11, 12).to_dict()
        b = default_data_plan(11, 12).to_dict()
        assert a == b
        assert a != default_data_plan(12, 12).to_dict()

    def test_round_trips_through_json(self):
        plan = default_data_plan(11, 12, truncate_fraction=0.3)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        truncate = [r for r in clone.rules
                    if r.site == "data.day.truncated" and r.fraction]
        assert truncate and truncate[0].fraction == 0.3

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultRule("data.day.truncated", fraction=0.0)
        with pytest.raises(ValueError):
            FaultRule("data.day.truncated", fraction=1.5)

    def test_needs_enough_days_to_spread_the_pins(self):
        with pytest.raises(ValueError):
            default_data_plan(7, 5)

    def test_day_zero_is_never_faulted(self):
        # Day 0 bootstraps every provider contract (reference length,
        # previous rows); the plan must leave it clean for all seeds.
        from repro.ranking.ingest import decide_day

        for seed in range(20):
            plan = default_data_plan(seed, 12)
            for provider in ("alexa", "umbrella", "majestic"):
                assert decide_day(plan, provider, 0) == (None, None)
