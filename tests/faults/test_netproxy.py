"""The deterministic network-fault proxy.

Determinism first: connection-level fault decisions are a pure
function of (plan seed, serial), the observed fire log digests to the
same value as a fresh replay, and two proxies with the same plan fire
identically.  Then the data path: clean passthrough is byte-exact, and
each fault site produces its advertised client-visible breakage.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.faults.netproxy import (
    NET_SITES,
    NetProxy,
    decide_connection,
    digest_of_log,
)
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    connection_key,
    default_net_plan,
)

_BODY = json.dumps({"status": "alive", "pad": "y" * 150}).encode()
_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_BODY)).encode() + b"\r\n\r\n" + _BODY
)


class _Upstream(threading.Thread):
    """Minimal HTTP/1.0-style upstream: one response per connection."""

    def __init__(self):
        super().__init__(daemon=True)
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.sock.settimeout(0.1)
        self.port = self.sock.getsockname()[1]
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            with conn:
                try:
                    data = b""
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                    else:
                        conn.sendall(_RESPONSE)
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.join(timeout=2.0)
        self.sock.close()


@pytest.fixture()
def upstream():
    server = _Upstream()
    server.start()
    yield server
    server.stop()


def _fetch_raw(port: int, timeout: float = 2.0) -> bytes:
    """One GET through the proxy, returning the raw response bytes."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.settimeout(timeout)
        conn.sendall(b"GET /x HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        data = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return data
            data += chunk


def _pinned(site: str, serial: int = 0) -> FaultPlan:
    return FaultPlan(
        rules=[FaultRule(site, match=connection_key(serial))], seed=1
    )


class TestDefaultNetPlan:
    def test_every_net_site_has_a_pinned_and_background_rule(self):
        plan = default_net_plan(7)
        by_site = {}
        for rule in plan.rules:
            by_site.setdefault(rule.site, []).append(rule)
        assert sorted(by_site) == sorted(NET_SITES)
        for site, rules in by_site.items():
            pinned = [r for r in rules if r.match != "*"]
            background = [r for r in rules if r.match == "*"]
            assert len(pinned) == 1, site
            assert len(background) == 1, site
            assert pinned[0].probability == 1.0

    def test_pinned_serials_are_distinct(self):
        plan = default_net_plan(7)
        matches = [rule.match for rule in plan.rules if rule.match != "*"]
        assert len(matches) == len(set(matches))

    def test_round_trips_through_json(self):
        plan = default_net_plan(7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()


class TestDecisionDeterminism:
    def _decisions(self, seed, serials=200):
        plan = default_net_plan(seed)
        return [
            (serial, decision[0] if decision else None)
            for serial in range(serials)
            for decision in [decide_connection(plan, serial)]
        ]

    def test_same_seed_same_decisions(self):
        assert self._decisions(7) == self._decisions(7)

    def test_different_seed_differs(self):
        assert self._decisions(7) != self._decisions(8)

    def test_pinned_serials_fire_their_site(self):
        fired = dict(self._decisions(7))
        from repro.faults.plan import _NET_PLAN_SHAPE

        for site, serial, _probability in _NET_PLAN_SHAPE:
            assert fired[serial] == site

    def test_at_most_one_fault_per_connection(self):
        # decide_connection returns the first firing site only; the
        # plan's tally across all serials must equal the number of
        # decisions, not exceed it.
        plan = default_net_plan(7)
        decisions = [
            decide_connection(plan, serial) for serial in range(200)
        ]
        fired = sum(1 for d in decisions if d is not None)
        tally = sum(plan.fired_snapshot().values())
        assert tally == fired


class TestDigest:
    def test_digest_is_order_insensitive(self):
        entries = [
            {"serial": 3, "site": "net.read.stall"},
            {"serial": 1, "site": "net.accept.reset"},
        ]
        assert digest_of_log(entries) == digest_of_log(entries[::-1])

    def test_digest_distinguishes_sequences(self):
        a = [{"serial": 1, "site": "net.accept.reset"}]
        b = [{"serial": 2, "site": "net.accept.reset"}]
        assert digest_of_log(a) != digest_of_log(b)


class TestProxyDataPath:
    def _run(self, upstream, plan, requests=1):
        proxy = NetProxy("127.0.0.1", upstream.port, plan=plan)
        proxy.start()
        try:
            results = []
            for _ in range(requests):
                try:
                    results.append(_fetch_raw(proxy.port))
                except OSError as exc:
                    results.append(exc)
            return proxy, results
        finally:
            proxy.stop()

    def test_clean_passthrough_is_byte_exact(self, upstream):
        proxy, results = self._run(upstream, plan=None, requests=3)
        assert results == [_RESPONSE] * 3
        assert proxy.connections == 3
        assert proxy.fault_log == []

    def test_accept_reset_is_a_hard_error(self, upstream):
        proxy, (result,) = self._run(
            upstream, _pinned("net.accept.reset")
        )
        assert isinstance(result, OSError) or result == b""
        assert proxy.fired_snapshot() == {"net.accept.reset": 1}

    def test_truncate_forwards_headers_and_half_the_body(self, upstream):
        proxy, (result,) = self._run(
            upstream, _pinned("net.write.truncate")
        )
        assert isinstance(result, bytes)
        head, _, body = result.partition(b"\r\n\r\n")
        assert b"Content-Length: " + str(len(_BODY)).encode() in head
        assert body == _BODY[: len(_BODY) // 2]

    def test_garble_flips_the_status_line_only(self, upstream):
        proxy, (result,) = self._run(
            upstream, _pinned("net.write.garble")
        )
        assert isinstance(result, bytes)
        assert not result.startswith(b"HTTP")
        assert result[4:] == _RESPONSE[4:]

    def test_mid_response_close_cuts_the_headers(self, upstream):
        proxy, (result,) = self._run(
            upstream, _pinned("net.close.mid_response")
        )
        assert isinstance(result, bytes)
        assert 0 < len(result) <= 48
        assert b"\r\n\r\n" not in result

    def test_split_delivers_the_exact_bytes(self, upstream):
        proxy, (result,) = self._run(
            upstream, _pinned("net.write.split")
        )
        assert result == _RESPONSE
        assert proxy.fired_snapshot() == {"net.write.split": 1}

    def test_fault_log_and_replay_digest_agree(self, upstream):
        plan = default_net_plan(7)
        proxy, _results = self._run(upstream, plan, requests=40)
        assert proxy.connections == 40
        assert {e["site"] for e in proxy.fault_log} <= set(NET_SITES)
        assert proxy.fault_digest() == proxy.replay_digest()

    def test_two_proxies_same_plan_fire_identically(self, upstream):
        first, _ = self._run(upstream, default_net_plan(7), requests=40)
        second, _ = self._run(upstream, default_net_plan(7), requests=40)
        assert first.fault_log == second.fault_log
        assert first.fault_digest() == second.fault_digest()
