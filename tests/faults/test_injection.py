"""Injection choke-point tests: store sites, ambient plan, obs counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultPlan, FaultRule, InjectedFault, inject
from repro.store import ArtifactStore

KEY = "0" * 24


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no ambient plan."""
    inject.activate(None)
    yield
    inject.activate(None)


class TestAmbientPlan:
    def test_disarmed_fire_is_none(self):
        assert inject.active_plan() is None
        assert inject.fire("store.read.corrupt", "traffic/day-000") is None

    def test_activate_returns_previous(self):
        first, second = FaultPlan(), FaultPlan()
        assert inject.activate(first) is None
        assert inject.activate(second) is first
        assert inject.active_plan() is second

    def test_injecting_scopes_and_restores(self):
        outer = FaultPlan()
        inject.activate(outer)
        with inject.injecting(FaultPlan()) as plan:
            assert inject.active_plan() is plan
        assert inject.active_plan() is outer

    def test_injecting_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inject.injecting(FaultPlan()):
                raise RuntimeError("boom")
        assert inject.active_plan() is None


class TestCorruptHelper:
    def test_corrupt_changes_bytes_not_length(self):
        blob = b"repro-artifact/1 sha256=abc\npayload"
        damaged = inject.corrupt(blob)
        assert damaged != blob and len(damaged) == len(blob)

    def test_corrupt_empty_blob(self):
        assert inject.corrupt(b"") == b"\xff"


class TestStoreReadCorrupt:
    def test_injected_corruption_quarantines_and_heals(self, store):
        arrays = {"x": np.arange(32)}
        store.put_arrays(KEY, "traffic/day-000", arrays)
        plan = FaultPlan([FaultRule("store.read.corrupt", match="traffic/*")])
        with inject.injecting(plan):
            assert store.get_arrays(KEY, "traffic/day-000") is None
        assert plan.fired == {"store.read.corrupt": 1}
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1
        assert len(store.quarantined()) == 1
        # The budget is spent and the entry gone; a re-put heals the key.
        store.put_arrays(KEY, "traffic/day-000", arrays)
        with inject.injecting(plan):
            loaded = store.get_arrays(KEY, "traffic/day-000")
        np.testing.assert_array_equal(loaded["x"], arrays["x"])

    def test_unmatched_names_read_clean(self, store):
        store.put_arrays(KEY, "world/arrays", {"x": np.arange(4)})
        plan = FaultPlan([FaultRule("store.read.corrupt", match="traffic/*")])
        with inject.injecting(plan):
            assert store.get_arrays(KEY, "world/arrays") is not None
        assert plan.fired == {}


class TestStoreWriteFaults:
    def test_enospc_degrades_to_read_only(self, store):
        store.put_json(KEY, "results/before", {"v": 1})
        plan = FaultPlan([FaultRule("store.write.enospc", match="metrics/*")])
        with inject.injecting(plan):
            store.put_arrays(KEY, "metrics/day-000", {"x": np.arange(4)})
        assert store.read_only, "ENOSPC must demote the store to read-only"
        assert store.stats.write_errors == 1
        assert store.get_arrays(KEY, "metrics/day-000") is None
        # Later writes are skipped (counted), reads keep serving.
        store.put_json(KEY, "results/after", {"v": 2})
        assert store.stats.writes_skipped == 1
        assert store.get_json(KEY, "results/after") is None
        assert store.get_json(KEY, "results/before") == {"v": 1}

    def test_partial_write_caught_by_next_read(self, store):
        plan = FaultPlan([FaultRule("store.write.partial", match="providers/*")])
        with inject.injecting(plan):
            store.put_arrays(KEY, "providers/alexa/day-000", {"x": np.arange(64)})
        assert not store.read_only, "a torn write is not a fatal write error"
        # The checksummed read detects the truncation and quarantines it.
        assert store.get_arrays(KEY, "providers/alexa/day-000") is None
        assert store.stats.corrupt == 1
        assert len(store.quarantined()) == 1


class TestFlaky:
    def test_fires_only_on_first_attempt(self):
        plan = FaultPlan([FaultRule("experiment.flaky_first_attempt", match="fig1")])
        with inject.injecting(plan):
            with pytest.raises(InjectedFault):
                inject.check_flaky("fig1", attempt=1)
            inject.check_flaky("fig1", attempt=2)  # retries run clean

    def test_other_experiments_unaffected(self):
        plan = FaultPlan([FaultRule("experiment.flaky_first_attempt", match="fig1")])
        with inject.injecting(plan):
            inject.check_flaky("fig2", attempt=1)


class TestObsIntegration:
    def test_fires_count_into_the_ambient_tracer(self, store):
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(8)})
        plan = FaultPlan([FaultRule("store.read.corrupt", match="traffic/*")])
        tracer = obs.Tracer("chaos")
        with obs.tracing(tracer), inject.injecting(plan):
            store.get_arrays(KEY, "traffic/day-000")
        root = tracer.finish()
        counters = root.total_counters()
        assert counters.get("faults.store.read.corrupt") == 1.0
        assert counters.get("store.quarantined") == 1.0
