"""Fault-injection subsystem tests."""
