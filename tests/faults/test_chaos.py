"""Supervised-execution and chaos-gate tests.

``survey`` is the victim throughout: it is the cheapest registry
experiment (no world build), so deadline-driven tests stay fast.  The
supervisor forks, so these tests exercise the real kill/resubmit path
with real processes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_FAILURE, EXIT_OK, main
from repro.faults import FaultPlan, FaultRule
from repro.qa.goldens import verify_goldens
from repro.runner import run_experiments
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)


class TestSupervisedFaults:
    def test_hang_is_killed_and_resubmission_recovers(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("worker.hang", match="survey", delay_seconds=60.0)]
        )
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, cache_dir=tmp_path / "store",
            timeout=3.0, fault_plan=plan,
        )
        outcome = manifest.outcomes[0]
        assert outcome.ok, "the resubmission must run clean"
        assert outcome.submissions == 2
        assert manifest.faults["timeouts"] == 1
        assert manifest.faults["resubmissions"] == 1
        assert manifest.faults["worker_deaths"] == 0
        assert "survey" in manifest.faults["recovered"]

    def test_crash_is_detected_and_resubmission_recovers(self, tmp_path):
        plan = FaultPlan([FaultRule("worker.crash", match="survey", exit_code=7)])
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, cache_dir=tmp_path / "store",
            timeout=30.0, fault_plan=plan,
        )
        outcome = manifest.outcomes[0]
        assert outcome.ok
        assert outcome.submissions == 2
        assert manifest.faults["worker_deaths"] == 1
        assert manifest.faults["resubmissions"] == 1

    def test_persistent_crash_exhausts_resubmissions(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("worker.crash", match="survey", max_fires=99, exit_code=7)]
        )
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, cache_dir=tmp_path / "store",
            timeout=30.0, fault_plan=plan,
        )
        outcome = manifest.outcomes[0]
        assert not outcome.ok
        assert outcome.worker_died and not outcome.timed_out
        assert outcome.attempts == 0, "the true attempt count is unknown"
        assert outcome.submissions == 2
        assert "exit code 7" in outcome.error
        assert manifest.faults["worker_deaths"] == 2

    def test_persistent_hang_exhausts_resubmissions(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("worker.hang", match="survey", max_fires=99,
                       delay_seconds=60.0)]
        )
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, cache_dir=tmp_path / "store",
            timeout=1.5, fault_plan=plan,
        )
        outcome = manifest.outcomes[0]
        assert not outcome.ok
        assert outcome.timed_out and not outcome.worker_died
        assert "timeout after 1.5s" in outcome.error
        assert manifest.faults["timeouts"] == 2

    def test_worker_faults_never_fire_inline(self, tmp_path):
        # Inline execution (jobs=1, no timeout) must ignore worker.crash:
        # honoring it would kill the calling process.
        plan = FaultPlan([FaultRule("worker.crash", match="survey")])
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, fault_plan=plan
        )
        assert manifest.outcomes[0].ok
        assert plan.fired == {}

    def test_timeout_rejects_keep_results(self):
        with pytest.raises(ValueError, match="live results"):
            run_experiments(["survey"], _CONFIG, timeout=5.0, keep_results=True)

    def test_store_faults_inside_supervised_workers(self, tmp_path):
        # Store-level injections ride along into the forked worker and
        # are still recovered (recompute) and accounted in the manifest.
        plan = FaultPlan(
            [FaultRule("store.write.enospc", match="results/*")]
        )
        payloads, manifest, _ = run_experiments(
            ["survey"], _CONFIG, cache_dir=tmp_path / "store",
            timeout=30.0, fault_plan=plan,
        )
        assert manifest.outcomes[0].ok
        assert manifest.faults["injected"] == {"store.write.enospc": 1}


class TestChaosCommand:
    @pytest.fixture(scope="class")
    def goldens(self, tmp_path_factory):
        """Small-scale goldens for the chaos gate to verify against."""
        golden_dir = tmp_path_factory.mktemp("chaos-goldens")
        report = verify_goldens(
            golden_dir, names=["survey", "table1", "fig6"], config=_CONFIG,
            update=True, cache_dir=None,
        )
        assert report.ok
        return golden_dir

    def _plan_file(self, tmp_path) -> str:
        # Crash + flaky + store faults, no hang: keeps the test off the
        # deadline path so it never waits out a timeout.
        plan = FaultPlan(
            [
                FaultRule("store.read.corrupt", match="world/*"),
                FaultRule("store.write.enospc", match="metrics/*"),
                FaultRule("store.write.partial", match="providers/*"),
                FaultRule("worker.crash", match="survey"),
                FaultRule("experiment.flaky_first_attempt", match="table1"),
            ],
            seed=1337,
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        return str(path)

    def test_chaos_gate_passes_and_records_faults(self, goldens, tmp_path):
        manifest_path = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--sites", "400", "--days", "4",
            "--world-seed", "11",
            "--golden-dir", str(goldens),
            "--plan", self._plan_file(tmp_path),
            "--experiment", "survey", "--experiment", "table1",
            "--experiment", "fig6",
            "--jobs", "2", "--timeout", "60",
            "--manifest", str(manifest_path),
        ])
        assert rc == EXIT_OK
        manifest = json.loads(manifest_path.read_text())
        assert manifest["faults"]["worker_deaths"] == 1
        assert manifest["faults"]["resubmissions"] == 1
        assert sum(manifest["faults"]["injected"].values()) >= 1
        statuses = {
            o["name"]: o["golden_status"] for o in manifest["outcomes"]
        }
        assert statuses == {"survey": "pass", "table1": "pass", "fig6": "pass"}

    def test_chaos_gate_fails_on_golden_drift(self, goldens, tmp_path):
        # Drifted goldens (a tampered cell) must fail the gate even though
        # every experiment completes.
        drifted = tmp_path / "drifted"
        drifted.mkdir()
        for source in goldens.iterdir():
            payload = json.loads(source.read_text())
            (drifted / source.name).write_text(json.dumps(payload))
        target = drifted / "survey.json"
        payload = json.loads(target.read_text())
        payload["text_sha256"] = "0" * 64
        target.write_text(json.dumps(payload))
        rc = main([
            "chaos", "--sites", "400", "--days", "4",
            "--world-seed", "11",
            "--golden-dir", str(drifted),
            "--plan", self._plan_file(tmp_path),
            "--experiment", "survey",
            "--jobs", "1", "--timeout", "60",
            "--manifest", str(tmp_path / "drift.json"),
        ])
        assert rc == EXIT_FAILURE

    def test_chaos_gate_fails_when_nothing_fires(self, goldens, tmp_path):
        # An empty plan proves nothing; the gate must refuse to go green.
        empty = tmp_path / "empty-plan.json"
        empty.write_text(FaultPlan(seed=1).to_json())
        rc = main([
            "chaos", "--sites", "400", "--days", "4",
            "--world-seed", "11",
            "--golden-dir", str(goldens),
            "--plan", str(empty),
            "--experiment", "survey",
            "--jobs", "1", "--timeout", "60",
            "--manifest", str(tmp_path / "quiet.json"),
        ])
        assert rc == EXIT_FAILURE

    def test_unreadable_plan_is_usage_error(self, tmp_path):
        rc = main([
            "chaos", "--plan", str(tmp_path / "missing.json"),
            "--experiment", "survey",
        ])
        assert rc == 2
