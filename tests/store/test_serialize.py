"""Hydration round-trips: world, traffic, metrics, and provider artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdn.filters import ALL_COMBINATIONS
from repro.cdn.metrics import CdnMetricEngine
from repro.providers.registry import build_providers
from repro.store import (
    ArtifactStore,
    StoredProvider,
    attach_engine_store,
    attach_traffic_store,
    config_key,
    load_or_build_world,
    wrap_providers,
)
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import build_world
from tests.conftest import TINY_CONFIG

CFG_KEY = config_key(TINY_CONFIG)


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestWorldArrays:
    def test_round_trip_reproduces_universe(self, tiny_world):
        from repro.worldgen.world import World

        clone = World.from_arrays(TINY_CONFIG, tiny_world.to_arrays())
        np.testing.assert_array_equal(clone.sites.weight, tiny_world.sites.weight)
        np.testing.assert_array_equal(clone.names.site, tiny_world.names.site)
        assert clone.names.strings == tiny_world.names.strings

    def test_round_trip_reproduces_rng_streams(self, tiny_world):
        from repro.worldgen.world import World

        clone = World.from_arrays(TINY_CONFIG, tiny_world.to_arrays())
        np.testing.assert_array_equal(
            clone.rng("cdn").random(16), tiny_world.rng("cdn").random(16)
        )
        np.testing.assert_array_equal(
            clone.day_rng("alexa", 3).random(16), tiny_world.day_rng("alexa", 3).random(16)
        )

    def test_load_or_build_persists_then_hydrates(self, store):
        built = load_or_build_world(store, CFG_KEY, TINY_CONFIG)
        assert store.stats.puts == {"world": 1}
        hydrated = load_or_build_world(store, CFG_KEY, TINY_CONFIG)
        assert store.stats.hits == {"world": 1}
        np.testing.assert_array_equal(hydrated.sites.weight, built.sites.weight)

    def test_incompatible_stored_world_rebuilt(self, store):
        store.put_arrays(CFG_KEY, "world/arrays", {"sites__bogus": np.zeros(3)})
        world = load_or_build_world(store, CFG_KEY, TINY_CONFIG)
        assert world.n_sites == TINY_CONFIG.n_sites
        # The rebuild overwrote the unusable entry.
        assert store.stats.puts == {"world": 2}


class TestTrafficHooks:
    def test_day_round_trips_through_store(self, tiny_world, store):
        cold = TrafficModel(tiny_world)
        attach_traffic_store(cold, store, CFG_KEY)
        original = cold.day(2)
        assert store.stats.puts == {"traffic": 1}

        warm = TrafficModel(tiny_world)
        attach_traffic_store(warm, store, CFG_KEY)
        loaded = warm.day(2)
        assert store.stats.hits == {"traffic": 1}
        for slot in original.__slots__:
            np.testing.assert_array_equal(getattr(loaded, slot), getattr(original, slot))

    def test_in_memory_cache_skips_store(self, tiny_world, store):
        traffic = TrafficModel(tiny_world)
        attach_traffic_store(traffic, store, CFG_KEY)
        traffic.day(1)
        traffic.day(1)
        assert store.stats.misses.get("traffic", 0) == 1  # only the cold call


class TestEngineHooks:
    def test_day_counts_round_trip(self, tiny_world, store):
        traffic = TrafficModel(tiny_world)
        cold = CdnMetricEngine(tiny_world, traffic)
        attach_engine_store(cold, store, CFG_KEY)
        original = cold.day_counts(1, combos=ALL_COMBINATIONS)
        assert store.stats.puts == {"metrics": 1}

        warm = CdnMetricEngine(tiny_world, traffic)
        attach_engine_store(warm, store, CFG_KEY)
        loaded = warm.day_counts(1, combos=ALL_COMBINATIONS)
        assert store.stats.hits == {"metrics": 1}
        for key in ALL_COMBINATIONS:
            np.testing.assert_array_equal(loaded[key], original[key])

    def test_partial_entry_treated_as_miss(self, tiny_world, store):
        some_combo = ALL_COMBINATIONS[0]
        store.put_arrays(CFG_KEY, "metrics/day-001", {some_combo: np.zeros(5)})
        traffic = TrafficModel(tiny_world)
        engine = CdnMetricEngine(tiny_world, traffic)
        attach_engine_store(engine, store, CFG_KEY)
        counts = engine.day_counts(1)
        assert all(len(array) == tiny_world.n_sites for array in counts.values())


class TestStoredProviders:
    def _fresh_providers(self, store):
        world = build_world(TINY_CONFIG)
        traffic = TrafficModel(world)
        telemetry = ChromeTelemetry(world, traffic)
        return wrap_providers(build_providers(world, traffic, telemetry), store, CFG_KEY)

    def test_wrapping_preserves_order_and_metadata(self, store):
        providers = self._fresh_providers(store)
        world = build_world(TINY_CONFIG)
        traffic = TrafficModel(world)
        bare = build_providers(world, traffic, ChromeTelemetry(world, traffic))
        assert list(providers) == list(bare)
        for name, provider in providers.items():
            assert isinstance(provider, StoredProvider)
            assert provider.name == bare[name].name
            assert provider.publishes_daily == bare[name].publishes_daily

    def test_lists_identical_cold_and_warm(self, store):
        cold = self._fresh_providers(store)
        cold_list = cold["alexa"].daily_list(2)
        assert store.stats.puts.get("providers", 0) >= 1

        warm = self._fresh_providers(store)
        warm_list = warm["alexa"].daily_list(2)
        assert store.stats.hits.get("providers", 0) >= 1
        np.testing.assert_array_equal(warm_list.name_rows, cold_list.name_rows)
        assert warm_list.day == cold_list.day
        assert warm_list.granularity == cold_list.granularity

    def test_monthly_list_round_trips(self, store):
        cold = self._fresh_providers(store)
        cold_list = cold["majestic"].monthly_list()
        warm = self._fresh_providers(store)
        warm_list = warm["majestic"].monthly_list()
        np.testing.assert_array_equal(warm_list.name_rows, cold_list.name_rows)
        if cold_list.bucket_bounds is not None:
            np.testing.assert_array_equal(warm_list.bucket_bounds, cold_list.bucket_bounds)

    def test_monthly_provider_daily_list_delegates(self, store):
        providers = self._fresh_providers(store)
        crux = providers["crux"]
        assert not crux.publishes_daily
        daily = crux.daily_list(3)
        monthly = crux.monthly_list()
        np.testing.assert_array_equal(daily.name_rows, monthly.name_rows)
