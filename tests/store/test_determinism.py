"""Determinism regression: store hydration must not perturb results.

The paper's headline artifacts (Figure 2's list-vs-metric Jaccard and
Spearman heatmaps) must be bit-identical whether the experiment context is
built fresh, built cold through the store, or hydrated warm from on-disk
artifacts.  Seeds are respawned from the config rather than serialized, and
all tensors round-trip through npz losslessly, so equality here is exact —
no tolerances.
"""

from __future__ import annotations

import math

import pytest

from repro.core.experiments import run_experiment
from repro.core.pipeline import clear_contexts, experiment_context
from repro.store import ArtifactStore
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=1500, n_days=6, seed=2022)


def _fig2_cells(ctx):
    result = run_experiment("fig2", ctx)
    return result.data["jaccard"], result.data["spearman"]


def _assert_cells_identical(actual, expected, label):
    """Exact (bitwise) cell equality; NaN in both positions counts as equal."""
    assert actual.keys() == expected.keys()
    for cell, value in expected.items():
        got = actual[cell]
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(got), f"{label} {cell}: {got!r} != NaN"
        else:
            assert got == value, f"{label} {cell}: {got!r} != {value!r}"


@pytest.fixture(scope="module")
def fresh_cells():
    clear_contexts()
    return _fig2_cells(experiment_context(config=_CONFIG))


class TestStoreHydrationDeterminism:
    def test_fresh_cold_and_warm_agree_exactly(self, fresh_cells, tmp_path_factory):
        cache = tmp_path_factory.mktemp("determinism-store")

        clear_contexts()
        cold_store = ArtifactStore(cache)
        cold_cells = _fig2_cells(experiment_context(config=_CONFIG, store=cold_store))
        assert cold_store.stats.puts, "cold run must persist artifacts"

        clear_contexts()
        warm_store = ArtifactStore(cache)  # fresh instance, same directory
        warm_cells = _fig2_cells(experiment_context(config=_CONFIG, store=warm_store))
        assert warm_store.stats.total_hits > 0, "warm run must hydrate from disk"
        assert warm_store.stats.hits.get("world", 0) >= 1

        fresh_jj, fresh_rho = fresh_cells
        for label, (jj, rho) in {
            "cold": cold_cells,
            "warm": warm_cells,
        }.items():
            _assert_cells_identical(jj, fresh_jj, f"{label} Jaccard")
            _assert_cells_identical(rho, fresh_rho, f"{label} Spearman")

    def test_store_context_reuses_memo(self, tmp_path):
        clear_contexts()
        store = ArtifactStore(tmp_path / "store")
        first = experiment_context(config=_CONFIG, store=store)
        second = experiment_context(config=_CONFIG, store=store)
        assert first is second
