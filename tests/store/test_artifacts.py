"""Failure-mode tests for the content-addressed artifact store.

Covers the store's hard guarantees: corrupt entries are evicted and
rebuilt (never raised), concurrent writers to the same key never produce
torn reads, and LRU eviction respects the byte cap.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    config_key,
    default_cache_dir,
)
from repro.worldgen.config import WorldConfig

KEY = "0" * 24


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestRoundTrip:
    def test_arrays_round_trip(self, store):
        arrays = {
            "ranks": np.arange(100, dtype=np.int64),
            "weights": np.linspace(0.0, 1.0, 100),
        }
        store.put_arrays(KEY, "traffic/day-000", arrays)
        loaded = store.get_arrays(KEY, "traffic/day-000")
        assert set(loaded) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(loaded[name], arrays[name])

    def test_float_round_trip_is_bit_exact(self, store):
        values = np.random.default_rng(7).standard_normal(1000)
        store.put_arrays(KEY, "traffic/day-001", {"v": values})
        loaded = store.get_arrays(KEY, "traffic/day-001")["v"]
        assert loaded.tobytes() == values.tobytes()

    def test_json_round_trip(self, store):
        value = {"name": "fig1", "rows": [1, 2, 3], "nested": {"a": 0.5}}
        store.put_json(KEY, "results/fig1", value)
        assert store.get_json(KEY, "results/fig1") == value

    def test_miss_returns_none_and_counts(self, store):
        assert store.get_arrays(KEY, "world/arrays") is None
        assert store.get_json(KEY, "results/nope") is None
        assert store.stats.misses == {"world": 1, "results": 1}
        assert store.stats.total_hits == 0

    def test_stats_track_hits_by_kind(self, store):
        store.put_arrays(KEY, "metrics/day-000", {"x": np.zeros(3)})
        store.get_arrays(KEY, "metrics/day-000")
        store.get_arrays(KEY, "metrics/day-000")
        assert store.stats.hits == {"metrics": 2}
        assert store.stats.puts == {"metrics": 1}


class TestCorruption:
    def _entry_path(self, store):
        files = [p for p in (store.root / f"v{SCHEMA_VERSION}").rglob("*") if p.is_file()]
        assert len(files) == 1
        return files[0]

    def test_truncated_entry_evicted_and_rebuilt(self, store):
        store.put_arrays(KEY, "world/arrays", {"x": np.arange(50)})
        path = self._entry_path(store)
        path.write_bytes(path.read_bytes()[:-20])  # simulated torn write

        assert store.get_arrays(KEY, "world/arrays") is None
        assert store.stats.corrupt == 1
        assert not path.exists(), "corrupt entry must be unlinked"

        # Rebuild path: put again, read back fine.
        store.put_arrays(KEY, "world/arrays", {"x": np.arange(50)})
        loaded = store.get_arrays(KEY, "world/arrays")
        np.testing.assert_array_equal(loaded["x"], np.arange(50))

    def test_flipped_bit_detected(self, store):
        store.put_arrays(KEY, "world/arrays", {"x": np.arange(50)})
        path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get_arrays(KEY, "world/arrays") is None
        assert store.stats.corrupt == 1

    def test_garbage_file_is_a_miss_not_a_crash(self, store):
        path = store._path(KEY, "world/arrays", "npz")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"this was never an artifact")
        assert store.get_arrays(KEY, "world/arrays") is None
        assert not path.exists()

    def test_valid_checksum_but_bad_npz_evicted(self, store):
        # Bypass put_arrays: a correctly checksummed payload that numpy
        # cannot parse must also be treated as corruption.
        store._write_payload(KEY, "world/arrays", "npz", b"not an npz archive")
        assert store.get_arrays(KEY, "world/arrays") is None
        assert store.stats.corrupt == 1
        assert not store._path(KEY, "world/arrays", "npz").exists()

    def test_bad_json_payload_evicted(self, store):
        store._write_payload(KEY, "results/fig1", "json", b"{truncated")
        assert store.get_json(KEY, "results/fig1") is None
        assert store.stats.corrupt == 1


def _writer(root: str, worker: int) -> None:
    store = ArtifactStore(root)
    arrays = {"x": np.arange(5000, dtype=np.int64)}  # same content every writer
    for _ in range(20):
        store.put_arrays(KEY, "traffic/day-000", arrays)


class TestConcurrency:
    def test_concurrent_writers_never_tear(self, tmp_path):
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_writer, args=(str(root), i)) for i in range(4)]
        for proc in procs:
            proc.start()

        # Read continuously while writers race on the same key.
        reader = ArtifactStore(root)
        expected = np.arange(5000, dtype=np.int64)
        observed = 0
        while any(proc.is_alive() for proc in procs):
            loaded = reader.get_arrays(KEY, "traffic/day-000")
            if loaded is not None:
                np.testing.assert_array_equal(loaded["x"], expected)
                observed += 1
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        assert reader.stats.corrupt == 0

        final = reader.get_arrays(KEY, "traffic/day-000")
        np.testing.assert_array_equal(final["x"], expected)


class TestEviction:
    def test_eviction_respects_cap(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=40_000)
        for day in range(10):
            store.put_arrays(KEY, f"traffic/day-{day:03d}", {"x": np.zeros(1000)})
        assert store.total_bytes() <= 40_000
        assert store.stats.evictions > 0
        # The newest entry always survives its own publication.
        assert store.get_arrays(KEY, "traffic/day-009") is not None

    def test_eviction_is_oldest_first_and_read_refreshes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        for day in range(4):
            store.put_arrays(KEY, f"traffic/day-{day:03d}", {"x": np.zeros(1000)})
            # Distinct mtimes even on coarse filesystem timestamp resolution.
            os.utime(
                store._path(KEY, f"traffic/day-{day:03d}", "npz"),
                (1_000_000 + day, 1_000_000 + day),
            )

        # Touch day-000 so it becomes the most recently used.
        entry_size = store.entries()[0].size
        path = store._path(KEY, "traffic/day-000", "npz")
        os.utime(path, (2_000_000, 2_000_000))

        store.max_bytes = entry_size * 2
        store._evict_over_cap()
        remaining = {entry.key.split("/")[-1] for entry in store.entries()}
        assert "day-000.npz" in remaining, "recently-used entry must survive"
        assert "day-001.npz" not in remaining

    def test_oversized_single_artifact_kept(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=100)
        store.put_arrays(KEY, "world/arrays", {"x": np.zeros(1000)})
        assert store.get_arrays(KEY, "world/arrays") is not None

    def test_clear_reports_bytes_freed(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_arrays(KEY, "world/arrays", {"x": np.zeros(1000)})
        stored = store.total_bytes()
        assert stored > 0
        assert store.clear() == stored
        assert store.total_bytes() == 0

    def test_run_manifests_not_store_contents(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=10)
        runs = store.root / "runs"
        runs.mkdir(parents=True)
        (runs / "run-1.json").write_text("{}")
        store.put_arrays(KEY, "world/arrays", {"x": np.zeros(10)})
        assert (runs / "run-1.json").exists(), "manifests must never be evicted"
        keys = [entry.key for entry in store.entries()]
        assert all(key.startswith(f"v{SCHEMA_VERSION}/") for key in keys)


class TestKeys:
    def test_config_key_is_short_hex(self):
        key = config_key(WorldConfig())
        assert len(key) == 24
        int(key, 16)  # hex-parsable

    def test_config_key_depends_on_fields(self):
        assert config_key(WorldConfig()) != config_key(WorldConfig(seed=1))
        assert config_key(WorldConfig()) == config_key(WorldConfig())

    def test_default_cache_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
