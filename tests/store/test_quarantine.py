"""Quarantine and read-only-degradation tests for the artifact store.

These cover the failure paths an unattended chaos soak leans on: corrupt
blobs must stay inspectable (bounded), an unwritable root must demote the
store instead of crashing the run, and a racing quarantine must fall back
to plain eviction.
"""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.store import MAX_QUARANTINE, ArtifactStore

KEY = "0" * 24


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _corrupt_on_disk(store: ArtifactStore, suffix: str = "") -> None:
    """Flip bytes of every live entry matching ``suffix``."""
    for entry in store.entries():
        if suffix and suffix not in entry.key:
            continue
        path = store.root / entry.key
        blob = path.read_bytes()
        path.write_bytes(blob[:-4] + bytes(b ^ 0xFF for b in blob[-4:]))


class TestQuarantine:
    def test_corrupt_read_moves_blob_to_quarantine(self, store):
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(64)})
        _corrupt_on_disk(store)
        assert store.get_arrays(KEY, "traffic/day-000") is None
        assert store.stats.quarantined == 1
        residents = store.quarantined()
        assert len(residents) == 1
        assert residents[0].key.startswith("quarantine/")
        assert "traffic" in residents[0].key
        # The live slot is empty; the quarantined bytes are preserved.
        assert store.entries() == []
        assert (store.root / residents[0].key).stat().st_size > 0

    def test_unparseable_npz_quarantined(self, store):
        # A valid checksum over garbage bytes: corruption happened before
        # the write, so the header check passes but np.load fails.
        store._write_payload(KEY, "world/arrays", "npz", b"not an npz")
        assert store.get_arrays(KEY, "world/arrays") is None
        assert store.stats.quarantined == 1

    def test_unparseable_json_quarantined(self, store):
        store._write_payload(KEY, "results/fig1", "json", b"{truncated")
        assert store.get_json(KEY, "results/fig1") is None
        assert store.stats.quarantined == 1

    def test_quarantine_is_bounded(self, store):
        for i in range(MAX_QUARANTINE + 5):
            name = f"traffic/day-{i:03d}"
            store.put_arrays(KEY, name, {"x": np.arange(8)})
            _corrupt_on_disk(store, suffix=f"day-{i:03d}")
            store.get_arrays(KEY, name)
        assert store.stats.quarantined == MAX_QUARANTINE + 5
        assert len(store.quarantined()) == MAX_QUARANTINE

    def test_quarantine_excluded_from_store_accounting(self, store):
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(64)})
        _corrupt_on_disk(store)
        store.get_arrays(KEY, "traffic/day-000")
        assert store.total_bytes() == 0, "quarantined bytes never count"
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(64)})
        assert len(store.entries()) == 1

    def test_quarantine_move_failure_falls_back_to_eviction(
        self, store, monkeypatch
    ):
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(16)})
        _corrupt_on_disk(store)

        real_replace = os.replace

        def racing_replace(src, dst):
            if "quarantine" in str(dst):
                raise FileNotFoundError(src)  # another process won the race
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", racing_replace)
        assert store.get_arrays(KEY, "traffic/day-000") is None
        assert store.quarantined() == []
        assert store.stats.quarantined == 0
        assert store.entries() == [], "the corrupt entry is still evicted"

    def test_clear_empties_quarantine_too(self, store):
        store.put_arrays(KEY, "traffic/day-000", {"x": np.arange(16)})
        _corrupt_on_disk(store)
        store.get_arrays(KEY, "traffic/day-000")
        assert store.quarantined()
        store.clear()
        assert store.quarantined() == []


class TestReadOnlyDegradation:
    def _make_unwritable(self, monkeypatch):
        # The suite runs as root in containers, so chmod-based read-only
        # roots don't refuse writes; fail the publish syscall instead.
        def refusing_replace(src, dst):
            raise OSError(errno.EROFS, "read-only file system", str(dst))

        monkeypatch.setattr(os, "replace", refusing_replace)

    def test_write_failure_demotes_once_and_keeps_reads(
        self, store, monkeypatch
    ):
        store.put_json(KEY, "results/before", {"v": 1})
        self._make_unwritable(monkeypatch)
        store.put_json(KEY, "results/lost", {"v": 2})
        assert store.read_only
        assert store.stats.write_errors == 1
        monkeypatch.undo()
        # Demotion is sticky even after the filesystem recovers: the
        # store warns once and skips, rather than flip-flopping.
        store.put_json(KEY, "results/also-lost", {"v": 3})
        assert store.stats.writes_skipped == 1
        assert store.get_json(KEY, "results/also-lost") is None
        assert store.get_json(KEY, "results/before") == {"v": 1}

    def test_transient_write_error_does_not_demote(self, store, monkeypatch):
        def flaky_replace(src, dst):
            raise OSError(errno.EIO, "I/O error", str(dst))

        monkeypatch.setattr(os, "replace", flaky_replace)
        store.put_json(KEY, "results/x", {"v": 1})
        assert not store.read_only
        assert store.stats.write_errors == 1
        monkeypatch.undo()
        store.put_json(KEY, "results/x", {"v": 1})
        assert store.get_json(KEY, "results/x") == {"v": 1}

    def test_no_tmp_litter_after_failed_write(self, store, monkeypatch):
        self._make_unwritable(monkeypatch)
        store.put_json(KEY, "results/x", {"v": 1})
        monkeypatch.undo()
        leftovers = [
            p for p in store.root.rglob(".*tmp*") if p.is_file()
        ]
        assert leftovers == []
