"""Concurrent readers against a writer never see torn blobs, and the
read-path observer reports every read with its status and latency.

The atomic-replace + directory-fsync write path is what the serve layer
leans on: a reader either gets the old complete payload or the new
complete payload, never a mix (which would surface as "corrupt").
"""

from __future__ import annotations

import threading

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.faults import inject as fault_inject
from repro.store import ArtifactStore

KEY = "0" * 24
NAME = "results/hammered"


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestReadObserver:
    def test_hit_miss_corrupt_statuses_delivered(self, store):
        seen = []
        store.read_observer = lambda name, status, seconds: seen.append(
            (name, status, seconds)
        )
        store.get_json(KEY, NAME)  # miss
        store.put_json(KEY, NAME, {"v": 1})
        store.get_json(KEY, NAME)  # hit
        path = store._path(KEY, NAME, "json")
        path.write_bytes(b"garbage that is not a store payload")
        store.get_json(KEY, NAME)  # corrupt -> quarantined
        statuses = [(name, status) for name, status, _ in seen]
        assert statuses == [(NAME, "miss"), (NAME, "hit"), (NAME, "corrupt")]
        assert all(seconds >= 0.0 for _, _, seconds in seen)

    def test_observer_sees_injected_slowness(self, store):
        store.put_json(KEY, NAME, {"v": 1})
        seen = []
        store.read_observer = lambda name, status, seconds: seen.append(
            (status, seconds)
        )
        plan = FaultPlan(
            rules=[FaultRule("store.read.slow", match=NAME, delay_seconds=0.05)],
            seed=3,
        )
        with fault_inject.injecting(plan):
            assert store.get_json(KEY, NAME) == {"v": 1}
        status, seconds = seen[0]
        assert status == "hit"  # slow, not broken: the payload is intact
        assert seconds >= 0.05

    def test_no_observer_is_fine(self, store):
        store.put_json(KEY, NAME, {"v": 1})
        assert store.read_observer is None
        assert store.get_json(KEY, NAME) == {"v": 1}


class TestNoTornReads:
    def test_readers_race_a_writer_without_corruption(self, store):
        """put_json to one key under concurrent get_json: every read parses
        and carries a self-consistent version, and none is "corrupt"."""
        rounds = 60
        payload = {"version": 0, "echo": 0, "pad": "x" * 4096}
        store.put_json(KEY, NAME, payload)
        statuses = []
        statuses_lock = threading.Lock()

        def observe(name, status, seconds):
            with statuses_lock:
                statuses.append(status)

        store.read_observer = observe
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                blob = store.get_json(KEY, NAME)
                if blob is None:
                    bad.append("vanished")
                elif blob["version"] != blob["echo"] or len(blob["pad"]) != 4096:
                    bad.append(f"torn: {blob['version']} vs {blob['echo']}")

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for version in range(1, rounds + 1):
                store.put_json(
                    KEY, NAME,
                    {"version": version, "echo": version, "pad": "x" * 4096},
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10.0)
        assert not bad, bad[:5]
        assert store.stats.corrupt == 0
        assert "corrupt" not in statuses
        assert statuses.count("hit") > 0
        # The final read returns the last write.
        assert store.get_json(KEY, NAME)["version"] == rounds
