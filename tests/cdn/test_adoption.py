"""Tests for the Cloudflare adoption surface and virtual network."""

import numpy as np

from repro.cdn.adoption import (
    build_virtual_network,
    cloudflare_site_indices,
    coverage_of_sites,
)
from repro.netsim.probe import CloudflareProbe


class TestAdoptionSurface:
    def test_indices_match_flags(self, tiny_world):
        indices = cloudflare_site_indices(tiny_world)
        assert tiny_world.sites.cf_served[indices].all()
        assert len(indices) == tiny_world.sites.cf_served.sum()

    def test_coverage_math(self, tiny_world):
        cf = cloudflare_site_indices(tiny_world)
        assert coverage_of_sites(tiny_world, cf) == 1.0
        assert coverage_of_sites(tiny_world, np.array([], dtype=int)) == 0.0
        # Unresolvable names (site -1) count as unserved.
        mixed = np.array([int(cf[0]), -1])
        assert coverage_of_sites(tiny_world, mixed) == 0.5


class TestVirtualNetwork:
    def test_probe_agrees_with_ground_truth(self, tiny_world):
        """The HEAD-probe methodology reproduces the cf_served flags."""
        network = build_virtual_network(tiny_world)
        probe = CloudflareProbe(network)
        for site in range(0, tiny_world.n_sites, 7):
            result = probe.probe(tiny_world.sites.names[site])
            assert result.reachable
            assert result.cloudflare == bool(tiny_world.sites.cf_served[site])

    def test_fqdns_answer_consistently(self, tiny_world):
        network = build_virtual_network(tiny_world)
        probe = CloudflareProbe(network)
        names = tiny_world.names
        from repro.worldgen.nametable import NameKind

        rows = names.rows_of_kind(NameKind.FQDN)[:100]
        for row in rows:
            site = int(names.site[row])
            if site < 0:
                continue
            result = probe.probe(names.strings[row])
            assert result.cloudflare == bool(tiny_world.sites.cf_served[site])

    def test_subset_network(self, tiny_world):
        network = build_virtual_network(tiny_world, site_indices=[0, 1, 2])
        probe = CloudflareProbe(network)
        assert probe.probe(tiny_world.sites.names[0]).reachable
        assert not probe.probe(tiny_world.sites.names[50]).reachable

    def test_infra_names_not_registered(self, tiny_world):
        network = build_virtual_network(tiny_world)
        assert "com" not in network
        assert "pool.ntp.org" not in network
