"""Tests for filter/aggregation definitions."""

import pytest

from repro.cdn.filters import (
    AGGREGATIONS,
    ALL_COMBINATIONS,
    FILTERS,
    FINAL_SEVEN,
    combo_key,
    describe_combo,
    split_combo,
)


class TestDefinitions:
    def test_paper_counts(self):
        # Section 3.1: seven filters, three aggregations, 21 combinations.
        assert len(FILTERS) == 7
        assert len(AGGREGATIONS) == 3
        assert len(ALL_COMBINATIONS) == 21
        assert len(FINAL_SEVEN) == 7

    def test_final_seven_are_valid_combos(self):
        assert set(FINAL_SEVEN) <= set(ALL_COMBINATIONS)

    def test_final_seven_matches_section_3_3(self):
        # 4 request-based + 3 unique-IP-based metrics.
        requests = [c for c in FINAL_SEVEN if c.endswith(":requests")]
        ips = [c for c in FINAL_SEVEN if c.endswith(":ips")]
        assert len(requests) == 4
        assert len(ips) == 3

    def test_combo_key_roundtrip(self):
        for key in ALL_COMBINATIONS:
            filter_key, agg_key = split_combo(key)
            assert combo_key(filter_key, agg_key) == key

    @pytest.mark.parametrize("bad", ["nosuch:requests", "all:nosuch", "allrequests"])
    def test_invalid_keys_raise(self, bad):
        with pytest.raises(KeyError):
            split_combo(bad)

    def test_descriptions(self):
        assert describe_combo("all:requests") == "All HTTP Requests"
        assert describe_combo("tls:requests") == "TLS Handshakes"
        assert "Unique" in describe_combo("html:ips")
