"""Tests for the record-level log store."""

import pytest

from repro.cdn.logstore import LogRecord, LogStore


def _record(**overrides) -> LogRecord:
    base = dict(
        day=0,
        site=1,
        host="example.com",
        path="/",
        status=200,
        content_type="text/html",
        has_referer=False,
        browser_family="chrome",
        is_top5_browser=True,
        client_ip="10.0.0.1",
        user_agent="UA",
        new_tls_session=True,
    )
    base.update(overrides)
    return LogRecord(**base)


class TestAggregation:
    def test_requests_count(self):
        store = LogStore()
        store.extend([_record(), _record(path="/a"), _record(site=2)])
        counts = store.day_counts(0, combos=("all:requests",))["all:requests"]
        assert counts == {1: 2.0, 2: 1.0}

    def test_unique_ips(self):
        store = LogStore()
        store.extend([
            _record(client_ip="10.0.0.1"),
            _record(client_ip="10.0.0.1"),
            _record(client_ip="10.0.0.2"),
        ])
        counts = store.day_counts(0, combos=("all:ips",))["all:ips"]
        assert counts == {1: 2.0}

    def test_ip_ua_tuples(self):
        store = LogStore()
        store.extend([
            _record(client_ip="10.0.0.1", user_agent="A"),
            _record(client_ip="10.0.0.1", user_agent="B"),
            _record(client_ip="10.0.0.1", user_agent="B"),
        ])
        counts = store.day_counts(0, combos=("all:ip_ua",))["all:ip_ua"]
        assert counts == {1: 2.0}

    @pytest.mark.parametrize(
        "combo,matching,nonmatching",
        [
            ("html:requests", dict(content_type="text/html"), dict(content_type="image/png")),
            ("200:requests", dict(status=200), dict(status=404)),
            ("referer:requests", dict(has_referer=True), dict(has_referer=False)),
            ("browsers:requests", dict(is_top5_browser=True), dict(is_top5_browser=False)),
            ("tls:requests", dict(new_tls_session=True), dict(new_tls_session=False)),
            ("root:requests", dict(path="/"), dict(path="/deep")),
        ],
    )
    def test_filters(self, combo, matching, nonmatching):
        store = LogStore()
        store.add(_record(**matching))
        store.add(_record(**nonmatching))
        counts = store.day_counts(0, combos=(combo,))[combo]
        assert counts.get(1, 0.0) == 1.0

    def test_days_are_separate(self):
        store = LogStore()
        store.add(_record(day=0))
        store.add(_record(day=1))
        assert store.day_counts(0, combos=("all:requests",))["all:requests"] == {1: 1.0}
        assert store.days() == [0, 1]
        assert store.record_count() == 2
        assert store.record_count(day=1) == 1

    def test_dense_arrays(self):
        store = LogStore()
        store.extend([_record(site=0), _record(site=3), _record(site=3)])
        dense = store.day_count_arrays(0, n_sites=5, combos=("all:requests",))
        assert dense["all:requests"].tolist() == [1.0, 0.0, 0.0, 2.0, 0.0]

    def test_ranking(self):
        store = LogStore()
        store.extend([_record(site=2)] * 3 + [_record(site=0)] * 5 + [_record(site=4)])
        ranking = store.ranking(0, "all:requests", n_sites=5)
        assert ranking.tolist() == [0, 2, 4]

    def test_all_21_combos_computable(self):
        store = LogStore()
        store.add(_record())
        counts = store.day_counts(0)
        assert len(counts) == 21
