"""Tests for the CDN metric engine."""

import numpy as np
import pytest

from repro.cdn.filters import ALL_COMBINATIONS, FINAL_SEVEN
from repro.cdn.metrics import CdnMetricEngine


class TestExpectedCounts:
    @pytest.fixture(scope="class")
    def expected(self, small_engine):
        return small_engine.expected_day_counts(0)

    def test_all_combos_present(self, expected):
        assert set(expected) == set(ALL_COMBINATIONS)

    def test_filters_only_remove_requests(self, expected):
        base = expected["all:requests"]
        for key in ("html:requests", "200:requests", "referer:requests",
                    "browsers:requests", "root:requests"):
            assert (expected[key] <= base + 1e-6).all(), key

    def test_bookend_property(self, expected, small_traffic):
        # Root page loads <= pageloads <= all requests (Section 3.4).
        pageloads = small_traffic.day(0).pageloads
        assert (expected["root:requests"] <= expected["all:requests"] + 1e-6).all()
        assert (expected["all:requests"] >= pageloads - 1e-6).all()

    def test_tls_between_pageloads_and_requests(self, expected, small_traffic):
        pageloads = small_traffic.day(0).pageloads
        assert (expected["tls:requests"] >= pageloads * 0.99).all()

    def test_ip_ua_slightly_above_ips(self, expected):
        ips = expected["all:ips"]
        ip_ua = expected["all:ip_ua"]
        assert (ip_ua >= ips - 1e-9).all()
        assert (ip_ua <= ips * 1.15).all()

    def test_ips_below_requests(self, expected):
        assert (expected["all:ips"] <= expected["all:requests"] + 1e5).all()


class TestObservedCounts:
    def test_masked_to_cloudflare(self, small_world, small_engine):
        counts = small_engine.day_counts(0)
        for values in counts.values():
            assert (values[~small_world.sites.cf_served] == 0).all()

    def test_counts_are_integral_nonnegative(self, small_engine):
        counts = small_engine.day_counts(0, combos=("all:requests",))["all:requests"]
        assert (counts >= 0).all()
        assert np.allclose(counts, np.rint(counts))

    def test_day_cache_stable(self, small_engine):
        a = small_engine.day_counts(1, combos=("all:ips",))["all:ips"]
        b = small_engine.day_counts(1, combos=("all:ips",))["all:ips"]
        assert np.array_equal(a, b)

    def test_noise_free_mode(self, small_world, small_traffic):
        engine = CdnMetricEngine(small_world, small_traffic, apply_sampling_noise=False)
        counts = engine.day_counts(0, combos=("all:requests",))["all:requests"]
        expected = engine.expected_day_counts(0)["all:requests"]
        mask = small_world.sites.cf_served
        assert np.allclose(counts[mask], expected[mask])

    def test_days_differ(self, small_engine):
        a = small_engine.day_counts(0, combos=("all:requests",))["all:requests"]
        b = small_engine.day_counts(2, combos=("all:requests",))["all:requests"]
        assert not np.array_equal(a, b)


class TestRankings:
    def test_ranking_contains_only_cf_sites(self, small_world, small_engine):
        ranking = small_engine.ranking(0, "all:requests")
        assert small_world.sites.cf_served[ranking].all()
        assert len(ranking) == small_engine.n_cf_sites

    def test_ranking_is_sorted_by_counts(self, small_engine):
        ranking = small_engine.ranking(0, "all:requests")
        counts = small_engine.day_counts(0, combos=("all:requests",))["all:requests"]
        values = counts[ranking]
        assert (np.diff(values) <= 0).all()

    def test_top_prefix(self, small_engine):
        top = small_engine.top(0, "root:ips", 50)
        assert np.array_equal(top, small_engine.ranking(0, "root:ips")[:50])

    def test_ranking_roughly_tracks_popularity(self, small_engine):
        # The most popular CF sites should mostly rank well.
        ranking = small_engine.ranking(0, "all:ips")
        top_true = small_engine.cf_sites[:50]
        positions = {site: i for i, site in enumerate(ranking)}
        mean_pos = np.mean([positions[s] for s in top_true])
        assert mean_pos < len(ranking) * 0.2

    def test_monthly_ranking(self, small_engine):
        monthly = small_engine.monthly_ranking("all:requests")
        assert len(monthly) == small_engine.n_cf_sites

    def test_month_average(self, small_world, small_engine):
        averages = small_engine.month_average_counts(combos=FINAL_SEVEN)
        daily = [
            small_engine.day_counts(d, combos=("all:requests",))["all:requests"]
            for d in range(small_world.config.n_days)
        ]
        assert np.allclose(averages["all:requests"], np.mean(daily, axis=0))

    def test_drop_cache(self, small_engine):
        small_engine.day_counts(3)
        small_engine.drop_cache([3])
        # Re-computation reproduces identical values (determinism).
        a = small_engine.day_counts(3, combos=("all:requests",))["all:requests"]
        small_engine.drop_cache()
        b = small_engine.day_counts(3, combos=("all:requests",))["all:requests"]
        assert np.array_equal(a, b)
