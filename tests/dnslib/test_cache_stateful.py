"""Stateful property test: DnsCache vs a reference model.

Hypothesis drives random sequences of put/get/advance-clock operations
against both the real cache and a brute-force model (a dict with expiry
timestamps, no capacity limit but mirrored evictions), checking they agree
on every lookup.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.dnslib.cache import DnsCache
from repro.dnslib.records import ResourceRecord

_NAMES = [f"site{i}.example" for i in range(8)]


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = DnsCache(capacity=5)
        self.model = {}          # name -> (expires_at, data)
        self.model_order = []    # LRU order, oldest first
        self.now = 0.0

    def _model_evict_if_needed(self):
        while len(self.model) > 5:
            victim = self.model_order.pop(0)
            self.model.pop(victim, None)

    def _model_touch(self, name):
        if name in self.model_order:
            self.model_order.remove(name)
        self.model_order.append(name)

    @rule(name=st.sampled_from(_NAMES), ttl=st.integers(1, 50))
    def put(self, name, ttl):
        record = ResourceRecord(name=name, rtype="A", ttl=ttl, data=f"ip-{name}")
        self.cache.put(record, now=self.now)
        self.model[name] = (self.now + ttl, record.data)
        self._model_touch(name)
        self._model_evict_if_needed()

    @rule(name=st.sampled_from(_NAMES))
    def get(self, name):
        result = self.cache.get(name, "A", now=self.now)
        entry = self.model.get(name)
        if entry is not None and entry[0] > self.now:
            assert result is not None, f"model has live {name}, cache missed"
            assert result.data == entry[1]
            self._model_touch(name)
        else:
            assert result is None, f"cache returned expired/absent {name}"
            if entry is not None:  # expired: both sides drop it
                self.model.pop(name, None)
                if name in self.model_order:
                    self.model_order.remove(name)

    @rule(delta=st.floats(min_value=0.1, max_value=30.0))
    def advance_clock(self, delta):
        self.now += delta

    @invariant()
    def capacity_respected(self):
        assert len(self.cache) <= 5

    @invariant()
    def stats_coherent(self):
        stats = self.cache.stats
        assert stats.hits + stats.misses == stats.lookups
        assert stats.hit_rate <= 1.0


CacheMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestDnsCacheStateful = CacheMachine.TestCase
