"""Tests for the resolver chain and query-log visibility."""

import pytest

from repro.dnslib.cache import DnsCache
from repro.dnslib.querylog import QueryLog
from repro.dnslib.records import ResourceRecord, RRType
from repro.dnslib.resolver import (
    AuthoritativeServer,
    CachingResolver,
    NxDomain,
    StubResolver,
)


@pytest.fixture()
def upstream() -> AuthoritativeServer:
    return AuthoritativeServer(ttls={"example.com": 300, "fast.example": 30})


class TestAuthoritative:
    def test_answers_registered(self, upstream):
        record = upstream.query("example.com")
        assert record.ttl == 300
        assert record.rtype == RRType.A

    def test_nxdomain(self, upstream):
        with pytest.raises(NxDomain):
            upstream.query("missing.example")

    def test_stable_addresses(self, upstream):
        assert upstream.query("example.com").data == upstream.query("example.com").data

    def test_query_counter(self, upstream):
        upstream.query("example.com")
        upstream.query("example.com")
        assert upstream.queries_served == 2


class TestCachingResolver:
    def test_cache_suppresses_upstream(self, upstream):
        resolver = CachingResolver("org-1", upstream, DnsCache())
        resolver.resolve("example.com", client_id="c1", now=0.0)
        resolver.resolve("example.com", client_id="c2", now=100.0)
        assert upstream.queries_served == 1

    def test_ttl_expiry_requeries(self, upstream):
        resolver = CachingResolver("org-1", upstream, DnsCache())
        resolver.resolve("fast.example", client_id="c1", now=0.0)
        resolver.resolve("fast.example", client_id="c1", now=31.0)
        assert upstream.queries_served == 2

    def test_upstream_log_sees_org_not_device(self, upstream):
        """A forwarding deployment's vantage point counts organizations —
        the mechanism behind Umbrella's head compression."""
        log = QueryLog()
        resolver = CachingResolver("org-1", upstream, DnsCache(), log=log)
        resolver.resolve("example.com", client_id="device-a", now=0.0)
        resolver.resolve("example.com", client_id="device-b", now=400.0)  # expired
        counts = log.unique_clients_per_name(0)
        assert counts == {"example.com": 1}  # one org, despite two devices

    def test_client_query_logging_mode(self, upstream):
        log = QueryLog()
        resolver = CachingResolver(
            "org-1", upstream, DnsCache(), log=log, log_client_queries=True
        )
        resolver.resolve("example.com", client_id="device-a", now=0.0)
        resolver.resolve("example.com", client_id="device-b", now=1.0)  # cache hit
        counts = log.unique_clients_per_name(0)
        assert counts == {"example.com": 2}  # direct mode sees devices


class TestStub:
    def test_stub_forwards(self, upstream):
        resolver = CachingResolver("org-1", upstream, DnsCache())
        stub = StubResolver(client_id="device-a", resolver=resolver)
        record = stub.resolve("example.com", now=0.0)
        assert record.name == "example.com"


class TestRecords:
    def test_name_normalized(self):
        record = ResourceRecord(name="WWW.Example.COM.", rtype="A", ttl=60, data="x")
        assert record.name == "www.example.com"

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            ResourceRecord(name="a.com", rtype="TXT", ttl=60, data="x")

    def test_negative_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord(name="a.com", rtype="A", ttl=-1, data="x")


class TestQueryLog:
    def test_ranking_ties_alphabetical(self):
        log = QueryLog()
        for client in ("c1", "c2"):
            log.record(0, "zeta.com", client)
            log.record(0, "alpha.com", client)
        log.record(0, "popular.com", "c1")
        log.record(0, "popular.com", "c2")
        log.record(0, "popular.com", "c3")
        assert log.ranking(0) == ["popular.com", "alpha.com", "zeta.com"]

    def test_volume_vs_unique(self):
        log = QueryLog()
        for _ in range(5):
            log.record(0, "a.com", "c1")
        assert log.query_volume_per_name(0)["a.com"] == 5
        assert log.unique_clients_per_name(0)["a.com"] == 1
        assert log.total_queries(0) == 5
