"""Tests for the DNS TTL cache."""

import pytest

from repro.dnslib.cache import DnsCache
from repro.dnslib.records import ResourceRecord


def _rr(name="example.com", ttl=300) -> ResourceRecord:
    return ResourceRecord(name=name, rtype="A", ttl=ttl, data="198.51.100.1")


class TestTtl:
    def test_hit_within_ttl(self):
        cache = DnsCache()
        cache.put(_rr(ttl=300), now=0.0)
        assert cache.get("example.com", "A", now=299.0) is not None
        assert cache.stats.hits == 1

    def test_expiry_at_ttl(self):
        cache = DnsCache()
        cache.put(_rr(ttl=300), now=0.0)
        assert cache.get("example.com", "A", now=300.0) is None
        assert cache.stats.expirations == 1

    def test_miss_unknown(self):
        cache = DnsCache()
        assert cache.get("other.com", "A", now=0.0) is None
        assert cache.stats.misses == 1

    def test_case_insensitive(self):
        cache = DnsCache()
        cache.put(_rr(), now=0.0)
        assert cache.get("EXAMPLE.COM", "A", now=1.0) is not None

    def test_reinsert_refreshes_ttl(self):
        cache = DnsCache()
        cache.put(_rr(ttl=100), now=0.0)
        cache.put(_rr(ttl=100), now=90.0)
        assert cache.get("example.com", "A", now=150.0) is not None


class TestEviction:
    def test_lru_eviction(self):
        cache = DnsCache(capacity=2)
        cache.put(_rr("a.com"), now=0.0)
        cache.put(_rr("b.com"), now=0.0)
        cache.get("a.com", "A", now=1.0)  # refresh a
        cache.put(_rr("c.com"), now=2.0)  # evicts b
        assert cache.get("a.com", "A", now=3.0) is not None
        assert cache.get("b.com", "A", now=3.0) is None
        assert cache.stats.evictions == 1

    def test_capacity_bound(self):
        cache = DnsCache(capacity=10)
        for i in range(50):
            cache.put(_rr(f"site{i}.com"), now=float(i))
        assert len(cache) == 10

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DnsCache(capacity=0)

    def test_flush_keeps_stats(self):
        cache = DnsCache()
        cache.put(_rr(), now=0.0)
        cache.get("example.com", "A", now=1.0)
        cache.flush()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestStats:
    def test_hit_rate(self):
        cache = DnsCache()
        cache.put(_rr(), now=0.0)
        cache.get("example.com", "A", now=1.0)
        cache.get("missing.com", "A", now=1.0)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_empty_hit_rate(self):
        assert DnsCache().stats.hit_rate == 0.0
