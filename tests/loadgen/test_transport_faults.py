"""Transport-fault classification in the raw-socket client.

Each test scripts a misbehaving server at the socket level — the same
breakages :mod:`repro.faults.netproxy` injects — and pins how the
client must observe it:

* a body shorter than its declared ``Content-Length`` raises
  :class:`TruncatedBody` (never a silent short body);
* a corrupted status line raises :class:`GarbledResponse`, even when
  the corruption leaves a digit token where the status code belongs;
* EOF in the middle of the headers is a dropped connection, not the
  end of the headers;
* split writes are invisible: the client reassembles fragments into
  the exact body;
* a run of stale pooled sockets burns a bounded budget and surfaces
  :class:`StaleRetriesExhausted` instead of looping, and the engine
  reports the exhausted budget as the ``retries_exhausted`` outcome.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.loadgen.engine import (
    ConnectionPool,
    GarbledResponse,
    LoadEngine,
    StaleRetriesExhausted,
    TruncatedBody,
    http_get,
)
from repro.loadgen.personas import Catalog, Persona, PlannedRequest
from repro.runner.retry import RetryPolicy

_CATALOG = Catalog(providers=("alexa",), days=4, experiments=("tf1",))

_BODY = json.dumps({"status": "alive", "pad": "x" * 120}).encode()


def _response(body: bytes = _BODY, declared: int | None = None) -> bytes:
    length = len(body) if declared is None else declared
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(length).encode() + b"\r\n\r\n" + body
    )


def _read_request(conn: socket.socket) -> bytes:
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            raise OSError("client went away mid-request")
        data += chunk
    return data


class _FaultyServer(threading.Thread):
    """Accept loop that hands each connection to ``respond(conn)``."""

    def __init__(self, respond):
        super().__init__(daemon=True)
        self.respond = respond
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.sock.settimeout(0.1)
        self.port = self.sock.getsockname()[1]
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            with conn:
                try:
                    self.respond(conn)
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.join(timeout=2.0)
        self.sock.close()


@pytest.fixture()
def faulty():
    servers = []

    def launch(respond):
        server = _FaultyServer(respond)
        server.start()
        servers.append(server)
        return server

    yield launch
    for server in servers:
        server.stop()


# Responders mirroring the netproxy fault repertoire.


def _truncating(conn):
    _read_request(conn)
    conn.sendall(_response(_BODY[: len(_BODY) // 2], declared=len(_BODY)))


def _garbling(conn):
    _read_request(conn)
    blob = _response()
    conn.sendall(bytes(b ^ 0xFF for b in blob[:4]) + blob[4:])


def _mid_headers_close(conn):
    _read_request(conn)
    conn.sendall(_response()[:48])


def _splitting(conn):
    _read_request(conn)
    blob = _response()
    for offset in range(0, len(blob), 7):
        conn.sendall(blob[offset:offset + 7])


def _get(port, timeout=2.0):
    return asyncio.run(http_get("127.0.0.1", port, "/healthz", timeout=timeout))


class TestHttpGetClassification:
    def test_short_body_raises_truncated(self, faulty):
        server = faulty(_truncating)
        with pytest.raises(TruncatedBody) as excinfo:
            _get(server.port)
        assert excinfo.value.expected == len(_BODY)
        assert excinfo.value.received == len(_BODY) // 2

    def test_garbled_status_line_is_rejected(self, faulty):
        # XOR of the first four bytes clobbers "HTTP" but leaves
        # "200" intact — accepting it would mean trusting corrupted
        # framing whose second token happens to be digits.
        server = faulty(_garbling)
        with pytest.raises(GarbledResponse):
            _get(server.port)

    def test_eof_mid_headers_is_a_drop_not_header_end(self, faulty):
        server = faulty(_mid_headers_close)
        with pytest.raises(asyncio.IncompleteReadError):
            _get(server.port)

    def test_split_writes_reassemble_byte_exactly(self, faulty):
        server = faulty(_splitting)
        response = _get(server.port)
        assert response.status == 200
        assert response.body == _BODY

    def test_hard_reset_raises_oserror(self, faulty):
        import struct

        def reset(conn):
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )

        server = faulty(reset)
        with pytest.raises(OSError):
            _get(server.port)


class TestPoolClassification:
    def _pool_request(self, port, **pool_kwargs):
        async def go():
            pool = ConnectionPool("127.0.0.1", port, **pool_kwargs)
            try:
                return await pool.request("/healthz", timeout=2.0)
            finally:
                pool.close()

        return asyncio.run(go())

    def test_pool_sees_truncated_body(self, faulty):
        server = faulty(_truncating)
        with pytest.raises(TruncatedBody):
            self._pool_request(server.port)

    def test_pool_sees_garbled_status(self, faulty):
        server = faulty(_garbling)
        with pytest.raises(GarbledResponse):
            self._pool_request(server.port)

    def test_stale_retry_budget_is_bounded(self, faulty):
        # Prefill the idle list with sockets the server has already
        # closed: every reuse hits EOF before the first response byte
        # (the stale case), and with more stale sockets than budget the
        # pool must surface the exhausted budget, not loop or lie.
        server = faulty(lambda conn: None)  # accept, then close

        async def go():
            pool = ConnectionPool(
                "127.0.0.1", server.port, max_stale_retries=2
            )
            from repro.loadgen.engine import _PooledConnection

            for _ in range(4):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                pool._idle.append(_PooledConnection(reader, writer))
            await asyncio.sleep(0.05)  # let the server close them all
            try:
                await pool._request("/healthz")
            finally:
                pool.close()

        with pytest.raises(StaleRetriesExhausted):
            asyncio.run(go())


class _AnyJson(Persona):
    kind = "probes"

    def next_request(self) -> PlannedRequest:
        return PlannedRequest(
            path="/healthz", kind="health", think_seconds=0.0,
            persona_id=self.persona_id, conditional=False,
        )

    def validate(self, request, body):
        return None


def _issue_once(engine, persona):
    return asyncio.run(engine._issue(persona, persona.next_request()))


class TestEngineOutcomes:
    def _engine(self, port, attempts=2):
        return LoadEngine(
            "127.0.0.1", port, _CATALOG, seed=5,
            policy=RetryPolicy(max_attempts=attempts, base_delay=0.01),
            timeout=2.0, keepalive=False,
        )

    def test_persistent_truncation_exhausts_the_budget(self, faulty):
        server = faulty(_truncating)
        engine = self._engine(server.port)
        outcome = _issue_once(engine, _AnyJson("tf", 1, _CATALOG))
        assert outcome.outcome == "retries_exhausted"
        assert outcome.attempts == 2
        assert "truncated" in outcome.detail
        assert engine.client_stats.truncated == 2

    def test_persistent_garbling_counts_garbled_not_reset(self, faulty):
        server = faulty(_garbling)
        engine = self._engine(server.port)
        outcome = _issue_once(engine, _AnyJson("tf", 1, _CATALOG))
        assert outcome.outcome == "retries_exhausted"
        assert engine.client_stats.garbled == 2
        assert engine.client_stats.resets == 0

    def test_split_writes_are_an_ok_sample(self, faulty):
        server = faulty(_splitting)
        engine = self._engine(server.port)
        outcome = _issue_once(engine, _AnyJson("tf", 1, _CATALOG))
        assert outcome.outcome == "ok"
        assert outcome.attempts == 1
