"""The latency trajectory: schema pinning, the p99 drift gate, and the
compare-only CLI path.

The schema test is deliberately brittle: LATENCY files are diffed by CI
across runs, so adding/removing/renaming a key must be a conscious
schema-version bump, not a drive-by.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.trajectory import (
    DEFAULT_ABS_SLACK_MS,
    DEFAULT_P99_TOLERANCE,
    LATENCY_SCHEMA_VERSION,
    MIN_GATED_SAMPLES,
    build_trajectory,
    compare_trajectories,
    latency_path,
    load_trajectory,
    write_trajectory,
)


def _phase(name, latencies_by_kind, duration=2.0, sheds=0):
    phase = PhaseMetrics(name)
    serial = 0
    for kind, latencies in latencies_by_kind.items():
        for latency in latencies:
            phase.record(Outcome(
                path=f"/{kind}", kind=kind, persona_id=f"p{serial}",
                outcome="ok", status=200, latency_seconds=latency,
            ))
            serial += 1
    for _ in range(sheds):
        phase.record(Outcome(
            path="/x", kind="lists", persona_id="p-shed", outcome="shed",
            status=503, latency_seconds=0.001, retry_after_seen=1,
        ))
    phase.duration_seconds = duration
    return phase


def _document(p99_seconds=0.05, count=100):
    """A hand-built LATENCY document with a controllable overall p99."""
    phase = _phase("steady", {"health": [p99_seconds] * count})
    return build_trajectory(
        seed=7, mode="spawn", workers=2, keepalive=True, phases=[phase]
    )


class TestSchema:
    def test_top_level_keys_are_pinned(self):
        document = _document()
        assert sorted(document) == [
            "achieved_rps", "date", "endpoints", "keepalive",
            "latency_schema_version", "mode", "overall", "phases",
            "requests", "seed", "shed_rate", "workers",
        ]
        assert document["latency_schema_version"] == LATENCY_SCHEMA_VERSION

    def test_quantile_block_keys_are_pinned(self):
        document = _document()
        for block in (document["overall"],
                      document["endpoints"]["health"],):
            assert sorted(block) == [
                "count", "p50_ms", "p90_ms", "p999_ms", "p99_ms",
            ]
        steady = document["phases"]["steady"]
        assert sorted(steady) == [
            "achieved_rps", "count", "p50_ms", "p90_ms", "p999_ms",
            "p99_ms", "shed_rate",
        ]

    def test_achieved_rps_and_shed_rate(self):
        chaos = _phase("chaos", {"health": [0.01] * 90}, duration=3.0,
                       sheds=10)
        saturation = _phase("saturation", {"health": [0.01] * 100},
                            duration=1.0)
        document = build_trajectory(
            seed=7, mode="spawn", workers=4, keepalive=True,
            phases=[chaos, saturation],
        )
        assert document["requests"] == 200
        assert document["achieved_rps"] == pytest.approx(200 / 4.0)
        assert document["shed_rate"] == pytest.approx(10 / 200)
        assert document["workers"] == 4

    def test_round_trip_via_file(self, tmp_path):
        document = _document()
        path = latency_path(tmp_path, date="20260807")
        assert path.name == "LATENCY_20260807.json"
        write_trajectory(document, path)
        assert load_trajectory(path) == json.loads(json.dumps(document))

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "LATENCY_x.json"
        bad.write_text("not json {")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trajectory(bad)
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_trajectory(bad)


class TestCompareGate:
    def test_identical_runs_pass(self):
        document = _document()
        gates = compare_trajectories(document, document)
        assert gates and all(gate.passed for gate in gates)
        names = {gate.name for gate in gates}
        assert "trajectory.overall.p99" in names
        assert "trajectory.health.p99" in names

    def test_inflated_p99_fails(self):
        previous = _document(p99_seconds=0.05)
        # 50% tolerance + 25ms slack on a 50ms baseline -> 100ms limit;
        # 200ms is an unambiguous regression.
        current = _document(p99_seconds=0.20)
        gates = compare_trajectories(current, previous)
        failed = {gate.name for gate in gates if not gate.passed}
        assert "trajectory.overall.p99" in failed
        assert "trajectory.health.p99" in failed

    def test_threshold_formula(self):
        previous = _document(p99_seconds=0.10)
        current = _document(p99_seconds=0.10)
        gate = next(
            gate for gate in compare_trajectories(current, previous)
            if gate.name == "trajectory.overall.p99"
        )
        prev_p99 = previous["overall"]["p99_ms"]
        expected = prev_p99 * (1.0 + DEFAULT_P99_TOLERANCE) + DEFAULT_ABS_SLACK_MS
        assert gate.threshold == pytest.approx(expected, rel=1e-6)

    def test_improvement_always_passes(self):
        previous = _document(p99_seconds=0.20)
        current = _document(p99_seconds=0.02)
        assert all(g.passed for g in compare_trajectories(current, previous))

    def test_missing_endpoint_is_noted_not_failed(self):
        # previous measured only `health`; current measured only `lists`.
        previous = _document()
        current = _document()
        current["endpoints"]["lists"] = current["endpoints"].pop("health")
        gates = {g.name: g for g in compare_trajectories(current, previous)}
        no_baseline = gates["trajectory.lists.p99"]
        assert no_baseline.passed and "no baseline" in no_baseline.detail
        absent = gates["trajectory.health.p99"]
        assert absent.passed and "absent from current" in absent.detail

    def test_thin_samples_are_not_gated(self):
        previous = _document(count=MIN_GATED_SAMPLES - 1)
        current = _document(p99_seconds=10.0, count=MIN_GATED_SAMPLES - 1)
        gates = compare_trajectories(current, previous)
        assert all(gate.passed for gate in gates)
        assert all("not gated" in gate.detail for gate in gates)

    def test_custom_tolerance(self):
        previous = _document(p99_seconds=0.10)
        current = _document(p99_seconds=0.15)
        tight = compare_trajectories(
            current, previous, tolerance=0.0, abs_slack_ms=0.0
        )
        assert any(not gate.passed for gate in tight)
        loose = compare_trajectories(current, previous, tolerance=2.0)
        assert all(gate.passed for gate in loose)

    def test_schema_mismatch_and_bad_tolerance_raise(self):
        good = _document()
        stale = dict(good, latency_schema_version=0)
        with pytest.raises(ValueError, match="schema"):
            compare_trajectories(good, stale)
        with pytest.raises(ValueError, match="schema"):
            compare_trajectories(stale, good)
        with pytest.raises(ValueError, match="tolerance"):
            compare_trajectories(good, good, tolerance=-0.1)


class TestCompareOnlyHarness:
    """``repro loadgen --compare PREV --against CUR``: no load, pure gate."""

    def _write(self, tmp_path, name, document):
        target = tmp_path / name
        write_trajectory(document, target)
        return str(target)

    def test_identical_files_exit_ok(self, tmp_path):
        from repro.loadgen.harness import LoadgenOptions, run_loadgen

        document = _document()
        result = run_loadgen(LoadgenOptions(
            compare=self._write(tmp_path, "prev.json", document),
            against=self._write(tmp_path, "cur.json", document),
        ))
        assert result.ok
        assert result.report_path is None  # no LOADGEN doc for a compare
        assert result.report["mode"] == "compare"

    def test_regression_exits_nonzero(self, tmp_path):
        from repro.loadgen.harness import LoadgenOptions, run_loadgen

        result = run_loadgen(LoadgenOptions(
            compare=self._write(tmp_path, "prev.json",
                                _document(p99_seconds=0.05)),
            against=self._write(tmp_path, "cur.json",
                                _document(p99_seconds=0.50)),
        ))
        assert not result.ok
        assert any(not gate.passed for gate in result.gates)

    def test_malformed_invocations_raise(self, tmp_path):
        from repro.loadgen.harness import LoadgenOptions, run_loadgen

        with pytest.raises(ValueError, match="requires --compare"):
            run_loadgen(LoadgenOptions(against="cur.json"))
        with pytest.raises(ValueError, match="pure file comparison"):
            run_loadgen(LoadgenOptions(
                compare="a.json", against="b.json", spawn=True,
            ))

    def test_cli_exit_codes(self, tmp_path):
        from repro.cli import main

        prev = self._write(tmp_path, "prev.json", _document(p99_seconds=0.05))
        same = self._write(tmp_path, "same.json", _document(p99_seconds=0.05))
        worse = self._write(tmp_path, "worse.json", _document(p99_seconds=0.50))
        assert main(["loadgen", "--compare", prev, "--against", same]) == 0
        assert main(["loadgen", "--compare", prev, "--against", worse]) == 1
        # Unreadable baseline is a usage error, not a crash.
        assert main(["loadgen", "--compare", str(tmp_path / "nope.json"),
                     "--against", same]) == 2
