"""The load engine: retry/Retry-After semantics against a scripted stub
server, and full closed-loop phases against a real in-process
MetricsService (the tiny-registry pattern from the serve tests)."""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.loadgen.engine import (
    LoadEngine,
    PhaseSpec,
    TokenBucket,
    discover_catalog,
)
from repro.loadgen.personas import Catalog, Persona, PlannedRequest
from repro.runner import run_experiments
from repro.serve.server import MetricsService, ServeSettings
from repro.store import ArtifactStore
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)
_NAMES = ("lg1", "lg2", "lg3")
_CATALOG = Catalog(providers=("alexa",), days=4, experiments=_NAMES)


# ---------------------------------------------------------------------------
# Scripted stub server: each path serves its queued responses in order,
# then a default 200.  Lets the retry tests specify exact sequences like
# [503+Retry-After, 200] without a real service in the way.


class _StubHandler(BaseHTTPRequestHandler):
    script = {}  # path -> list of (status, headers, body) consumed in order
    default_body = json.dumps({"status": "alive"}).encode()

    def do_GET(self):
        queue = self.script.get(self.path)
        if queue:
            status, headers, body = queue.pop(0)
        else:
            status, headers, body = 200, {}, self.default_body
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Content-Type", "application/json")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture()
def stub_server():
    handler = type("Handler", (_StubHandler,), {"script": {}})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, handler.script
    server.shutdown()
    server.server_close()


class _OnePath(Persona):
    """Test persona: always plans the same path, accepts any JSON body."""

    kind = "probes"

    def __init__(self, persona_id, seed, catalog, path="/healthz", req_kind="health"):
        super().__init__(persona_id, seed, catalog)
        self._path = path
        self._kind = req_kind
        self.rejections = 0

    def _plan(self):
        return PlannedRequest(
            path=self._path, kind=self._kind, think_seconds=0.0,
            persona_id=self.persona_id,
        )

    def validate(self, request, body):
        return None


def _issue_once(engine, persona, **kwargs):
    import asyncio

    return asyncio.run(engine._issue(persona, persona.next_request(), **kwargs))


class TestRetrySemantics:
    def test_retry_after_is_parsed_and_honored(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [
            (503, {"Retry-After": "1"}, b'{"error": "shed"}'),
        ]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        persona = _OnePath("p0", 1, _CATALOG)
        started = time.perf_counter()
        outcome = _issue_once(engine, persona)
        elapsed = time.perf_counter() - started
        assert outcome.outcome == "ok"
        assert outcome.attempts == 2
        assert outcome.retry_after_seen == 1
        assert outcome.retry_after_missing == 0
        # Honored: the engine slept at least the server's Retry-After.
        assert elapsed >= 1.0
        assert outcome.retry_after_honored_seconds >= 1.0

    def test_shed_without_retry_after_counts_missing_and_errors(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [
            (503, {}, b'{"error": "shed"}'),
            (503, {}, b'{"error": "shed"}'),
            (503, {}, b'{"error": "shed"}'),
        ]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        persona = _OnePath("p1", 1, _CATALOG)
        outcome = _issue_once(engine, persona)
        # A 503 with no usable Retry-After is a broken shed: http_5xx.
        assert outcome.outcome == "http_5xx"
        assert outcome.retry_after_missing == 3
        assert outcome.retry_after_seen == 0

    def test_garbled_retry_after_counts_missing(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [(503, {"Retry-After": "soon"}, b"{}")]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        outcome = _issue_once(engine, _OnePath("p2", 1, _CATALOG))
        assert outcome.retry_after_missing == 1
        assert outcome.outcome == "ok"  # the retry succeeded

    def test_retry_sheds_false_records_and_moves_on(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [(503, {"Retry-After": "30"}, b"{}")]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        started = time.perf_counter()
        outcome = _issue_once(
            engine, _OnePath("p3", 1, _CATALOG), retry_sheds=False
        )
        assert outcome.outcome == "shed"
        assert outcome.attempts == 1
        assert outcome.retry_after_seen == 1
        # No 30-second sleep happened.
        assert time.perf_counter() - started < 1.0

    def test_generic_5xx_is_retried_on_policy_backoff(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [(500, {}, b'{"error": "boom"}')]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        outcome = _issue_once(engine, _OnePath("p4", 1, _CATALOG))
        assert outcome.outcome == "ok"
        assert outcome.attempts == 2

    def test_body_drift_detection(self, stub_server):
        server, script = stub_server
        pinned = json.dumps({"schema_version": 1, "x": 1}, sort_keys=True).encode()
        served = json.dumps({"schema_version": 1, "x": 2}, sort_keys=True).encode()
        script["/v1/experiments/lg1"] = [(200, {}, served)]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1,
            expectations={"/v1/experiments/lg1": pinned},
        )
        persona = _OnePath(
            "p5", 1, _CATALOG, path="/v1/experiments/lg1", req_kind="experiment"
        )
        outcome = _issue_once(engine, persona)
        assert outcome.outcome == "body_drift"
        # Drift stays fatal even when validators are off (saturation mode).
        script["/v1/experiments/lg1"] = [(200, {}, served)]
        outcome = _issue_once(engine, persona, validate_bodies=False)
        assert outcome.outcome == "body_drift"

    def test_matching_pinned_body_is_ok(self, stub_server):
        server, script = stub_server
        pinned = json.dumps({"schema_version": 1}, sort_keys=True).encode()
        script["/v1/experiments/lg1"] = [(200, {}, pinned)]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1,
            expectations={"/v1/experiments/lg1": pinned},
        )
        persona = _OnePath(
            "p6", 1, _CATALOG, path="/v1/experiments/lg1", req_kind="experiment"
        )
        assert _issue_once(engine, persona).outcome == "ok"

    def test_validation_failure_outcome(self, stub_server):
        server, script = stub_server

        class Rejecting(_OnePath):
            def validate(self, request, body):
                return "always wrong"

        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        outcome = _issue_once(engine, Rejecting("p7", 1, _CATALOG))
        assert outcome.outcome == "validation"
        assert outcome.detail == "always wrong"

    def test_4xx_is_not_retried(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [(404, {}, b'{"error": "nope"}')]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        outcome = _issue_once(engine, _OnePath("p8", 1, _CATALOG))
        assert outcome.outcome == "http_4xx"
        assert outcome.attempts == 1

    def test_connect_error_becomes_retries_exhausted(self):
        # A port nothing listens on: connect is refused immediately on
        # every attempt, so the whole retry budget burns at the
        # transport layer — that is its own outcome, not a generic
        # connect_error.
        engine = LoadEngine("127.0.0.1", 1, _CATALOG, seed=1, timeout=1.0)
        outcome = _issue_once(engine, _OnePath("p9", 1, _CATALOG))
        assert outcome.outcome == "retries_exhausted"
        assert outcome.attempts == engine.policy.max_attempts
        assert "connect_error" in outcome.detail
        assert engine.client_stats.resets == engine.policy.max_attempts

    def test_single_attempt_connect_error_keeps_its_kind(self):
        from repro.runner.retry import RetryPolicy

        engine = LoadEngine(
            "127.0.0.1", 1, _CATALOG, seed=1, timeout=1.0,
            policy=RetryPolicy(max_attempts=1, base_delay=0.01),
        )
        outcome = _issue_once(engine, _OnePath("p9", 1, _CATALOG))
        # With a one-attempt budget the failure is still "the budget
        # ran out" — but a mid-run transport blip that later succeeds
        # stays invisible; that path is covered by the stub-server
        # transport-fault suite.
        assert outcome.outcome == "retries_exhausted"
        assert outcome.attempts == 1


class TestTokenBucket:
    def test_paces_to_the_configured_rate(self):
        import asyncio

        async def drain():
            bucket = TokenBucket(rate=200.0, burst=1.0)
            started = time.perf_counter()
            for _ in range(20):
                await bucket.acquire()
            return time.perf_counter() - started

        elapsed = asyncio.run(drain())
        # 20 tokens at 200/s with burst 1 needs >= ~95ms; allow slack up.
        assert elapsed >= 0.08

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class _Conditional(_OnePath):
    """Test persona whose requests opt into conditional GETs."""

    def _plan(self):
        return PlannedRequest(
            path=self._path, kind=self._kind, think_seconds=0.0,
            persona_id=self.persona_id, conditional=True,
        )


class TestConditionalGets:
    @pytest.fixture()
    def etag_server(self):
        """Stub that answers with a fixed ETag and honors If-None-Match,
        recording every If-None-Match value it receives."""
        etag = '"deadbeef"'
        body = json.dumps({"status": "alive"}).encode()
        seen = []

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                inm = self.headers.get("If-None-Match")
                seen.append(inm)
                if inm == etag:
                    self.send_response(304)
                    self.send_header("ETag", etag)
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                self.send_response(200)
                self.send_header("ETag", etag)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, seen
        server.shutdown()
        server.server_close()

    def test_etag_is_cached_and_revalidated(self, etag_server):
        server, seen = etag_server
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        persona = _Conditional("c0", 1, _CATALOG)
        first = _issue_once(engine, persona)
        assert first.outcome == "ok"
        second = _issue_once(engine, persona)
        assert second.outcome == "not_modified"
        assert second.status == 304
        assert second.bytes_in == 0
        # First request had no cached ETag; second resent the server's.
        assert seen == [None, '"deadbeef"']

    def test_unconditional_requests_never_send_if_none_match(self, etag_server):
        server, seen = etag_server
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        persona = _OnePath("c1", 1, _CATALOG)
        for _ in range(3):
            outcome = _issue_once(engine, persona)
            assert outcome.outcome == "ok"
        assert seen == [None, None, None]

    def test_unsolicited_304_is_a_validation_failure(self, stub_server):
        server, script = stub_server
        script["/healthz"] = [(304, {}, b"")]
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        outcome = _issue_once(engine, _OnePath("c2", 1, _CATALOG))
        assert outcome.outcome == "validation"
        assert "304" in outcome.detail

    def test_availability_counts_304_as_success(self, etag_server):
        from repro.loadgen.metrics import PhaseMetrics

        server, _ = etag_server
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=1
        )
        persona = _Conditional("c3", 1, _CATALOG)
        metrics = PhaseMetrics("conditional")
        for _ in range(4):
            metrics.record(_issue_once(engine, persona))
        assert metrics.by_outcome["ok"] == 1
        assert metrics.by_outcome["not_modified"] == 3
        assert metrics.availability == 1.0
        assert metrics.error_rate == 0.0


# ---------------------------------------------------------------------------
# Integration: real MetricsService, tiny registry.


def _make_fn(name):
    def fn(ctx) -> ExperimentResult:
        return ExperimentResult(
            name=name, title=name.title(),
            data={"which": name, "n_sites": ctx.world.n_sites},
            text=f"{name} over {ctx.world.n_sites} sites",
        )

    return fn


@pytest.fixture(scope="module")
def tiny_registry():
    for name in _NAMES:
        SPECS[name] = ExperimentSpec(
            id=name, title=name.title(), fn=_make_fn(name),
            tags=("test",), required_artifacts=(),
        )
    yield list(_NAMES)
    for name in _NAMES:
        SPECS.pop(name, None)


@pytest.fixture(scope="module")
def served_cache(tiny_registry, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("loadgen-cache"))
    _payloads, manifest, _path = run_experiments(
        list(tiny_registry), _CONFIG, cache_dir=cache
    )
    assert not manifest.failures
    return cache


def _service(served_cache, tiny_registry, **overrides):
    settings = dict(
        port=0, max_inflight=4, queue_depth=4, deadline_ms=2000.0,
        breaker_threshold=2, breaker_cooldown_seconds=0.2, drain_seconds=2.0,
    )
    settings.update(overrides)
    svc = MetricsService(
        _CONFIG, ArtifactStore(served_cache),
        settings=ServeSettings(**settings), names=list(tiny_registry),
    )
    svc.warm()
    svc.start()
    return svc


class TestAgainstMetricsService:
    def test_discover_catalog(self, served_cache, tiny_registry):
        svc = _service(served_cache, tiny_registry)
        try:
            catalog = discover_catalog(svc.host, svc.port)
            assert set(catalog.experiments) == set(_NAMES)
            assert catalog.days == _CONFIG.n_days
            assert len(catalog.providers) >= 1
            assert catalog.max_k >= catalog.default_k
        finally:
            svc.drain(reason="test")

    def test_closed_loop_phase_all_ok_and_deterministic(
        self, served_cache, tiny_registry
    ):
        svc = _service(served_cache, tiny_registry)
        try:
            catalog = discover_catalog(svc.host, svc.port)
            spec = PhaseSpec(
                name="steady", mode="closed", duration_seconds=0.6,
                workers=4, mix={"dashboards": 0.5, "researchers": 0.25,
                                "probes": 0.25},
                min_requests=40,
            )
            engine = LoadEngine(svc.host, svc.port, catalog, seed=7)
            metrics = engine.run_phase(spec)
            assert metrics.requests >= 40
            assert metrics.by_outcome["validation"] == 0
            assert metrics.by_outcome["body_drift"] == 0
            assert metrics.availability == 1.0
            assert metrics.latency.count == metrics.requests
            digests = {
                d["persona"]: d["sha256"] for d in engine.schedule_digests()
            }
            # Reconstructing the same engine yields identical digests.
            twin = LoadEngine(svc.host, svc.port, catalog, seed=7)
            twin_metrics = twin.run_phase(spec)
            assert twin_metrics.requests >= 40
            twin_digests = {
                d["persona"]: d["sha256"] for d in twin.schedule_digests()
            }
            assert digests == twin_digests
        finally:
            svc.drain(reason="test")

    def test_saturation_sheds_with_dynamic_retry_after(
        self, served_cache, tiny_registry
    ):
        svc = _service(
            served_cache, tiny_registry, max_inflight=1, queue_depth=1
        )
        try:
            catalog = discover_catalog(svc.host, svc.port)
            spec = PhaseSpec(
                name="saturation", mode="closed", duration_seconds=0.8,
                workers=12, mix={"dashboards": 1.0}, think_scale=0.0,
                retry_sheds=False, validate_bodies=False,
            )
            engine = LoadEngine(svc.host, svc.port, catalog, seed=7)
            metrics = engine.run_phase(spec)
            assert metrics.sheds >= 1
            # Every shed the service issued carried a parseable
            # Retry-After (the serve-side satellite's contract).
            assert metrics.retry_after_missing == 0
            assert metrics.retry_after_seen >= metrics.sheds
        finally:
            svc.drain(reason="test")

    def test_open_loop_phase_respects_rate(self, served_cache, tiny_registry):
        svc = _service(served_cache, tiny_registry)
        try:
            catalog = discover_catalog(svc.host, svc.port)
            spec = PhaseSpec(
                name="open", mode="open", duration_seconds=0.5,
                workers=4, mix={"probes": 1.0}, rate=40.0,
            )
            engine = LoadEngine(svc.host, svc.port, catalog, seed=3)
            metrics = engine.run_phase(spec)
            # 40 rps for 0.5s, burst 4: roughly 20-ish starts, never the
            # hundreds a closed loop would manage.
            assert 5 <= metrics.requests <= 40
        finally:
            svc.drain(reason="test")
