"""The multi-process client pool: sharding, spills, merge, end to end.

The load-bearing test is seed-partition equivalence: for any worker
count, the union of the per-worker schedule digests is exactly the
single-process digest set for the same seed — sharding changes who
sends, never what is sent.
"""

from __future__ import annotations

import json
import threading
from http.server import ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.loadgen.engine import ClientStats, LoadEngine, PhaseSpec
from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.personas import Catalog
from repro.loadgen.pool import (
    WORKER_SPILL_SCHEMA_VERSION,
    WorkerSpec,
    _merge_spills,
    _read_spill,
    run_pool,
    shard_phase,
    worker_main,
)
from tests.loadgen.test_keepalive import _KeepAliveHandler

_CATALOG = Catalog(providers=("alexa", "umbrella"), days=4,
                   experiments=("lg1", "lg2", "lg3"))


@pytest.fixture()
def ka_server():
    handler = type(
        "Handler", (_KeepAliveHandler,), {"script": {}, "connection_count": 0}
    )
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, handler
    server.shutdown()
    server.server_close()


def _spec(**overrides):
    base = dict(
        name="steady", mode="closed", duration_seconds=0.5, workers=6,
        mix={"probes": 1.0}, think_scale=0.0,
    )
    base.update(overrides)
    return PhaseSpec(**base)


def _digest_map(digests):
    """persona id -> schedule sha256, dropping run-dependent fields."""
    return {d["persona"]: d["sha256"] for d in digests}


class TestShardPhase:
    def test_shard_fields_and_min_requests_division(self):
        spec = _spec(min_requests=100)
        shard = shard_phase(spec, 1, 3)
        assert (shard.shard_index, shard.shard_count) == (1, 3)
        assert shard.min_requests == 34  # ceil(100 / 3)
        assert shard.workers == spec.workers  # roster untouched
        # The original spec is untouched (replace(), not mutation).
        assert (spec.shard_index, spec.shard_count) == (0, 1)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError):
            _spec(shard_index=3, shard_count=3)
        with pytest.raises(ValueError):
            _spec(shard_count=0)


class TestSeedPartitionEquivalence:
    """Union over shards == unsharded, for every (seed, workers) tried.

    Uses the engine's persona construction directly — no network —
    since schedule digests hash a freshly reconstructed twin's plans.
    """

    @pytest.mark.parametrize("worker_count", [2, 3, 5])
    @pytest.mark.parametrize("seed", [7, 1337])
    def test_union_of_shards_equals_single_process(self, worker_count, seed):
        spec = _spec(workers=8, mix={"dashboards": 0.5, "researchers": 0.3,
                                     "probes": 0.2})
        engine = LoadEngine("127.0.0.1", 1, _CATALOG, seed=seed)
        single = _digest_map(
            p.schedule_digest() for p in engine._build_personas(spec)
        )
        union = {}
        per_worker = []
        for index in range(worker_count):
            shard = engine._build_personas(
                shard_phase(spec, index, worker_count)
            )
            digests = _digest_map(p.schedule_digest() for p in shard)
            per_worker.append(digests)
            union.update(digests)
        assert union == single
        # Shards are disjoint: no persona is driven by two workers.
        assert sum(len(d) for d in per_worker) == len(single)

    def test_different_seeds_change_digests(self):
        spec = _spec(workers=4)
        a = LoadEngine("127.0.0.1", 1, _CATALOG, seed=1)
        b = LoadEngine("127.0.0.1", 1, _CATALOG, seed=2)
        assert _digest_map(
            p.schedule_digest() for p in a._build_personas(spec)
        ) != _digest_map(
            p.schedule_digest() for p in b._build_personas(spec)
        )


def _synthetic_phase(name, latencies, duration):
    phase = PhaseMetrics(name)
    for index, latency in enumerate(latencies):
        phase.record(Outcome(
            path="/healthz", kind="health", persona_id=f"p{index}",
            outcome="ok", status=200, latency_seconds=latency,
            bytes_in=20, bytes_out=10,
        ))
    phase.duration_seconds = duration
    return phase


class TestSpillRoundTrip:
    def test_phase_spill_is_lossless(self):
        phase = _synthetic_phase("steady", [0.01, 0.02, 0.4], 1.5)
        phase.record(Outcome(
            path="/v1/lists/alexa/0?k=100", kind="lists", persona_id="d0",
            outcome="shed", status=503, latency_seconds=0.005,
            retry_after_seen=1,
        ))
        rebuilt = PhaseMetrics.from_spill(
            json.loads(json.dumps(phase.to_spill()))
        )
        assert rebuilt.to_dict() == phase.to_dict()
        assert rebuilt.latency.to_dict() == phase.latency.to_dict()
        assert (rebuilt.latency_by_kind["lists"].to_dict()
                == phase.latency_by_kind["lists"].to_dict())

    def test_spill_schema_version_enforced(self):
        payload = _synthetic_phase("s", [0.01], 1.0).to_spill()
        payload["spill_schema_version"] = 99
        with pytest.raises(ValueError):
            PhaseMetrics.from_spill(payload)

    def test_spill_rejects_unknown_outcome_kind(self):
        payload = _synthetic_phase("s", [0.01], 1.0).to_spill()
        payload["by_outcome"]["weird"] = 3
        with pytest.raises(ValueError):
            PhaseMetrics.from_spill(payload)


def _worker_payload(worker, phases, digests=(), counters=None, client=None):
    return {
        "worker_spill_schema_version": WORKER_SPILL_SCHEMA_VERSION,
        "worker": worker,
        "workers": 2,
        "phases": [phase.to_spill() for phase in phases],
        "digests": list(digests),
        "counters": dict(counters or {}),
        "client": (client or ClientStats()).to_dict(),
    }


class TestMergeSpills:
    def test_duration_is_max_counters_and_histograms_add(self):
        a = _synthetic_phase("steady", [0.01] * 10, duration=2.0)
        b = _synthetic_phase("steady", [0.10] * 30, duration=3.0)
        merged = _merge_spills(
            [
                _worker_payload(0, [a], [{"persona": "z", "sha256": "ff"}],
                                {"loadgen.phases": 1.0},
                                ClientStats(requests=10,
                                            connections_opened=2)),
                _worker_payload(1, [b], [{"persona": "a", "sha256": "aa"}],
                                {"loadgen.phases": 1.0},
                                ClientStats(requests=30,
                                            connections_opened=3)),
            ],
            workers=2, spill_dir="unused",
        )
        phase = merged.phases[0]
        assert phase.requests == 40
        # Concurrent workers: wall time is the slowest worker, so the
        # merged throughput is the fleet's, not a CPU-time sum.
        assert phase.duration_seconds == 3.0
        assert phase.throughput_rps() == pytest.approx(40 / 3.0)
        direct = _synthetic_phase("steady", [0.01] * 10 + [0.10] * 30, 0)
        assert phase.latency.to_dict() == direct.latency.to_dict()
        assert merged.counters == {"loadgen.phases": 2.0}
        assert merged.client.requests == 40
        assert merged.client.connections_opened == 5
        # Digests are re-sorted by persona id for stable reports.
        assert [d["persona"] for d in merged.schedule_digests] == ["a", "z"]


class TestReadSpill:
    def _spec_for(self, path):
        return WorkerSpec(
            worker_index=0, worker_count=1, host="h", port=1, seed=7,
            catalog=_CATALOG, phases=(_spec(),), spill_path=str(path),
        )

    def test_missing_spill_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="without writing"):
            _read_spill(self._spec_for(tmp_path / "absent.json"))

    def test_error_payload_surfaces_worker_traceback(self, tmp_path):
        path = tmp_path / "worker_0.json"
        path.write_text(json.dumps({
            "worker_spill_schema_version": WORKER_SPILL_SCHEMA_VERSION,
            "worker": 0, "workers": 1,
            "error": "Traceback: ConnectionRefusedError",
        }))
        with pytest.raises(RuntimeError, match="ConnectionRefusedError"):
            _read_spill(self._spec_for(path))

    def test_schema_mismatch_is_an_error(self, tmp_path):
        path = tmp_path / "worker_0.json"
        path.write_text(json.dumps({"worker_spill_schema_version": 0}))
        with pytest.raises(RuntimeError, match="schema"):
            _read_spill(self._spec_for(path))


class TestWorkerMain:
    def test_worker_runs_its_shard_and_spills(self, ka_server, tmp_path):
        server, _ = ka_server
        spec = WorkerSpec(
            worker_index=1, worker_count=2,
            host="127.0.0.1", port=server.server_address[1], seed=7,
            catalog=_CATALOG, phases=(_spec(duration_seconds=0.3),),
            spill_path=str(tmp_path / "worker_1.json"),
        )
        worker_main(spec)
        payload = json.loads(Path(spec.spill_path).read_text())
        assert "error" not in payload
        phase = PhaseMetrics.from_spill(payload["phases"][0])
        assert phase.requests > 0
        assert phase.by_outcome["ok"] == phase.requests
        # Only this worker's shard of the 6-persona roster ran.
        assert len(payload["digests"]) == 3
        assert payload["client"]["requests"] == phase.attempts

    def test_worker_failure_spills_error_not_silence(self, tmp_path):
        # Connection refusals are recorded outcomes, not crashes — force
        # a real crash with an unbuildable persona mix instead.
        spill_path = str(tmp_path / "worker_0.json")
        bad = WorkerSpec(
            worker_index=0, worker_count=1,
            host="127.0.0.1", port=1, seed=7,
            catalog=Catalog(providers=(), days=0, experiments=()),
            phases=(_spec(mix={"dashboards": 1.0}),),
            spill_path=spill_path,
        )
        with pytest.raises(SystemExit):
            worker_main(bad)
        payload = json.loads(Path(spill_path).read_text())
        assert "dashboard persona needs providers" in payload["error"]


class TestRunPoolEndToEnd:
    def test_two_workers_merge_and_match_single_process_digests(
        self, ka_server, tmp_path
    ):
        server, handler = ka_server
        spec = _spec(duration_seconds=0.6, workers=6)
        result = run_pool(
            "127.0.0.1", server.server_address[1], _CATALOG, 7, [spec],
            workers=2, spill_dir=str(tmp_path),
        )
        assert result.workers == 2
        phase = result.phases[0]
        assert phase.requests > 0
        assert phase.by_outcome["ok"] == phase.requests
        # Both spill files landed and merged.
        assert sorted(p.name for p in Path(tmp_path).glob("worker_*.json")) \
            == ["worker_0.json", "worker_1.json"]
        # The fleet drove the full roster: digest union == single-process.
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=7
        )
        single = _digest_map(
            p.schedule_digest() for p in engine._build_personas(spec)
        )
        assert _digest_map(result.schedule_digests) == single
        # Keep-alive stats crossed the process boundary.
        assert result.client.requests == phase.attempts
        assert result.client.connections_opened < result.client.requests

    def test_run_pool_validates_arguments(self):
        with pytest.raises(ValueError):
            run_pool("h", 1, _CATALOG, 7, [_spec()], workers=0)
        with pytest.raises(ValueError):
            run_pool("h", 1, _CATALOG, 7, [], workers=2)
