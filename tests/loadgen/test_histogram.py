"""LatencyHistogram: error bounds, merge algebra, serialization.

The quantile error-bound test is the load-bearing one: it compares
bucketed quantiles against an exact sort on random samples and holds the
relative error to the documented ``growth - 1`` bound.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.loadgen.histogram import (
    DEFAULT_GROWTH,
    DEFAULT_MIN_SECONDS,
    LatencyHistogram,
)


def _exact_quantile(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestQuantiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 0.999])
    def test_error_bound_vs_exact_sort_uniform(self, seed, q):
        rng = random.Random(seed)
        samples = [rng.uniform(0.0005, 0.8) for _ in range(4000)]
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        exact = _exact_quantile(samples, q)
        estimate = histogram.quantile(q)
        assert abs(estimate - exact) / exact <= histogram.growth - 1 + 1e-9

    @pytest.mark.parametrize("q", [0.5, 0.99])
    def test_error_bound_vs_exact_sort_lognormal(self, q):
        rng = random.Random(99)
        samples = [math.exp(rng.gauss(-4.0, 1.2)) for _ in range(4000)]
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        exact = _exact_quantile(samples, q)
        estimate = histogram.quantile(q)
        assert abs(estimate - exact) / exact <= histogram.growth - 1 + 1e-9

    def test_empty_histogram_is_all_zero(self):
        histogram = LatencyHistogram()
        assert len(histogram) == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.999) == 0.0
        assert histogram.mean == 0.0

    def test_single_sample_is_exact_at_every_quantile(self):
        histogram = LatencyHistogram()
        histogram.record(0.0421)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.0421)

    def test_min_and_max_are_exact(self):
        histogram = LatencyHistogram()
        for sample in (0.003, 0.017, 0.3):
            histogram.record(sample)
        assert histogram.quantile(0.0) == pytest.approx(0.003)
        assert histogram.quantile(1.0) == pytest.approx(0.3)

    def test_sub_resolution_samples_clamp_into_bucket_zero(self):
        histogram = LatencyHistogram()
        histogram.record(DEFAULT_MIN_SECONDS / 10)
        histogram.record(0.0)
        assert histogram.count == 2
        assert histogram.quantile(0.5) <= DEFAULT_MIN_SECONDS

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestMerge:
    def test_merge_is_associative(self):
        rng = random.Random(5)
        parts = []
        for _ in range(3):
            histogram = LatencyHistogram()
            for _ in range(500):
                histogram.record(rng.uniform(0.001, 1.0))
            parts.append(histogram)

        def fresh(h):
            return LatencyHistogram.from_dict(h.to_dict())

        left = fresh(parts[0]).merge(fresh(parts[1])).merge(fresh(parts[2]))
        right = fresh(parts[0]).merge(fresh(parts[1]).merge(fresh(parts[2])))
        assert left.to_dict() == right.to_dict()

    def test_merge_equals_recording_everything_in_one(self):
        rng = random.Random(6)
        samples = [rng.uniform(0.001, 0.5) for _ in range(1000)]
        whole = LatencyHistogram()
        half_a, half_b = LatencyHistogram(), LatencyHistogram()
        for index, sample in enumerate(samples):
            whole.record(sample)
            (half_a if index % 2 else half_b).record(sample)
        merged = half_a.merge(half_b).to_dict()
        direct = whole.to_dict()
        # sum_seconds accumulates in a different order: equal only up to
        # float addition error.  Everything else is exact.
        assert merged.pop("sum_seconds") == pytest.approx(
            direct.pop("sum_seconds")
        )
        assert merged == direct

    def test_merged_classmethod_and_empty_input(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.01)
        b.record(0.02)
        combined = LatencyHistogram.merged([a, b])
        assert combined.count == 2
        assert a.count == 1  # inputs untouched
        assert LatencyHistogram.merged([]).count == 0

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(growth=2.0))
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(min_seconds=1e-3))


class TestSerialization:
    def test_json_round_trip_is_lossless(self):
        rng = random.Random(7)
        histogram = LatencyHistogram()
        for _ in range(300):
            histogram.record(rng.uniform(0.0002, 2.0))
        payload = json.loads(json.dumps(histogram.to_dict()))
        rebuilt = LatencyHistogram.from_dict(payload)
        assert rebuilt.to_dict() == histogram.to_dict()
        for q in (0.5, 0.9, 0.99):
            assert rebuilt.quantile(q) == histogram.quantile(q)

    def test_round_trip_then_merge_matches_direct_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for sample in (0.01, 0.05, 0.2):
            a.record(sample)
        for sample in (0.002, 0.4):
            b.record(sample)
        direct = LatencyHistogram.merged([a, b]).to_dict()
        via_json = LatencyHistogram.from_dict(
            json.loads(json.dumps(a.to_dict()))
        ).merge(
            LatencyHistogram.from_dict(json.loads(json.dumps(b.to_dict())))
        ).to_dict()
        assert via_json == direct

    def test_empty_round_trip(self):
        rebuilt = LatencyHistogram.from_dict(
            json.loads(json.dumps(LatencyHistogram().to_dict()))
        )
        assert rebuilt.count == 0
        assert rebuilt.quantile(0.99) == 0.0

    def test_schema_fields_are_stable(self):
        payload = LatencyHistogram().to_dict()
        assert set(payload) == {
            "schema", "min_seconds", "growth", "count", "sum_seconds",
            "min_observed", "max_observed", "buckets",
        }
        assert payload["schema"] == 1
        assert payload["growth"] == pytest.approx(DEFAULT_GROWTH)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_seconds=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)


# ---------------------------------------------------------------------------
# Property tests: the merge algebra the multi-process pool leans on.
# Worker spills merge in whatever order the parent reads them, so the
# result must not depend on ordering or grouping.

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_latency_lists = st.lists(
    st.floats(min_value=1e-5, max_value=30.0,
              allow_nan=False, allow_infinity=False),
    max_size=50,
)


def _histogram_of(samples):
    histogram = LatencyHistogram()
    for sample in samples:
        histogram.record(sample)
    return histogram


def _comparable(histogram):
    """to_dict minus sum_seconds, whose float addition is order-sensitive."""
    payload = histogram.to_dict()
    total = payload.pop("sum_seconds")
    return payload, total


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(parts=st.lists(_latency_lists, min_size=1, max_size=6),
           data=st.data())
    def test_merge_is_order_invariant(self, parts, data):
        histograms = [_histogram_of(samples) for samples in parts]
        order = data.draw(st.permutations(range(len(histograms))))
        baseline = LatencyHistogram.merged(histograms)
        shuffled = LatencyHistogram.merged(
            [histograms[index] for index in order]
        )
        base, base_sum = _comparable(baseline)
        shuf, shuf_sum = _comparable(shuffled)
        assert shuf == base
        assert shuf_sum == pytest.approx(base_sum)
        # Buckets being identical makes every quantile identical too —
        # but assert it directly, since quantiles are what the LATENCY
        # gate actually compares.
        for q in (0.5, 0.9, 0.99, 0.999):
            assert shuffled.quantile(q) == baseline.quantile(q)
        assert shuffled.count == baseline.count == sum(map(len, parts))

    @settings(max_examples=60, deadline=None)
    @given(parts=st.lists(_latency_lists, min_size=3, max_size=3))
    def test_merge_is_associative(self, parts):
        def fresh(index):
            return _histogram_of(parts[index])

        left = fresh(0).merge(fresh(1)).merge(fresh(2))
        right = fresh(0).merge(fresh(1).merge(fresh(2)))
        left_payload, left_sum = _comparable(left)
        right_payload, right_sum = _comparable(right)
        assert left_payload == right_payload
        assert left_sum == pytest.approx(right_sum)

    @settings(max_examples=60, deadline=None)
    @given(samples=_latency_lists)
    def test_empty_histogram_is_merge_identity(self, samples):
        histogram = _histogram_of(samples)
        reference = histogram.to_dict()
        left = LatencyHistogram().merge(_histogram_of(samples))
        right = _histogram_of(samples).merge(LatencyHistogram())
        assert left.to_dict() == reference
        assert right.to_dict() == reference
