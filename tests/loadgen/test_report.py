"""Report assembly, SLO parsing/evaluation, metrics taxonomy math."""

from __future__ import annotations

import json

import pytest

from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.report import (
    LOADGEN_SCHEMA_VERSION,
    SloThresholds,
    build_report,
    loadgen_path,
    write_report,
)


def _outcome(**overrides):
    base = dict(
        path="/v1/lists/alexa/0?k=100", kind="lists", persona_id="p",
        outcome="ok", status=200, latency_seconds=0.01,
    )
    base.update(overrides)
    return Outcome(**base)


def _phase(name="steady", ok=90, shed=5, drift=0, errors=5):
    phase = PhaseMetrics(name)
    for _ in range(ok):
        phase.record(_outcome())
    for _ in range(shed):
        phase.record(_outcome(
            outcome="shed", status=503, retry_after_seen=1,
            latency_seconds=0.002,
        ))
    for _ in range(drift):
        phase.record(_outcome(
            outcome="body_drift", kind="experiment",
            path="/v1/experiments/fig1", detail="digest mismatch",
        ))
    for _ in range(errors):
        phase.record(_outcome(outcome="http_5xx", status=500))
    phase.duration_seconds = 2.0
    return phase


class TestPhaseMetrics:
    def test_rates(self):
        phase = _phase(ok=90, shed=10, errors=0)
        assert phase.shed_rate == pytest.approx(0.1)
        assert phase.availability == pytest.approx(1.0)
        assert phase.error_rate == pytest.approx(0.0)

    def test_availability_excludes_sheds_from_denominator(self):
        phase = _phase(ok=98, shed=50, errors=2)
        assert phase.availability == pytest.approx(0.98)

    def test_empty_phase_rates_are_safe(self):
        phase = PhaseMetrics("empty")
        assert phase.shed_rate == 0.0
        assert phase.availability == 1.0
        assert phase.error_rate == 0.0
        assert phase.throughput_rps() == 0.0

    def test_merge_adds_counters_and_histograms(self):
        a, b = _phase("a", ok=10, shed=2, errors=0), _phase("b", ok=5, shed=0, errors=3)
        total = PhaseMetrics("totals")
        total.merge(a).merge(b)
        assert total.requests == a.requests + b.requests
        assert total.sheds == 2
        assert total.latency.count == a.latency.count + b.latency.count
        assert total.by_status["500"] == 3

    def test_rejects_unknown_outcome(self):
        with pytest.raises(ValueError):
            PhaseMetrics("x").record(_outcome(outcome="mystery"))

    def test_failure_samples_are_bounded(self):
        phase = _phase(ok=0, shed=0, errors=50)
        assert len(phase.samples) == 10

    def test_to_dict_is_json_safe_and_complete(self):
        payload = json.loads(json.dumps(_phase().to_dict()))
        assert payload["requests"] == 100
        assert payload["rates"]["shed_rate"] == pytest.approx(0.05)
        assert "p99_ms" in payload["latency"]
        assert payload["by_kind"]["lists"] == 100


class TestSloThresholds:
    def test_parse_full_spec(self):
        slo = SloThresholds.parse(
            "p99_ms=750,shed_rate=0.25,error_rate=0.01,"
            "availability=0.99,body_drift=0"
        )
        assert slo.p99_ms == 750.0
        assert slo.shed_rate == 0.25
        assert slo.availability == 0.99
        assert slo.body_drift == 0.0
        assert slo.p999_ms is None

    def test_parse_empty_gates_nothing(self):
        slo = SloThresholds.parse(None)
        assert slo.evaluate(_phase(), _phase()) == []

    def test_parse_rejects_unknown_keys_and_garbage(self):
        with pytest.raises(ValueError):
            SloThresholds.parse("p42_ms=1")
        with pytest.raises(ValueError):
            SloThresholds.parse("p99_ms")
        with pytest.raises(ValueError):
            SloThresholds.parse("p99_ms=fast")

    def test_evaluate_passes_and_fails(self):
        steady = _phase(ok=99, shed=0, errors=1)
        slo = SloThresholds.parse("p99_ms=1000,error_rate=0.05,availability=0.9")
        assert all(gate.passed for gate in slo.evaluate(steady, steady))
        strict = SloThresholds.parse("error_rate=0.001")
        results = strict.evaluate(steady, steady)
        assert [gate.passed for gate in results] == [False]

    def test_body_drift_is_judged_run_wide(self):
        steady = _phase(drift=0)
        totals = _phase("totals", drift=2)
        slo = SloThresholds.parse("body_drift=0")
        (gate,) = slo.evaluate(steady, totals)
        assert not gate.passed
        assert gate.measured == 2.0


class TestReportDocument:
    def _report(self):
        phases = [_phase("chaos"), _phase("saturation", ok=50, shed=30, errors=0)]
        slo = SloThresholds.parse("p99_ms=1000")
        gates = slo.evaluate(phases[0], phases[0])
        return build_report(
            seed=7,
            target="http://127.0.0.1:9999",
            mode="spawn",
            phases=phases,
            gates=gates,
            schedule_digests=[{"persona": "chaos:probes:0", "sha256": "ab" * 32}],
            catalog={"providers": ["alexa"], "days": 8},
            slo=slo,
        )

    def test_schema_stable_top_level(self):
        report = self._report()
        assert report["loadgen_schema_version"] == LOADGEN_SCHEMA_VERSION
        for key in ("date", "seed", "target", "mode", "host", "catalog",
                    "phases", "totals", "gates", "slo", "determinism",
                    "tracer"):
            assert key in report, key

    def test_totals_are_the_merge_of_phases(self):
        report = self._report()
        assert report["totals"]["requests"] == sum(
            phase["requests"] for phase in report["phases"]
        )

    def test_json_round_trip_and_write(self, tmp_path):
        report = self._report()
        target = write_report(report, tmp_path / "LOADGEN_test.json")
        again = json.loads(target.read_text())
        assert again["seed"] == 7
        assert again["gates"]["passed"] is True
        # Stable serialization: writing the parsed document again is a
        # byte-identical file.
        second = write_report(again, tmp_path / "again.json")
        assert second.read_text() == target.read_text()

    def test_loadgen_path_shape(self, tmp_path):
        path = loadgen_path(tmp_path, date="20260807")
        assert path.name == "LOADGEN_20260807.json"
