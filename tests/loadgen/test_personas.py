"""Personas: determinism, schedule digests, validators, mix math."""

from __future__ import annotations

import pytest

from repro.loadgen.personas import (
    Catalog,
    DashboardPoller,
    HashStream,
    HealthProbe,
    Researcher,
    apportion,
    make_persona,
    parse_mix,
)

_CATALOG = Catalog(
    providers=("alexa", "umbrella", "majestic"),
    days=8,
    experiments=("fig1", "fig2", "tab1", "tab2"),
    default_k=100,
    max_k=1000,
)


class TestHashStream:
    def test_same_seed_same_tag_replays_identically(self):
        a = HashStream(7, "x")
        b = HashStream(7, "x")
        assert [a.unit() for _ in range(20)] == [b.unit() for _ in range(20)]

    def test_different_tags_diverge(self):
        a = HashStream(7, "x")
        b = HashStream(7, "y")
        assert [a.unit() for _ in range(8)] != [b.unit() for _ in range(8)]

    def test_randint_bounds(self):
        stream = HashStream(3, "r")
        values = [stream.randint(2, 5) for _ in range(200)]
        assert set(values) <= {2, 3, 4, 5}
        assert len(set(values)) == 4  # 200 draws cover a 4-wide range

    def test_zipf_choice_skews_to_the_head(self):
        stream = HashStream(11, "z")
        items = tuple(range(10))
        draws = [stream.zipf_choice(items) for _ in range(2000)]
        assert draws.count(0) > draws.count(9) * 2

    def test_empty_inputs_raise(self):
        stream = HashStream(1, "e")
        with pytest.raises(ValueError):
            stream.choice(())
        with pytest.raises(ValueError):
            stream.zipf_choice(())
        with pytest.raises(ValueError):
            stream.randint(5, 2)


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["dashboards", "researchers", "probes"])
    def test_same_construction_plans_same_schedule(self, kind):
        a = make_persona(kind, f"p:{kind}:0", 7, _CATALOG)
        b = make_persona(kind, f"p:{kind}:0", 7, _CATALOG)
        paths_a = [a.next_request().path for _ in range(40)]
        paths_b = [b.next_request().path for _ in range(40)]
        assert paths_a == paths_b

    def test_schedule_digest_is_volume_independent(self):
        a = make_persona("dashboards", "p:dashboards:0", 7, _CATALOG)
        b = make_persona("dashboards", "p:dashboards:0", 7, _CATALOG)
        for _ in range(3):
            a.next_request()
        for _ in range(57):
            b.next_request()
        da, db = a.schedule_digest(), b.schedule_digest()
        assert da["sha256"] == db["sha256"]
        assert da["planned"] == 3 and db["planned"] == 57

    def test_different_seeds_give_different_digests(self):
        a = make_persona("dashboards", "p:dashboards:0", 7, _CATALOG)
        b = make_persona("dashboards", "p:dashboards:0", 8, _CATALOG)
        assert a.schedule_digest()["sha256"] != b.schedule_digest()["sha256"]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_persona("gremlins", "x", 1, _CATALOG)


class TestDashboardPoller:
    def test_watchlist_is_small_and_bounded(self):
        persona = DashboardPoller("d0", 7, _CATALOG)
        assert 2 <= len(persona.watchlist) <= 4
        assert len(persona.diff_pairs) <= 2
        paths = {persona.next_request().path for _ in range(100)}
        # The whole request universe stays bounded: panel polls plus the
        # persona's few fixed diff comparisons.
        assert len(paths) <= len(persona.watchlist) + len(persona.diff_pairs)

    def test_planned_paths_are_wellformed(self):
        persona = DashboardPoller("d1", 7, _CATALOG)
        for _ in range(30):
            request = persona.next_request()
            assert request.conditional is True
            if request.kind == "lists-diff":
                assert request.path.startswith("/v1/lists/")
                assert "/diff?from=" in request.path and "&k=" in request.path
            else:
                assert request.kind == "lists"
                assert request.path.startswith("/v1/lists/")
                assert "?k=" in request.path

    def test_diff_requests_appear_in_the_mix(self):
        persona = DashboardPoller("d5", 7, _CATALOG)
        kinds = {persona.next_request().kind for _ in range(100)}
        assert kinds == {"lists", "lists-diff"}

    @staticmethod
    def _panel_request(persona):
        for _ in range(50):
            request = persona.next_request()
            if request.kind == "lists":
                return request
        raise AssertionError("persona never planned a panel poll")

    def test_validate_accepts_consistent_body(self):
        persona = DashboardPoller("d2", 7, _CATALOG)
        request = self._panel_request(persona)
        provider, day = request.path.split("?")[0].split("/")[3:5]
        k = int(request.path.split("?k=")[1])
        body = {
            "provider": provider, "day": int(day), "k": k,
            "count": 2, "names": ["a.com", "b.com"],
        }
        assert persona.validate(request, body) is None

    def test_validate_rejects_count_mismatch_and_overflow(self):
        persona = DashboardPoller("d3", 7, _CATALOG)
        request = self._panel_request(persona)
        provider, day = request.path.split("?")[0].split("/")[3:5]
        k = int(request.path.split("?k=")[1])
        body = {
            "provider": provider, "day": int(day), "k": k,
            "count": 3, "names": ["a.com"],
        }
        assert "count" in persona.validate(request, body)
        body = {
            "provider": provider, "day": int(day), "k": k,
            "count": k + 1, "names": ["x"] * (k + 1),
        }
        assert "exceeds" in persona.validate(request, body)

    def test_validate_rejects_wrong_provider(self):
        persona = DashboardPoller("d4", 7, _CATALOG)
        request = self._panel_request(persona)
        k = int(request.path.split("?k=")[1])
        body = {
            "provider": "nonsense", "day": 0, "k": k,
            "count": 0, "names": [],
        }
        assert persona.validate(request, body) is not None


class TestResearcher:
    def test_pages_every_experiment(self):
        persona = Researcher("r0", 7, _CATALOG)
        seen = set()
        for _ in range(60):
            request = persona.next_request()
            if request.kind == "experiment":
                seen.add(request.path.rsplit("/", 1)[1])
        assert seen == set(_CATALOG.experiments)

    def test_occasionally_rereads_the_index(self):
        persona = Researcher("r1", 7, _CATALOG)
        kinds = [persona.next_request().kind for _ in range(120)]
        assert "experiments-index" in kinds
        assert kinds.count("experiments-index") < len(kinds) // 3

    def test_validate_requires_schema_version(self):
        persona = Researcher("r2", 7, _CATALOG)
        request = next(
            r for r in iter(persona.next_request, None)
            if r.kind == "experiment"
        )
        assert persona.validate(request, {"schema_version": 1}) is None
        assert persona.validate(request, {}) is not None

    def test_think_times_are_slower_than_dashboards(self):
        researcher = Researcher("r3", 7, _CATALOG)
        dashboard = DashboardPoller("d9", 7, _CATALOG)
        r_mean = sum(researcher.next_request().think_seconds for _ in range(50)) / 50
        d_mean = sum(dashboard.next_request().think_seconds for _ in range(50)) / 50
        assert r_mean > d_mean * 2


class TestHealthProbe:
    def test_rotates_all_three_endpoints(self):
        persona = HealthProbe("h0", 7, _CATALOG)
        paths = {persona.next_request().path for _ in range(9)}
        assert paths == {"/healthz", "/readyz", "/metricz"}

    def test_validate_health_and_metricz(self):
        persona = HealthProbe("h1", 7, _CATALOG)
        request = next(
            r for r in iter(persona.next_request, None) if r.kind == "health"
        )
        assert persona.validate(request, {"status": "alive"}) is None
        assert persona.validate(request, {"status": "draining"}) is not None
        metricz = next(
            r for r in iter(persona.next_request, None) if r.kind == "metricz"
        )
        assert persona.validate(
            metricz, {"requests": {}, "uptime_seconds": 1.0}
        ) is None
        assert persona.validate(metricz, {"nope": 1}) is not None


class TestMix:
    def test_default_mix(self):
        mix = parse_mix(None)
        assert mix == {"dashboards": 0.7, "researchers": 0.2, "probes": 0.1}

    def test_parse_normalizes(self):
        mix = parse_mix("dashboards=2,researchers=1,probes=1")
        assert mix["dashboards"] == pytest.approx(0.5)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_parse_rejects_bad_specs(self):
        for bad in ("dashboards", "gremlins=1", "dashboards=x", "dashboards=-1"):
            with pytest.raises(ValueError):
                parse_mix(bad)
        with pytest.raises(ValueError):
            parse_mix("dashboards=0,researchers=0,probes=0")

    def test_apportion_sums_exactly(self):
        for workers in (1, 5, 6, 7, 48):
            counts = apportion(workers, parse_mix(None))
            assert sum(counts.values()) == workers

    def test_apportion_respects_weights(self):
        counts = apportion(10, parse_mix(None))
        assert counts["dashboards"] == 7
        assert counts["researchers"] == 2
        assert counts["probes"] == 1
