"""Spawn helpers: command building, port picking, pinning, fault plans.

The full child lifecycle (fork, warm, load, drain) is exercised by
``repro loadgen --spawn --quick`` in CI's loadgen-smoke job; these tests
cover the pure helpers it is built from.
"""

from __future__ import annotations

import json
import socket
import sys

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.faults.plan import FaultPlan
from repro.loadgen.spawn import (
    ensure_results,
    free_port,
    pin_expectations,
    serve_command,
    write_fault_plan,
)
from repro.store import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)


def test_free_port_is_bindable():
    port = free_port()
    assert 1 <= port <= 65535
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind(("127.0.0.1", port))
    finally:
        probe.close()


def test_serve_command_shape(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text("{}")
    command = serve_command(
        port=12345, cache_dir="/tmp/cache", quick=True,
        fault_plan=plan, access_log=tmp_path / "access.log",
    )
    assert command[0] == sys.executable
    assert command[1:4] == ["-m", "repro.cli", "serve"]
    assert "--port" in command and "12345" in command
    assert "--quick" in command
    assert "--fault-plan" in command and str(plan) in command
    assert "--access-log" in command


def test_serve_command_omits_optional_flags():
    command = serve_command(port=1, cache_dir="c", quick=False)
    assert "--quick" not in command
    assert "--fault-plan" not in command
    assert "--access-log" not in command


def test_write_fault_plan_round_trips(tmp_path):
    path = write_fault_plan(7, tmp_path)
    plan = FaultPlan.from_json(path.read_text())
    assert plan.seed == 7
    sites = [rule.site for rule in plan.rules]
    assert "store.read.slow" in sites
    assert "store.read.corrupt" in sites
    assert "serve.request.error" in sites
    # The chaos defaults: one clean warmup read per key, bounded error
    # probability on the lists surface.
    store_rules = [r for r in plan.rules if r.site.startswith("store.")]
    assert all(rule.min_occurrence == 1 for rule in store_rules)
    (error_rule,) = [r for r in plan.rules if r.site == "serve.request.error"]
    assert 0.0 < error_rule.probability < 1.0


def test_ensure_results_and_pin_expectations(tmp_path):
    name = "spawnpin1"
    SPECS[name] = ExperimentSpec(
        id=name, title="Spawn Pin", tags=("test",), required_artifacts=(),
        fn=lambda ctx: ExperimentResult(
            name=name, title="Spawn Pin",
            data={"n_sites": ctx.world.n_sites}, text="pin",
        ),
    )
    try:
        cache = str(tmp_path / "cache")
        failures = ensure_results([name], _CONFIG, cache)
        assert failures == []
        # Idempotent: a second call finds the blob and runs nothing.
        assert ensure_results([name], _CONFIG, cache) == []

        expectations = pin_expectations([name], _CONFIG, cache)
        path = f"/v1/experiments/{name}"
        assert set(expectations) == {path}
        # The pin is exactly the server's wire encoding of the blob.
        blob = ArtifactStore(cache).get_json(
            config_key(_CONFIG), f"results/{name}"
        )
        assert expectations[path] == json.dumps(
            blob, sort_keys=True
        ).encode("utf-8")
        # Unknown names are skipped, not errors.
        assert pin_expectations(["ghost"], _CONFIG, cache) == {}
    finally:
        SPECS.pop(name, None)
