"""The chaos-data driver pieces: script, persona validation, plan file."""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import DATA_SITES, FaultPlan
from repro.loadgen.datachaos import (
    DATA_PROVIDERS,
    DataScriptPersona,
    build_data_script,
    write_data_plan,
)
from repro.loadgen.personas import Catalog, PlannedRequest, validate_data_health

_CATALOG = Catalog(
    providers=("alexa", "umbrella", "majestic", "tranco"),
    days=8, experiments=("dc1",),
)


def _request(path: str, kind: str) -> PlannedRequest:
    return PlannedRequest(path=path, kind=kind, think_seconds=0.0,
                         persona_id="t", conditional=False)


def _health(**overrides):
    health = {
        "status": "clean", "degraded": False, "staleness": 0,
        "reasons": [], "repairs": [], "injected": None,
    }
    health.update(overrides)
    return health


class TestBuildDataScript:
    def test_is_deterministic(self):
        assert build_data_script(_CATALOG, 60) == build_data_script(_CATALOG, 60)

    def test_opens_by_fully_resolving_every_degraded_provider(self):
        script = build_data_script(_CATALOG, 60)
        opening = [r.path for r in script[: len(DATA_PROVIDERS)]]
        for provider in DATA_PROVIDERS:
            assert f"/v1/lists/{provider}/{_CATALOG.days - 1}?k=50" in opening

    def test_shape_and_coverage(self):
        script = build_data_script(_CATALOG, 60)
        assert len(script) == 60
        kinds = {r.kind for r in script}
        assert kinds == {"lists", "lists-stability", "lists-index", "health"}
        for provider in DATA_PROVIDERS:
            assert any(f"/v1/lists/{provider}/stability" in r.path
                       for r in script)
        assert all(not r.conditional for r in script)

    def test_degraded_providers_fall_back_to_catalog(self):
        catalog = Catalog(providers=("tranco",), days=4, experiments=())
        script = build_data_script(catalog, 20)
        assert all("/tranco" in r.path or r.kind in ("lists-index", "health")
                   for r in script)


class TestValidateDataHealth:
    def test_well_formed_block_passes(self):
        assert validate_data_health(_health()) is None
        assert validate_data_health(_health(
            status="carried_forward", degraded=True, staleness=2,
            reasons=["missing_day"],
        )) is None

    @pytest.mark.parametrize("mutant,needle", [
        ({"status": "sideways"}, "status"),
        ({"degraded": "yes"}, "degraded"),
        ({"staleness": -1}, "staleness"),
        ({"staleness": True}, "staleness"),
        ({"reasons": None}, "reasons"),
        ({"status": "repaired"}, "degraded"),
    ])
    def test_malformed_blocks_named(self, mutant, needle):
        error = validate_data_health(_health(**mutant))
        assert error is not None and needle in error

    def test_degraded_clean_contradiction_rejected(self):
        assert validate_data_health(_health(degraded=True)) is not None

    def test_stale_statuses_require_staleness(self):
        broken = _health(status="retired", degraded=True, staleness=0)
        assert "staleness" in validate_data_health(broken)

    def test_non_object_rejected(self):
        assert validate_data_health("fine") is not None


class TestDataScriptPersona:
    def _persona(self):
        return DataScriptPersona("t", 7, _CATALOG)

    def test_list_body_must_carry_health(self):
        persona = self._persona()
        error = persona.validate(
            _request("/v1/lists/alexa/3?k=10", "lists"),
            {"provider": "alexa", "names": []},
        )
        assert error is not None and "data_health" in error

    def test_counts_degraded_bodies(self):
        persona = self._persona()
        ok = persona.validate(
            _request("/v1/lists/alexa/3?k=10", "lists"),
            {"data_health": _health(status="repaired", degraded=True)},
        )
        assert ok is None
        persona.validate(
            _request("/v1/lists/alexa/4?k=10", "lists"),
            {"data_health": _health()},
        )
        assert persona.health_bodies == 2
        assert persona.degraded_seen == 1
        assert persona.statuses == {"repaired": 1, "clean": 1}

    def test_stability_body_must_summarize(self):
        persona = self._persona()
        good = {"data_health": {"degraded_days": 2, "by_status": {"repaired": 2}}}
        assert persona.validate(
            _request("/v1/lists/alexa/stability?k=50", "lists-stability"), good
        ) is None
        assert persona.validate(
            _request("/v1/lists/alexa/stability?k=50", "lists-stability"), {}
        ) is not None

    def test_index_must_admit_chaos(self):
        persona = self._persona()
        assert persona.validate(
            _request("/v1/lists", "lists-index"), {"data_chaos": True}
        ) is None
        assert persona.validate(
            _request("/v1/lists", "lists-index"), {"providers": []}
        ) is not None


class TestWriteDataPlan:
    def test_written_plan_loads_and_arms_every_data_site(self, tmp_path):
        path = write_data_plan(11, tmp_path, 8)
        plan = FaultPlan.from_dict(json.loads(path.read_text()))
        assert {rule.site for rule in plan.rules} == set(DATA_SITES)
        assert plan.seed == 11

    def test_same_seed_same_bytes(self, tmp_path):
        first = write_data_plan(11, tmp_path, 8).read_text()
        second = write_data_plan(11, tmp_path, 8).read_text()
        assert first == second
