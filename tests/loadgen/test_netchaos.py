"""The chaos-net driver script: pure, deterministic, catalog-shaped."""

from __future__ import annotations

from repro.loadgen.netchaos import ScriptPersona, build_script
from repro.loadgen.personas import Catalog

_CATALOG = Catalog(
    providers=("alexa", "umbrella"), days=4, experiments=("nc1", "nc2")
)


class TestBuildScript:
    def test_is_deterministic(self):
        a = build_script(_CATALOG, 60)
        b = build_script(_CATALOG, 60)
        assert a == b

    def test_length_and_shape(self):
        script = build_script(_CATALOG, 60)
        assert len(script) == 60
        kinds = {r.kind for r in script}
        assert kinds == {"experiment", "lists", "lists-index", "health"}
        assert all(not r.conditional for r in script)
        assert all(r.think_seconds == 0.0 for r in script)

    def test_covers_experiments_and_providers(self):
        script = build_script(_CATALOG, 60)
        paths = [r.path for r in script]
        for name in _CATALOG.experiments:
            assert any(p == f"/v1/experiments/{name}" for p in paths)
        for provider in _CATALOG.providers:
            assert any(f"/v1/lists/{provider}/" in p for p in paths)

    def test_prefix_stability(self):
        # A longer script extends, never reshuffles, a shorter one —
        # the property that keeps --requests overrides comparable.
        short = build_script(_CATALOG, 30)
        long = build_script(_CATALOG, 90)
        assert long[:30] == short


class TestScriptPersona:
    def _persona(self):
        return ScriptPersona("netchaos-driver", 7, _CATALOG)

    def test_accepts_json_objects(self):
        assert self._persona().validate(None, {"status": "alive"}) is None

    def test_rejects_non_objects(self):
        persona = self._persona()
        assert persona.validate(None, [1, 2]) is not None
        assert persona.validate(None, "alive") is not None
