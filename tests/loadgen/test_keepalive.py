"""Keep-alive protocol conformance for the loadgen connection pool.

Three contracts, each against a scripted server the test controls:

* persistence — sequential requests ride one socket, so the socket
  count stays far below the request count;
* server-initiated close — EOF on a reused socket between requests is
  a transparent reconnect (a stale retry), never a failed sample;
* ``Connection: close`` — a response carrying the header retires its
  socket, and the next request opens a fresh one.

Plus the engine-level integration: a closed-loop phase with keep-alive
on reuses connections, and with keep-alive off it reverts to the
one-socket-per-request PR 6 behavior.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.loadgen.engine import (
    ClientStats,
    ConnectionPool,
    LoadEngine,
    PhaseSpec,
)
from repro.loadgen.personas import Catalog

_CATALOG = Catalog(providers=("alexa",), days=4, experiments=("lg1",))

#: Per-path default bodies that satisfy the HealthProbe validators, so
#: engine-level phases run clean against the stub.
_BODIES = {
    "/healthz": {"status": "alive"},
    "/readyz": {"status": "ready"},
    "/metricz": {"requests": 1, "uptime_seconds": 1.0},
}


class _KeepAliveHandler(BaseHTTPRequestHandler):
    """HTTP/1.1 stub: scripted responses first, then per-path defaults.

    ``connection_count`` (on the per-test subclass) counts TCP
    connections, not requests — the keep-alive assertions compare it
    against how many requests rode those connections.
    """

    protocol_version = "HTTP/1.1"
    connection_count = 0
    script = {}  # path -> list of (status, headers, body) consumed in order

    def setup(self):
        super().setup()
        type(self).connection_count += 1

    def do_GET(self):
        path = self.path.split("?", 1)[0]
        queue = self.script.get(path)
        if queue:
            status, headers, body = queue.pop(0)
        else:
            payload = _BODIES.get(path, {"status": "alive"})
            status, headers, body = 200, {}, json.dumps(payload).encode()
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Content-Type", "application/json")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture()
def ka_server():
    handler = type(
        "Handler", (_KeepAliveHandler,), {"script": {}, "connection_count": 0}
    )
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, handler
    server.shutdown()
    server.server_close()


def _drive_pool(host, port, paths, **pool_kwargs):
    """Run one pool over ``paths`` sequentially inside a single loop."""
    stats = ClientStats()

    async def go():
        pool = ConnectionPool(host, port, stats=stats, **pool_kwargs)
        try:
            return [await pool.request(path) for path in paths]
        finally:
            pool.close()

    return asyncio.run(go()), stats


def _read_request(conn):
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            raise OSError("client went away mid-request")
        data += chunk
    return data


class _RudeServer(threading.Thread):
    """Answers each request with a keep-alive-looking HTTP/1.1 200 —
    Content-Length framing, no ``Connection`` header — then slams the
    socket shut.  Every pooled reuse attempt therefore hits EOF before
    the first response byte: the exact stale-socket case."""

    def __init__(self, respond_first=True):
        super().__init__(daemon=True)
        self.respond_first = respond_first
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.sock.settimeout(0.1)
        self.port = self.sock.getsockname()[1]
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            with conn:
                if not self.respond_first:
                    continue  # accept-then-close: fresh-socket EOF
                try:
                    _read_request(conn)
                    body = json.dumps({"status": "alive"}).encode()
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() +
                        b"\r\n\r\n" + body
                    )
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.join(timeout=2.0)
        self.sock.close()


class _VersionedServer(threading.Thread):
    """Serves every request on a connection with the given HTTP version
    in the status line, and never closes first — so any retirement the
    client performs is the client's own protocol decision."""

    def __init__(self, version=b"HTTP/1.1"):
        super().__init__(daemon=True)
        self.version = version
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.sock.settimeout(0.1)
        self.port = self.sock.getsockname()[1]
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            with conn:
                conn.settimeout(1.0)
                try:
                    while not self._halt.is_set():
                        _read_request(conn)
                        body = json.dumps({"status": "alive"}).encode()
                        conn.sendall(
                            self.version + b" 200 OK\r\n"
                            b"Content-Type: application/json\r\n"
                            b"Content-Length: " + str(len(body)).encode() +
                            b"\r\n\r\n" + body
                        )
                except OSError:
                    pass

    def stop(self):
        self._halt.set()
        self.join(timeout=2.0)
        self.sock.close()


class TestConnectionPersistence:
    def test_socket_count_far_below_request_count(self, ka_server):
        server, handler = ka_server
        requests = 40
        responses, stats = _drive_pool(
            "127.0.0.1", server.server_address[1], ["/healthz"] * requests
        )
        assert all(r.status == 200 for r in responses)
        assert stats.requests == requests
        assert stats.connections_opened == 1
        assert stats.requests_on_reused == requests - 1
        assert handler.connection_count == 1

    def test_responses_still_parse_correctly_when_reused(self, ka_server):
        server, _ = ka_server
        responses, _ = _drive_pool(
            "127.0.0.1", server.server_address[1],
            ["/healthz", "/readyz", "/metricz"],
        )
        assert json.loads(responses[0].body) == {"status": "alive"}
        assert json.loads(responses[1].body) == {"status": "ready"}
        assert json.loads(responses[2].body)["requests"] == 1


class TestConnectionCloseHeader:
    def test_close_header_retires_the_socket(self, ka_server):
        server, handler = ka_server
        body = json.dumps({"status": "alive"}).encode()
        handler.script["/healthz"] = [
            (200, {"Connection": "close"}, body),
        ]
        responses, stats = _drive_pool(
            "127.0.0.1", server.server_address[1],
            ["/healthz", "/healthz", "/healthz"],
        )
        assert [r.status for r in responses] == [200, 200, 200]
        # Request 1 retired its socket; 2 opened fresh; 3 reused 2's.
        assert stats.connections_retired == 1
        assert stats.connections_opened == 2
        assert stats.requests_on_reused == 1
        assert stats.stale_retries == 0
        assert handler.connection_count == 2

    def test_http_10_response_is_never_reused(self):
        # An HTTP/1.0 status line means no implicit keep-alive, even
        # when the server leaves the socket open: the pool must retire
        # it and open a fresh connection for the next request.
        server = _VersionedServer(b"HTTP/1.0")
        server.start()
        try:
            responses, stats = _drive_pool(
                "127.0.0.1", server.port, ["/healthz", "/healthz"]
            )
            assert [r.status for r in responses] == [200, 200]
            assert stats.connections_opened == 2
            assert stats.connections_retired == 2
            assert stats.requests_on_reused == 0
        finally:
            server.stop()


class TestServerInitiatedClose:
    def test_stale_socket_reconnects_transparently(self):
        server = _RudeServer()
        server.start()
        try:
            responses, stats = _drive_pool(
                "127.0.0.1", server.port, ["/healthz"] * 3
            )
            # Every request succeeded even though the server closed the
            # socket after each response: stale reuse attempts became
            # fresh connections, not failed samples.
            assert [r.status for r in responses] == [200, 200, 200]
            assert stats.requests == 3
            assert stats.connections_opened == 3
            assert stats.stale_retries == 2
            assert stats.requests_on_reused == 0
        finally:
            server.stop()

    def test_eof_on_fresh_socket_is_a_real_error(self):
        server = _RudeServer(respond_first=False)
        server.start()
        try:
            with pytest.raises(OSError):
                _drive_pool("127.0.0.1", server.port, ["/healthz"])
        finally:
            server.stop()


class TestEngineKeepAlive:
    def _phase(self):
        return PhaseSpec(
            name="ka", mode="closed", duration_seconds=0.6, workers=4,
            mix={"probes": 1.0}, think_scale=0.0,
        )

    def test_phase_reuses_connections(self, ka_server):
        server, handler = ka_server
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=3
        )
        metrics = engine.run_phase(self._phase())
        assert metrics.requests > 20
        assert metrics.by_outcome["ok"] == metrics.requests
        stats = engine.client_stats
        assert stats.requests == metrics.attempts
        # The whole phase rode (about) one socket per session.
        assert stats.connections_opened <= 8
        assert stats.requests_on_reused >= metrics.requests - 8
        assert handler.connection_count == stats.connections_opened

    def test_no_keepalive_opens_a_socket_per_request(self, ka_server):
        server, handler = ka_server
        engine = LoadEngine(
            "127.0.0.1", server.server_address[1], _CATALOG, seed=3,
            keepalive=False,
        )
        metrics = engine.run_phase(self._phase())
        assert metrics.requests > 0
        # The pool never ran: its stats stayed zero and the server saw
        # at least one TCP connection per request.
        assert engine.client_stats.requests == 0
        assert handler.connection_count >= metrics.requests
