"""``repro bench`` smoke tests: BENCH JSON schema, metric-key stability
across runs, the cold/warm store split, and the CLI verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    QUICK_CONFIG,
    bench_path,
    run_bench,
    write_bench,
)
from repro.worldgen.config import WorldConfig

#: Tiny world so the double (cold + warm) pass stays test-cheap.
_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)
#: One engine-walking experiment (fig2 exercises the full artifact chain
#: including CDN metrics) and one store-free one.
_NAMES = ["fig2", "survey"]

_TOP_KEYS = {
    "bench_schema_version", "date", "quick", "jobs", "config", "host",
    "experiments", "stages", "totals",
}
_EXPERIMENT_KEYS = {
    "ok", "cold_seconds", "warm_seconds", "requests_simulated",
    "requests_per_sec", "cache_cold", "cache_warm",
}


@pytest.fixture(scope="module")
def payload():
    return run_bench(_CONFIG, names=_NAMES, jobs=1)


class TestBenchDocument:
    def test_schema(self, payload):
        assert set(payload) == _TOP_KEYS
        assert payload["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["jobs"] == 1 and payload["quick"] is False
        assert len(payload["date"]) == 8 and payload["date"].isdigit()
        assert payload["config"]["n_sites"] == _CONFIG.n_sites
        assert set(payload["host"]) == {"python", "platform", "cpus"}
        assert set(payload["experiments"]) == set(_NAMES)
        for row in payload["experiments"].values():
            assert set(row) == _EXPERIMENT_KEYS
            assert row["ok"]
        assert set(payload["stages"]) == {"cold", "warm"}
        json.dumps(payload)  # the whole document is JSON-safe

    def test_per_stage_walls_and_requests(self, payload):
        # fig2 walks world -> traffic -> CDN metrics -> providers, so the
        # cold pass must record those stages and the simulated request
        # volume the CDN engine counted.
        cold_stages = payload["stages"]["cold"]
        assert "context/world" in cold_stages
        assert "cdn/compute-day" in cold_stages
        assert all(seconds >= 0.0 for seconds in cold_stages.values())
        row = payload["experiments"]["fig2"]
        assert row["requests_simulated"] > 0
        assert row["requests_per_sec"] > 0
        # survey never touches the CDN engine.
        assert payload["experiments"]["survey"]["requests_simulated"] == 0

    def test_cold_warm_split(self, payload):
        # The cold pass builds into a fresh store; the warm pass hydrates.
        assert payload["totals"]["warm_store_hits"] > 0
        cold = payload["experiments"]["fig2"]["cache_cold"]
        warm = payload["experiments"]["fig2"]["cache_warm"]
        assert cold.get("world", {}).get("puts", 0) >= 1
        assert warm.get("world", {}).get("hits", 0) >= 1

    def test_metric_keys_identical_across_runs(self, payload):
        again = run_bench(_CONFIG, names=_NAMES, jobs=1)
        assert set(again) == set(payload)
        for name in _NAMES:
            assert set(again["experiments"][name]) == set(
                payload["experiments"][name]
            )
            # Simulation volume is deterministic; only timings may differ.
            assert (
                again["experiments"][name]["requests_simulated"]
                == payload["experiments"][name]["requests_simulated"]
            )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_bench(_CONFIG, names=["nope"])


class TestBenchIO:
    def test_bench_path_shape(self):
        assert bench_path("/tmp", date="20260806").name == "BENCH_20260806.json"

    def test_write_round_trips(self, payload, tmp_path):
        target = write_bench(payload, tmp_path / "deep" / "BENCH_test.json")
        assert json.loads(target.read_text()) == json.loads(json.dumps(payload))


class TestBenchCli:
    def test_quick_smoke_writes_bench_json(self, capsys, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        code = main([
            "bench", "--quick", "--sites", "400", "--days", "4", "--seed", "11",
            "--experiment", "survey", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["quick"] is True
        assert document["config"]["n_sites"] == 400, "--sites overrides --quick"
        assert set(document["experiments"]) == {"survey"}
        printed = capsys.readouterr().out
        assert "cold" in printed and "warm" in printed and str(out) in printed

    def test_quick_defaults_to_golden_scale(self):
        args = ["bench", "--quick", "--experiment", "nope"]
        assert main(args) == 2  # unknown experiment is a usage error
        assert QUICK_CONFIG.n_sites == 2500 and QUICK_CONFIG.n_days == 8
