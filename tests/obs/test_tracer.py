"""Tracer tests: span nesting and ordering, counter aggregation, the
zero-overhead disabled path, serialization, rendering, and stage totals."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Span,
    Tracer,
    chrome_trace_events,
    count,
    current_tracer,
    merge_stage_totals,
    peak_rss_bytes,
    render_span_tree,
    span,
    stage_totals,
    tracing,
)


class TestSpanNesting:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer("root")
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        root = tracer.finish()
        assert root.name == "root"
        (outer,) = root.children
        assert [child.name for child in outer.children] == ["inner-a", "inner-b"]

    def test_sibling_order_preserved(self):
        tracer = Tracer()
        for name in ("first", "second", "third"):
            with tracer.span(name):
                pass
        assert [c.name for c in tracer.root.children] == ["first", "second", "third"]

    def test_span_timing_and_rss(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10000))
        (work,) = tracer.root.children
        assert work.seconds >= 0.0
        assert work.start >= 0.0
        # resource-based RSS is available on Linux/macOS CI.
        assert work.peak_rss_bytes == peak_rss_bytes() or work.peak_rss_bytes >= 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.current is tracer.root
        assert tracer.root.children[0].seconds >= 0.0

    def test_finish_idempotent(self):
        tracer = Tracer()
        first = tracer.finish().seconds
        assert tracer.finish().seconds == first


class TestCounters:
    def test_counts_attach_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.count("rows", 5)
            with tracer.span("inner"):
                tracer.count("rows", 2)
        (outer,) = tracer.root.children
        assert outer.counters == {"rows": 5.0}
        assert outer.children[0].counters == {"rows": 2.0}

    def test_total_counters_aggregate_descendants(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.count("rows", 5)
            with tracer.span("b"):
                tracer.count("rows", 2)
                tracer.count("hits")
        assert tracer.root.total_counters() == {"rows": 7.0, "hits": 1.0}

    def test_merged_children_sum_repeats(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("day"):
                tracer.count("rows", 10)
        (merged,) = tracer.root.merged_children()
        assert merged.calls == 3
        assert merged.counters == {"rows": 30.0}


class TestAmbientHelpers:
    def test_disabled_by_default(self):
        assert current_tracer() is None
        with span("ignored"):
            count("ignored", 5)  # must be a silent no-op

    def test_tracing_activates_and_restores(self):
        tracer = Tracer("t")
        with tracing(tracer):
            assert current_tracer() is tracer
            with span("stage"):
                count("n", 2)
        assert current_tracer() is None
        assert tracer.root.children[0].counters == {"n": 2.0}

    def test_tracing_nests(self):
        outer, inner = Tracer("outer"), Tracer("inner")
        with tracing(outer):
            with tracing(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_tracing_none_disables(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracing(None):
                assert current_tracer() is None
                with span("lost"):
                    pass
            assert current_tracer() is tracer
        assert tracer.root.children == []


class TestSerialization:
    def _sample(self) -> Tracer:
        tracer = Tracer("exp")
        with tracer.span("context/world"):
            tracer.count("world.sites", 100)
        with tracer.span("traffic/compute-day"):
            tracer.count("traffic.rows", 100)
        tracer.finish()
        return tracer

    def test_round_trip(self):
        tracer = self._sample()
        rebuilt = Span.from_dict(json.loads(json.dumps(tracer.to_dict())))
        assert rebuilt.to_dict() == tracer.to_dict()
        assert [c.name for c in rebuilt.children] == [
            "context/world", "traffic/compute-day",
        ]

    def test_render_tree_shows_counters_and_calls(self):
        tracer = Tracer("exp")
        for _ in range(2):
            with tracer.span("day"):
                tracer.count("rows", 3)
        text = render_span_tree(tracer.finish())
        assert "exp" in text and "day x2" in text and "rows=6" in text

    def test_chrome_trace_events(self):
        events = chrome_trace_events(self._sample().finish(), pid=1, tid=7)
        assert all(e["ph"] == "X" and e["pid"] == 1 and e["tid"] == 7 for e in events)
        names = [e["name"] for e in events]
        assert names == ["exp", "context/world", "traffic/compute-day"]
        world = events[1]
        assert world["args"] == {"world.sites": 100.0}
        json.dumps({"traceEvents": events})  # valid trace-event JSON


class TestStageTotals:
    def test_stage_totals_exclude_root_and_sum_repeats(self):
        tracer = Tracer("exp")
        for _ in range(2):
            with tracer.span("stage"):
                pass
        totals = stage_totals(tracer.finish())
        assert set(totals) == {"stage"}
        assert totals["stage"] >= 0.0

    def test_merge_across_trees(self):
        trees = []
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("stage"):
                pass
            trees.append(tracer.finish())
        merged = merge_stage_totals(trees)
        assert merged["stage"] == pytest.approx(
            sum(stage_totals(t)["stage"] for t in trees)
        )
