"""Tests for the temporal modulation."""

import numpy as np
import pytest

from repro.traffic.calendar import TrafficCalendar
from repro.worldgen.config import WorldConfig


@pytest.fixture()
def calendar() -> TrafficCalendar:
    # start_weekday=1 -> day 0 is Tuesday, days 4-5 are the weekend.
    return TrafficCalendar(WorldConfig(start_weekday=1))


class TestWeekStructure:
    def test_weekend_detection(self, calendar):
        assert not calendar.is_weekend(0)
        assert calendar.is_weekend(4)
        assert calendar.is_weekend(5)
        assert not calendar.is_weekend(6)

    def test_weekday_names(self, calendar):
        assert calendar.weekday_name(0) == "Tue"
        assert calendar.weekday_name(4) == "Sat"
        assert calendar.weekday_name(6) == "Mon"

    def test_enterprise_quiet_on_weekends(self, calendar):
        assert calendar.enterprise_desktop_factor(4) < 0.6
        assert calendar.enterprise_desktop_factor(0) > 1.0

    def test_home_and_mobile_rise_on_weekends(self, calendar):
        assert calendar.home_desktop_factor(4) > calendar.home_desktop_factor(0)
        assert calendar.mobile_factor(4) > calendar.mobile_factor(0)

    def test_desktop_factors_blend_enterprise_share(self, calendar):
        # Countries with more enterprise clients dip harder on weekends.
        weekend = calendar.desktop_country_factors(4)
        weekday = calendar.desktop_country_factors(0)
        from repro.worldgen.countries import country_index

        us = country_index("us")  # high enterprise share
        ng = country_index("ng")  # low enterprise share
        assert (weekday[us] - weekend[us]) > (weekday[ng] - weekend[ng])


class TestEvents:
    def test_news_event_boost(self):
        config = WorldConfig(news_event_day=5, news_event_boost=2.0)
        calendar = TrafficCalendar(config)
        from repro.weblib.categories import category_index

        news = category_index("news")
        before = calendar.category_event_factors(4)
        after = calendar.category_event_factors(5)
        assert before[news] == 1.0
        assert after[news] == 2.0
        assert np.delete(after, news).max() == 1.0

    def test_alexa_panel_boost(self):
        config = WorldConfig(alexa_change_day=10, alexa_change_boost=5.0)
        calendar = TrafficCalendar(config)
        assert calendar.alexa_panel_boost(9) == 1.0
        assert calendar.alexa_panel_boost(10) == 5.0

    def test_alexa_change_disabled_beyond_window(self):
        config = WorldConfig(n_days=5, alexa_change_day=100)
        calendar = TrafficCalendar(config)
        assert all(calendar.alexa_panel_boost(d) == 1.0 for d in range(5))
