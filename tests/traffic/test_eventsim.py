"""Tests for the record-level event simulator."""

import numpy as np
import pytest

from repro.traffic.eventsim import EventSimulator


@pytest.fixture(scope="module")
def day_events(tiny_world, tiny_traffic):
    simulator = EventSimulator(tiny_world, tiny_traffic, n_orgs=2)
    return simulator.simulate_day(0, n_sessions=4000, with_dns=True)


class TestSessions:
    def test_session_count(self, day_events):
        assert len(day_events.sessions) == 4000

    def test_session_fields_valid(self, tiny_world, day_events):
        for session in day_events.sessions[:200]:
            assert 0 <= session.site < tiny_world.n_sites
            assert session.platform in (0, 1)
            assert session.pages >= 1
            assert 0.0 <= session.start_second < 86_400.0
            assert session.client_ip.startswith("10.")

    def test_popular_sites_visited_more(self, tiny_world, day_events):
        visits = np.bincount(
            [s.site for s in day_events.sessions], minlength=tiny_world.n_sites
        )
        assert visits[:30].sum() > visits[-150:].sum()

    def test_sessions_time_ordered(self, day_events):
        seconds = [s.start_second for s in day_events.sessions]
        assert seconds == sorted(seconds)


class TestHttpRecords:
    def test_only_cf_sites_logged(self, tiny_world, day_events):
        logged_sites = {
            record.site
            for record in day_events.logs._records[0]  # noqa: SLF001 - test introspection
        }
        assert all(tiny_world.sites.cf_served[s] for s in logged_sites)

    def test_record_volume_reflects_subresources(self, tiny_world, day_events):
        cf_sessions = [
            s for s in day_events.sessions if tiny_world.sites.cf_served[s.site]
        ]
        pages = sum(s.pages for s in cf_sessions)
        records = day_events.logs.record_count(0)
        mean_subres = tiny_world.sites.subres_mult.mean()
        assert records > pages  # subresources inflate requests
        assert records < pages * mean_subres * 30

    def test_root_requests_present(self, day_events):
        counts = day_events.logs.day_counts(0, combos=("root:requests", "all:requests"))
        total_root = sum(counts["root:requests"].values())
        total_all = sum(counts["all:requests"].values())
        assert 0 < total_root < total_all

    def test_bot_traffic_present(self, day_events):
        families = {r.browser_family for r in day_events.logs._records[0]}  # noqa: SLF001
        assert families & {"googlebot", "bingbot", "curl", "python-requests", "scrapybot"}


class TestDns:
    def test_queries_logged(self, day_events):
        assert day_events.dns_log is not None
        assert day_events.dns_log.total_queries(0) > 0

    def test_cache_suppression_observed(self, day_events):
        """Shared org caches must absorb a meaningful share of lookups."""
        stats = [c.stats for c in day_events.dns_caches if c.stats.lookups > 0]
        total_hits = sum(s.hits for s in stats)
        total_lookups = sum(s.lookups for s in stats)
        assert total_lookups > 0
        assert total_hits / total_lookups > 0.05

    def test_upstream_sees_orgs_not_devices(self, day_events):
        counts = day_events.dns_log.unique_clients_per_name(0)
        # Client ids in the upstream log are org resolver ids.
        assert all(v < 200 for v in counts.values())

    def test_dns_popularity_tracks_site_popularity(self, tiny_world, day_events):
        ranking = day_events.dns_log.ranking(0)
        top_names = set(ranking[:20])
        popular_names = set()
        for site in range(40):
            popular_names.add(tiny_world.sites.names[site])
            popular_names.add(f"www.{tiny_world.sites.names[site]}")
        assert top_names & popular_names


class TestDeterminism:
    def test_same_day_reproducible(self, tiny_world, tiny_traffic):
        a = EventSimulator(tiny_world, tiny_traffic).simulate_day(1, 500)
        b = EventSimulator(tiny_world, tiny_traffic).simulate_day(1, 500)
        assert [s.site for s in a.sessions] == [s.site for s in b.sessions]
        assert a.logs.record_count() == b.logs.record_count()

    def test_days_differ(self, tiny_world, tiny_traffic):
        a = EventSimulator(tiny_world, tiny_traffic).simulate_day(0, 500)
        b = EventSimulator(tiny_world, tiny_traffic).simulate_day(1, 500)
        assert [s.site for s in a.sessions] != [s.site for s in b.sessions]
