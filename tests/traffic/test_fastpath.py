"""Tests for the vectorized traffic model."""

import numpy as np
import pytest

from repro.traffic.fastpath import TrafficModel
from repro.weblib.categories import category_index


class TestDayTensors:
    def test_pageloads_conserve_volume(self, small_world, small_traffic):
        tensors = small_traffic.day(0)
        assert tensors.pageloads.sum() == pytest.approx(
            small_world.config.daily_pageloads, rel=1e-9
        )

    def test_country_split_consistent(self, small_traffic):
        tensors = small_traffic.day(0)
        assert np.allclose(tensors.country_pageloads.sum(axis=1), tensors.pageloads)

    def test_sessions_below_pageloads(self, small_traffic):
        tensors = small_traffic.day(0)
        assert (tensors.sessions.sum(axis=1) <= tensors.pageloads + 1e-9).all()

    def test_unique_visitors_bounded(self, small_world, small_traffic):
        tensors = small_traffic.day(0)
        country_clients = small_world.clients.country_clients()
        assert (tensors.unique_visitors <= country_clients[None, :] + 1e-6).all()
        assert (tensors.unique_visitors <= tensors.sessions + 1e-6).all()
        assert (tensors.unique_visitors >= 0).all()

    def test_caching(self, small_traffic):
        assert small_traffic.day(1) is small_traffic.day(1)

    def test_out_of_window_raises(self, small_world, small_traffic):
        with pytest.raises(ValueError):
            small_traffic.day(small_world.config.n_days)
        with pytest.raises(ValueError):
            small_traffic.day(-1)

    def test_deterministic_across_instances(self, small_world):
        a = TrafficModel(small_world).day(2).pageloads
        b = TrafficModel(small_world).day(2).pageloads
        assert np.array_equal(a, b)


class TestTemporalShape:
    def test_work_sites_dip_on_weekends(self, small_world, small_traffic):
        config = small_world.config
        weekdays = [d for d in range(config.n_days) if not config.is_weekend(d)]
        weekends = [d for d in range(config.n_days) if config.is_weekend(d)]
        assert weekends, "test window must include a weekend"
        sites = small_world.sites
        business = sites.work_affinity > 0.75
        leisure = sites.work_affinity < 0.25

        def mean_share(days, mask):
            total = np.zeros(small_world.n_sites)
            for day in days:
                loads = small_traffic.day(day).pageloads
                total += loads / loads.sum()
            return total[mask].sum() / len(days)

        assert mean_share(weekdays, business) > mean_share(weekends, business)
        assert mean_share(weekdays, leisure) < mean_share(weekends, leisure)

    def test_news_event_boost_applies(self):
        from repro.worldgen.config import WorldConfig
        from repro.worldgen.world import build_world

        config = WorldConfig(
            n_sites=800, n_days=6, seed=3, news_event_day=3, news_event_boost=2.0
        )
        world = build_world(config)
        traffic = TrafficModel(world)
        news = world.sites.category == category_index("news")
        before = traffic.day(config.news_event_day - 1).pageloads
        after = traffic.day(config.news_event_day).pageloads
        share_before = before[news].sum() / before.sum()
        share_after = after[news].sum() / after.sum()
        assert share_after > share_before * 1.3

    def test_platform_split(self, small_world, small_traffic):
        desktop = small_traffic.platform_country_pageloads(0, platform=0)
        mobile = small_traffic.platform_country_pageloads(0, platform=1)
        total = small_traffic.day(0).country_pageloads
        assert np.allclose(desktop + mobile, total)

    def test_monthly_sum(self, small_world, small_traffic):
        total = small_traffic.monthly_pageloads()
        assert total.sum() == pytest.approx(
            small_world.config.daily_pageloads * small_world.config.n_days, rel=0.02
        )
