"""Tests for the list stability/churn analysis."""

import numpy as np
import pytest

from repro.core.stability import daily_churn, stability_report


class TestDailyChurn:
    def test_day_zero_rejected(self, small_world, small_providers):
        with pytest.raises(ValueError):
            daily_churn(small_world, small_providers["alexa"], 0)

    def test_bounds(self, small_world, small_providers):
        value = daily_churn(small_world, small_providers["alexa"], 1, depth=300)
        assert 0.0 <= value <= 1.0

    def test_monthly_list_never_churns(self, small_world, small_providers):
        assert daily_churn(small_world, small_providers["crux"], 1, depth=300) == 0.0


class TestStabilityReport:
    @pytest.fixture(scope="class")
    def reports(self, small_world, small_providers):
        return {
            name: stability_report(
                small_world, small_providers[name], depth=300, days=range(6)
            )
            for name in ("alexa", "umbrella", "tranco", "crux", "majestic")
        }

    def test_fields_bounded(self, reports):
        for report in reports.values():
            assert 0.0 <= report.mean_daily_churn <= 1.0
            for value in report.self_jaccard_by_lag.values():
                assert 0.0 <= value <= 1.0
            if not np.isnan(report.rank_stability):
                assert -1.0 <= report.rank_stability <= 1.0

    def test_self_jaccard_decays_with_lag(self, reports):
        for name in ("alexa", "umbrella"):
            by_lag = reports[name].self_jaccard_by_lag
            if 1 in by_lag and 7 in by_lag:
                assert by_lag[7] <= by_lag[1] + 0.02, name

    def test_tranco_stabler_than_umbrella(self, reports):
        """The Tranco design goal, measured."""
        assert reports["tranco"].mean_daily_churn < reports["umbrella"].mean_daily_churn

    def test_crux_perfectly_stable(self, reports):
        report = reports["crux"]
        assert report.mean_daily_churn == 0.0
        assert report.self_jaccard_by_lag.get(1) == 1.0
        assert report.rank_stability == pytest.approx(1.0)

    def test_churn_and_rank_stability_consistent(self, reports):
        """High churn implies lower rank stability (coarse coherence)."""
        churn_order = sorted(reports, key=lambda n: reports[n].mean_daily_churn)
        rho_order = sorted(
            reports, key=lambda n: -np.nan_to_num(reports[n].rank_stability, nan=-1)
        )
        # The most and least churning lists agree across the two views.
        assert churn_order[-1] == rho_order[-1]
