"""Tests for the SVG figure renderers and the experiment exporter."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.experiments import run_experiment
from repro.core.figure_export import export_figures
from repro.core.figures import (
    render_heatmap_svg,
    render_movement_svg,
    render_series_svg,
    save_svg,
)
from repro.core.pipeline import experiment_context
from repro.worldgen.config import WorldConfig


def _assert_valid_svg(svg: str):
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    return root


class TestHeatmapSvg:
    def test_valid_xml(self):
        svg = render_heatmap_svg(["a", "b"], ["x", "y"], {("a", "x"): 0.5})
        _assert_valid_svg(svg)

    def test_values_rendered(self):
        svg = render_heatmap_svg(["a"], ["x"], {("a", "x"): 0.37}, title="T")
        assert "0.37" in svg
        assert "T" in svg

    def test_missing_cells_gray(self):
        svg = render_heatmap_svg(["a"], ["x", "y"], {("a", "x"): 0.5})
        assert "#eeeeee" in svg

    def test_labels_escaped(self):
        svg = render_heatmap_svg(["a<b"], ['x"y'], {})
        _assert_valid_svg(svg)
        assert "a&lt;b" in svg

    def test_nan_handled(self):
        svg = render_heatmap_svg(["a"], ["x"], {("a", "x"): float("nan")})
        _assert_valid_svg(svg)


class TestSeriesSvg:
    def test_valid_with_multiple_series(self):
        svg = render_series_svg(
            {"alexa": [0.1, 0.2, 0.15], "crux": [0.3, 0.35, 0.32]},
            title="Daily",
            weekend_days=[1],
        )
        root = _assert_valid_svg(svg)
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_nan_points_skipped(self):
        svg = render_series_svg({"x": [0.1, float("nan"), 0.3]})
        root = _assert_valid_svg(svg)
        polyline = next(e for e in root.iter() if e.tag.endswith("polyline"))
        assert len(polyline.get("points").split()) == 2

    def test_constant_series(self):
        svg = render_series_svg({"flat": [0.5, 0.5, 0.5]})
        _assert_valid_svg(svg)


class TestMovementSvg:
    def test_valid_and_colored(self):
        counts = np.array([
            [5, 2, 0, 1],
            [0, 9, 3, 2],
            [1, 0, 7, 4],
        ])
        svg = render_movement_svg(["1K", "10K", "100K"], counts, "alexa")
        root = _assert_valid_svg(svg)
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert len(paths) == int((counts > 0).sum())
        assert "#c0392b" in svg  # a >=2-magnitude mismatch exists

    def test_empty_matrix(self):
        svg = render_movement_svg(["1K"], np.zeros((1, 2)), "x")
        _assert_valid_svg(svg)


class TestSaveAndExport:
    def test_save_svg_declaration(self, tmp_path):
        path = save_svg(render_heatmap_svg(["a"], ["x"], {}), tmp_path / "t.svg")
        assert path.read_text().startswith("<?xml")
        ET.parse(path)

    @pytest.fixture(scope="class")
    def export_ctx(self):
        return experiment_context(config=WorldConfig(n_sites=1200, n_days=8, seed=77))

    @pytest.mark.parametrize("name,expected_files", [
        ("fig1", 2), ("fig2", 2), ("fig3", 2), ("fig4", 2),
        ("fig5", 2), ("fig6", 2), ("fig7", 2),
    ])
    def test_export_per_experiment(self, export_ctx, tmp_path, name, expected_files):
        result = run_experiment(name, export_ctx)
        paths = export_figures(result, tmp_path)
        assert len(paths) == expected_files
        for path in paths:
            ET.parse(path)

    def test_tables_export_nothing(self, export_ctx, tmp_path):
        result = run_experiment("table1", export_ctx)
        assert export_figures(result, tmp_path) == []
