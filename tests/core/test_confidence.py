"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import BootstrapCI, bootstrap_ci, evaluate_with_ci


class TestBootstrapCI:
    def test_interval_contains_mean(self, rng):
        values = rng.normal(0.3, 0.05, size=30)
        ci = bootstrap_ci(values)
        assert ci.low <= ci.mean <= ci.high
        assert ci.n == 30

    def test_width_shrinks_with_samples(self, rng):
        small = bootstrap_ci(rng.normal(0.3, 0.05, size=8), seed=1)
        large = bootstrap_ci(rng.normal(0.3, 0.05, size=200), seed=1)
        assert large.width < small.width

    def test_single_observation_degenerate(self):
        ci = bootstrap_ci([0.5])
        assert ci.low == ci.high == ci.mean == 0.5

    def test_nans_dropped(self):
        ci = bootstrap_ci([0.2, float("nan"), 0.4])
        assert ci.n == 2
        assert ci.mean == pytest.approx(0.3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([float("nan")])

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], level=1.5)

    def test_deterministic_given_seed(self, rng):
        values = rng.normal(0.3, 0.05, size=20)
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=40))
    @settings(max_examples=30)
    def test_property_interval_within_data_range(self, values):
        ci = bootstrap_ci(values)
        assert min(values) - 1e-12 <= ci.low
        assert ci.high <= max(values) + 1e-12

    def test_coverage_calibration(self, rng):
        """~95% of intervals should cover the true mean."""
        hits = 0
        trials = 120
        for i in range(trials):
            values = rng.normal(0.5, 0.1, size=25)
            ci = bootstrap_ci(values, seed=i)
            if ci.contains(0.5):
                hits += 1
        assert hits / trials > 0.85


class TestEvaluateWithCI:
    def test_over_world(self, small_world, small_evaluator, small_providers):
        ci = evaluate_with_ci(
            small_evaluator,
            small_providers["alexa"],
            "all:requests",
            small_world.config.bucket_sizes[3],
            days=range(5),
        )
        assert isinstance(ci, BootstrapCI)
        assert 0.0 <= ci.low <= ci.high <= 1.0
        assert ci.n == 5
