"""Tests for the temporal stability analysis."""

import numpy as np
import pytest

from repro.core.temporal import (
    DailySeries,
    TemporalAnalysis,
    daily_series,
    weekend_effect,
)


def _series(name, jaccard, spearman, weekend):
    n = len(jaccard)
    return DailySeries(
        provider=name,
        days=np.arange(n),
        jaccard=np.asarray(jaccard, dtype=float),
        spearman=np.asarray(spearman, dtype=float),
        weekend=np.asarray(weekend, dtype=bool),
    )


class TestDailySeries:
    def test_weekday_weekend_means(self):
        series = _series("x", [0.1, 0.2, 0.5, 0.6], [0.0] * 4,
                         [False, False, True, True])
        assert series.weekday_mean(series.jaccard) == pytest.approx(0.15)
        assert series.weekend_mean(series.jaccard) == pytest.approx(0.55)

    def test_nan_values_ignored(self):
        series = _series("x", [0.1, np.nan], [np.nan, np.nan], [False, False])
        assert series.weekday_mean(series.jaccard) == pytest.approx(0.1)
        assert np.isnan(series.weekend_mean(series.jaccard))

    def test_weekend_effect_sign(self):
        series = _series("x", [0.2, 0.2, 0.4, 0.4], [0.1, 0.1, 0.3, 0.3],
                         [False, False, True, True])
        jj_delta, rho_delta = weekend_effect(series)
        assert jj_delta == pytest.approx(0.2)
        assert rho_delta == pytest.approx(0.2)


class TestTemporalAnalysis:
    def test_ordering_stability_perfect(self):
        a = _series("a", [0.5, 0.6], [0.1, 0.1], [False, True])
        b = _series("b", [0.2, 0.3], [0.1, 0.1], [False, True])
        analysis = TemporalAnalysis(series={"a": a, "b": b})
        assert analysis.ordering_stability() == pytest.approx(1.0)

    def test_periodicity_flat_series(self):
        flat = _series("flat", [0.5] * 14, [0.0] * 14, [False] * 14)
        analysis = TemporalAnalysis(series={"flat": flat})
        assert analysis.periodicity_strength("flat") == 0.0

    def test_periodicity_weekly_signal(self):
        values = [0.5 + (0.3 if d % 7 in (4, 5) else 0.0) for d in range(28)]
        noisy = [0.5 + 0.01 * ((d * 13) % 7) / 7 for d in range(28)]
        weekly = _series("weekly", values, [0.0] * 28, [False] * 28)
        analysis = TemporalAnalysis(series={"weekly": weekly})
        assert analysis.periodicity_strength("weekly") > 0.95

    def test_trend_delta(self):
        series = _series("x", [0.1] * 5 + [0.4] * 5, [np.nan] * 10, [False] * 10)
        analysis = TemporalAnalysis(series={"x": series})
        jj_delta, rho_delta = analysis.trend_delta("x", split_day=5)
        assert jj_delta == pytest.approx(0.3)
        assert np.isnan(rho_delta)

    def test_trend_delta_empty_side(self):
        series = _series("x", [0.1, 0.2], [0.0, 0.0], [False, False])
        analysis = TemporalAnalysis(series={"x": series})
        assert np.isnan(analysis.trend_delta("x", split_day=0)[0])


class TestDailySeriesIntegration:
    def test_series_over_world(self, small_world, small_evaluator, small_providers):
        series = daily_series(
            small_evaluator,
            small_providers["umbrella"],
            "all:requests",
            small_world.config.bucket_sizes[-1],
            small_world.config,
            days=range(4),
        )
        assert len(series.days) == 4
        assert np.isfinite(series.jaccard).all()
        assert (series.jaccard >= 0).all() and (series.jaccard <= 1).all()

    def test_umbrella_is_weekly_periodic(self, small_world, small_evaluator, small_providers):
        """Figure 3's signature: Umbrella accuracy moves with the workweek."""
        config = small_world.config
        magnitude = config.bucket_sizes[-1]
        series = daily_series(
            small_evaluator, small_providers["umbrella"], "all:requests",
            magnitude, config,
        )
        jj_delta, _ = weekend_effect(series)
        assert abs(jj_delta) > 0.005  # weekends measurably differ
