"""Tests for the list recommendation API."""

import numpy as np
import pytest

from repro.core.recommend import ListScore, StudyProfile, recommend_lists


@pytest.fixture(scope="module")
def scores_set_study(small_world, small_evaluator, small_providers):
    profile = StudyProfile(needs_ranks=False,
                           magnitude=small_world.config.bucket_sizes[3])
    return recommend_lists(small_world, small_evaluator, small_providers, profile)


class TestProfiles:
    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            StudyProfile(must_cover=("cryptofauna",))

    def test_rank_weight_bounds(self):
        with pytest.raises(ValueError):
            StudyProfile(rank_weight=1.5)


class TestRecommendations:
    def test_sorted_best_first(self, scores_set_study):
        values = [s.score for s in scores_set_study]
        assert values == sorted(values, reverse=True)

    def test_set_study_recommends_crux(self, scores_set_study):
        """The paper's headline advice must fall out of the scores."""
        assert scores_set_study[0].provider == "crux"

    def test_rank_study_excludes_crux(self, small_world, small_evaluator, small_providers):
        profile = StudyProfile(needs_ranks=True,
                               magnitude=small_world.config.bucket_sizes[3])
        scores = recommend_lists(small_world, small_evaluator, small_providers, profile)
        crux = next(s for s in scores if s.provider == "crux")
        assert not crux.usable
        assert scores[0].provider != "crux"

    def test_must_cover_penalizes_excluders(self, small_world, small_evaluator, small_providers):
        profile = StudyProfile(
            must_cover=("adult",),
            magnitude=small_world.config.bucket_sizes[3],
        )
        scores = {s.provider: s for s in recommend_lists(
            small_world, small_evaluator, small_providers, profile
        )}
        # Umbrella's enterprise blocking makes it an adult-excluder.
        umbrella = scores["umbrella"]
        if umbrella.coverage_penalties:
            assert "adult" in umbrella.coverage_penalties
            assert umbrella.score < umbrella.set_quality

    def test_score_fields_consistent(self, scores_set_study):
        for score in scores_set_study:
            assert isinstance(score, ListScore)
            assert 0.0 <= score.set_quality <= 1.0
            if not np.isnan(score.rank_quality):
                assert -1.0 <= score.rank_quality <= 1.0
