"""Tests for the logistic-regression machinery and Table 3 analysis."""

import numpy as np
import pytest

from repro.core.normalize import normalize_list
from repro.core.regression import (
    category_inclusion_odds,
    least_included_rank,
    logistic_regression,
)


class TestLogisticRegression:
    def test_matches_closed_form_2x2(self, rng):
        """Univariate binary logistic regression == 2x2 odds ratio."""
        x = rng.random(2000) < 0.3
        p = np.where(x, 0.7, 0.4)
        y = (rng.random(2000) < p).astype(float)
        fit = logistic_regression(x.astype(float)[:, None], y)
        a = ((x == 1) & (y == 1)).sum()
        b = ((x == 1) & (y == 0)).sum()
        c = ((x == 0) & (y == 1)).sum()
        d = ((x == 0) & (y == 0)).sum()
        closed_form = (a * d) / (b * c)
        assert fit.odds_ratio(1) == pytest.approx(closed_form, rel=1e-4)
        assert fit.converged

    def test_recovers_known_coefficients(self, rng):
        n = 20_000
        x = rng.normal(size=(n, 2))
        logits = -0.5 + 1.2 * x[:, 0] - 0.8 * x[:, 1]
        y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logits))).astype(float)
        fit = logistic_regression(x, y)
        assert fit.coef[0] == pytest.approx(-0.5, abs=0.08)
        assert fit.coef[1] == pytest.approx(1.2, abs=0.08)
        assert fit.coef[2] == pytest.approx(-0.8, abs=0.08)

    def test_null_effect_not_significant(self, rng):
        x = rng.normal(size=(5000, 1))
        y = (rng.random(5000) < 0.5).astype(float)
        fit = logistic_regression(x, y)
        assert fit.p_values[1] > 0.001  # overwhelmingly likely

    def test_strong_effect_significant(self, rng):
        x = (rng.random(5000) < 0.5).astype(float)
        y = (rng.random(5000) < np.where(x > 0, 0.9, 0.1)).astype(float)
        fit = logistic_regression(x[:, None], y)
        assert fit.p_values[1] < 1e-10

    def test_separable_data_does_not_explode(self, rng):
        x = np.concatenate([np.zeros(100), np.ones(100)])
        y = x.copy()
        fit = logistic_regression(x[:, None], y)
        assert np.isfinite(fit.coef).all()

    def test_input_validation(self):
        with pytest.raises(ValueError):
            logistic_regression(np.zeros((5, 1)), np.array([0, 1, 2, 0, 1]))
        with pytest.raises(ValueError):
            logistic_regression(np.zeros((5, 1)), np.zeros(4))


class TestCategoryOdds:
    @pytest.fixture(scope="class")
    def odds(self, small_world, small_engine, small_providers):
        universe = small_engine.top(0, "all:requests", small_engine.n_cf_sites // 2)
        out = {}
        for name in ("alexa", "crux", "majestic"):
            normalized = normalize_list(small_world, small_providers[name].daily_list(0))
            out[name] = category_inclusion_odds(small_world, universe, normalized)
        return out

    def test_all_categories_reported(self, odds):
        from repro.weblib.categories import CATEGORIES

        for results in odds.values():
            assert set(results) == {c.name for c in CATEGORIES}

    def test_counts_consistent(self, odds, small_engine):
        universe_size = len(
            small_engine.top(0, "all:requests", small_engine.n_cf_sites // 2)
        )
        for results in odds.values():
            assert sum(r.n_category for r in results.values()) == universe_size
            for r in results.values():
                assert 0 <= r.n_included <= r.n_category

    def test_alexa_underincludes_adult(self, odds):
        adult = odds["alexa"]["adult"]
        if adult.n_category >= 10 and np.isfinite(adult.odds_ratio):
            assert adult.odds_ratio < 1.0

    def test_parked_underincluded_everywhere(self, odds):
        for name, results in odds.items():
            parked = results["parked"]
            if parked.n_category >= 20 and np.isfinite(parked.odds_ratio):
                assert parked.odds_ratio < 1.0, name

    def test_significance_respects_bonferroni(self, odds):
        for results in odds.values():
            for r in results.values():
                if r.significant:
                    assert r.p_value < 0.01 / 22


class TestLeastIncludedRank:
    def test_basic(self, small_world, small_providers):
        normalized = normalize_list(small_world, small_providers["alexa"].daily_list(0))
        universe = normalized.sites[:50]
        rank = least_included_rank(normalized, universe)
        assert rank is not None
        assert rank >= 1

    def test_none_when_disjoint(self, small_world, small_providers):
        normalized = normalize_list(small_world, small_providers["alexa"].daily_list(0))
        missing = np.array([s for s in range(small_world.n_sites)
                            if s not in set(normalized.sites.tolist())][:5])
        if len(missing):
            assert least_included_rank(normalized, missing) is None
