"""Tests for CSV dataset I/O."""

import numpy as np
import pytest

from repro.core.datasets import (
    list_to_rows,
    read_crux_csv,
    read_rank_csv,
    write_crux_csv,
    write_rank_csv,
)
from repro.core.normalize import normalize_strings


class TestRankCsv:
    def test_roundtrip(self, small_world, small_providers, tmp_path):
        ranked = small_providers["umbrella"].daily_list(0)
        path = tmp_path / "umbrella.csv"
        written = write_rank_csv(small_world, ranked, path, limit=500)
        assert written == 500
        entries = read_rank_csv(path)
        assert entries == ranked.strings(small_world, limit=500)

    def test_shuffled_rows_resorted(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text("3,c.com\n1,a.com\n2,b.com\n")
        assert read_rank_csv(path) == ["a.com", "b.com", "c.com"]

    def test_malformed_rows_skipped(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text("1,a.com\n\nnot-a-rank,x\n2,b.com\nonly-one-column\n")
        assert read_rank_csv(path) == ["a.com", "b.com"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_rank_csv(tmp_path / "nope.csv")

    def test_rows_shape(self, small_world, small_providers):
        rows = list_to_rows(small_world, small_providers["alexa"].daily_list(0), limit=10)
        assert rows[0][0] == 1
        assert [r for r, _ in rows] == list(range(1, 11))

    def test_feeds_normalization_pipeline(self, small_world, small_providers, tmp_path):
        """Exported CSVs re-enter the analysis through normalize_strings."""
        ranked = small_providers["umbrella"].daily_list(0)
        path = tmp_path / "roundtrip.csv"
        write_rank_csv(small_world, ranked, path, limit=300)
        domains, ranks = normalize_strings(read_rank_csv(path))
        assert len(domains) > 50
        assert ranks == sorted(ranks)


class TestCruxCsv:
    def test_roundtrip_magnitudes(self, small_world, small_providers, tmp_path):
        ranked = small_providers["crux"].monthly_list()
        path = tmp_path / "crux.csv"
        written = write_crux_csv(small_world, ranked, path)
        assert written == len(ranked)
        pairs = read_crux_csv(path)
        assert len(pairs) == written
        magnitudes = [m for _origin, m in pairs]
        assert magnitudes == sorted(magnitudes)
        assert pairs[0][0].startswith(("http://", "https://"))

    def test_bucket_sizes_preserved(self, small_world, small_providers, tmp_path):
        ranked = small_providers["crux"].monthly_list()
        path = tmp_path / "crux.csv"
        write_crux_csv(small_world, ranked, path)
        pairs = read_crux_csv(path)
        bounds = np.asarray(ranked.bucket_bounds)
        first_bucket = sum(1 for _o, m in pairs if m == 1000)
        assert first_bucket == bounds[0]

    def test_rejects_unbucketed(self, small_world, small_providers, tmp_path):
        ranked = small_providers["alexa"].daily_list(0)
        with pytest.raises(ValueError):
            write_crux_csv(small_world, ranked, tmp_path / "x.csv")
