"""Tests for similarity measures, cross-validated against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core.similarity import (
    average_ranks,
    interpret_spearman,
    jaccard_index,
    pairwise_jaccard,
    pairwise_spearman,
    rank_correlation_of_lists,
    spearman,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard_index([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard_index([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        # Paper's example: two 100-element lists sharing 90 -> 0.82.
        a = list(range(100))
        b = list(range(10, 110))
        assert jaccard_index(a, b) == pytest.approx(90 / 110, abs=1e-9)

    def test_both_empty(self):
        assert jaccard_index([], []) == 1.0

    def test_one_empty(self):
        assert jaccard_index([1], []) == 0.0

    def test_duplicates_ignored(self):
        assert jaccard_index([1, 1, 2], [1, 2, 2]) == 1.0

    @given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
    def test_property_bounds_and_symmetry(self, a, b):
        value = jaccard_index(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_index(b, a)
        if a == b:
            assert value == 1.0


class TestAverageRanks:
    def test_no_ties(self):
        assert average_ranks(np.array([30.0, 10.0, 20.0])).tolist() == [3.0, 1.0, 2.0]

    def test_ties_averaged(self):
        assert average_ranks(np.array([1.0, 2.0, 2.0, 3.0])).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self, rng):
        values = rng.integers(0, 10, size=200).astype(float)
        ours = average_ranks(values)
        scipys = scipy_stats.rankdata(values)
        assert np.allclose(ours, scipys)


class TestEdgeCases:
    """Documented behavior at the degenerate ends of every measure."""

    def test_jaccard_empty_vs_nonempty(self):
        assert jaccard_index([], [1, 2]) == 0.0
        assert jaccard_index([1, 2], []) == 0.0

    def test_pairwise_jaccard_with_empty_lists(self):
        table = pairwise_jaccard({"a": [], "b": [], "c": [1]})
        # Two empty lists are identical sets (union empty -> 1.0), and an
        # empty list is disjoint from any non-empty one.
        assert table[("a", "a")] == 1.0
        assert table[("a", "b")] == 1.0
        assert table[("a", "c")] == 0.0 and table[("c", "a")] == 0.0

    def test_pairwise_jaccard_disjoint(self):
        table = pairwise_jaccard({"a": [1, 2], "b": [3, 4]})
        assert table[("a", "b")] == 0.0 == table[("b", "a")]

    def test_pairwise_jaccard_no_lists(self):
        assert pairwise_jaccard({}) == {}

    def test_spearman_constant_both_nan(self):
        # Constant input: rank variance is zero, so rho AND pvalue are
        # undefined — (nan, nan), matching scipy.spearmanr.
        result = spearman([5, 5, 5, 5], [1, 2, 3, 4])
        assert np.isnan(result.rho) and np.isnan(result.pvalue)
        both = spearman([5, 5, 5], [7, 7, 7])
        assert np.isnan(both.rho) and np.isnan(both.pvalue)

    def test_spearman_length_one_raises(self):
        # A single observation cannot be correlated; this raises rather
        # than returning nan so callers distinguish "undefined because
        # degenerate data" from "undefined because too little data".
        with pytest.raises(ValueError, match="at least two"):
            spearman([1], [2])
        with pytest.raises(ValueError):
            spearman([], [])

    def test_rank_correlation_short_lists_nan_not_raise(self):
        # The list-facing wrapper folds the <2-intersection case to nan:
        # tiny intersections are routine when comparing top lists.
        assert np.isnan(rank_correlation_of_lists([1], [1]).rho)
        assert np.isnan(rank_correlation_of_lists([], []).rho)

    def test_average_ranks_empty(self):
        assert average_ranks(np.array([])).tolist() == []

    def test_average_ranks_single(self):
        assert average_ranks(np.array([42.0])).tolist() == [1.0]

    def test_average_ranks_all_tied(self):
        # n equal values all share the mean position (n + 1) / 2.
        assert average_ranks(np.array([7.0, 7.0, 7.0, 7.0])).tolist() == [2.5] * 4

    def test_average_ranks_interleaved_ties(self):
        values = np.array([3.0, 1.0, 3.0, 2.0, 1.0])
        expected = scipy_stats.rankdata(values)
        assert np.allclose(average_ranks(values), expected)


class TestSpearman:
    def test_perfect_correlation(self):
        result = spearman([1, 2, 3, 4], [10, 20, 30, 40])
        assert result.rho == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        result = spearman([1, 2, 3, 4], [4, 3, 2, 1])
        assert result.rho == pytest.approx(-1.0)

    def test_matches_scipy_continuous(self, rng):
        x = rng.normal(size=300)
        y = x + rng.normal(scale=2.0, size=300)
        ours = spearman(x, y)
        theirs = scipy_stats.spearmanr(x, y)
        assert ours.rho == pytest.approx(theirs.correlation, abs=1e-12)
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 5, size=200).astype(float)
        y = rng.integers(0, 5, size=200).astype(float)
        ours = spearman(x, y)
        theirs = scipy_stats.spearmanr(x, y)
        assert ours.rho == pytest.approx(theirs.correlation, abs=1e-12)

    def test_constant_input_nan(self):
        result = spearman([1, 1, 1], [1, 2, 3])
        assert np.isnan(result.rho)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            spearman([1], [1])

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=60),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40)
    def test_property_bounded_and_symmetric(self, x, random):
        y = list(x)
        random.shuffle(y)
        result = spearman(x, y)
        if not np.isnan(result.rho):
            assert -1.0 <= result.rho <= 1.0
            assert spearman(y, x).rho == pytest.approx(result.rho, abs=1e-12)

    @given(st.lists(st.integers(0, 10_000), min_size=3, max_size=100, unique=True))
    @settings(max_examples=40)
    def test_property_self_correlation(self, x):
        assert spearman(x, x).rho == pytest.approx(1.0)


class TestRankCorrelationOfLists:
    def test_same_order(self):
        assert rank_correlation_of_lists([5, 9, 2], [5, 9, 2]).rho == pytest.approx(1.0)

    def test_reversed_order(self):
        assert rank_correlation_of_lists([1, 2, 3], [3, 2, 1]).rho == pytest.approx(-1.0)

    def test_partial_intersection(self):
        # Shared elements 1, 2, 3 in the same relative order.
        result = rank_correlation_of_lists([1, 7, 2, 3], [1, 2, 9, 3])
        assert result.rho == pytest.approx(1.0)

    def test_tiny_intersection_nan(self):
        assert np.isnan(rank_correlation_of_lists([1, 2], [2, 3]).rho)
        assert np.isnan(rank_correlation_of_lists([1], [2]).rho)

    def test_intersection_only(self):
        # Disjoint noise elements must not affect the result.
        base_a = [10, 20, 30, 40]
        base_b = [40, 30, 20, 10]
        noisy_a = [10, 101, 20, 102, 30, 103, 40]
        noisy_b = [40, 201, 30, 202, 20, 203, 10]
        assert rank_correlation_of_lists(noisy_a, noisy_b).rho == pytest.approx(
            rank_correlation_of_lists(base_a, base_b).rho
        )


class TestPairwise:
    def test_pairwise_jaccard_symmetric(self):
        lists = {"a": [1, 2, 3], "b": [2, 3, 4], "c": [9]}
        out = pairwise_jaccard(lists)
        assert out[("a", "b")] == out[("b", "a")] == pytest.approx(0.5)
        assert out[("a", "a")] == 1.0
        assert out[("a", "c")] == 0.0

    def test_pairwise_spearman_diagonal(self):
        lists = {"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]}
        out = pairwise_spearman(lists)
        assert out[("a", "a")] == 1.0
        assert out[("a", "b")] == pytest.approx(-1.0)


class TestInterpretation:
    @pytest.mark.parametrize(
        "rho,label",
        [
            (0.05, "negligible"),
            (0.25, "weak"),
            (0.55, "moderate"),
            (0.8, "strong"),
            (0.95, "very strong"),
            (-0.95, "very strong"),
            (float("nan"), "undefined"),
        ],
    )
    def test_bands(self, rho, label):
        assert interpret_spearman(rho) == label
