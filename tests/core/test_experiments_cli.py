"""Tests for the experiment runners and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core.experiments import SPECS, run_experiment
from repro.core.pipeline import (
    _CONTEXTS,
    ARTIFACT_NAMES,
    MAX_CACHED_CONTEXTS,
    clear_contexts,
    experiment_context,
)
from repro.worldgen.config import WorldConfig

_TEST_CONFIG = WorldConfig(n_sites=1200, n_days=8, seed=77)


@pytest.fixture(scope="module")
def ctx():
    return experiment_context(config=_TEST_CONFIG)


class TestPipeline:
    def test_context_cached(self):
        assert experiment_context(config=_TEST_CONFIG) is experiment_context(
            config=_TEST_CONFIG
        )

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            experiment_context(_TEST_CONFIG)  # noqa: the API is keyword-only

    def test_clear_contexts_drops_memo(self):
        first = experiment_context(config=_TEST_CONFIG)
        clear_contexts()
        assert _CONTEXTS == {}
        second = experiment_context(config=_TEST_CONFIG)
        assert second is not first
        assert second is experiment_context(config=_TEST_CONFIG)

    def test_memo_bounded_lru(self):
        clear_contexts()
        configs = [WorldConfig(n_sites=100, n_days=1, seed=s) for s in range(10)]
        for config in configs:
            experiment_context(config=config)
        assert len(_CONTEXTS) <= MAX_CACHED_CONTEXTS
        # Oldest contexts were evicted, newest retained.
        keys = [key for key, _ in _CONTEXTS.items()]
        assert (configs[0], None) not in keys
        assert (configs[-1], None) in keys

    def test_memo_refreshes_on_hit(self):
        clear_contexts()
        configs = [WorldConfig(n_sites=100, n_days=1, seed=s) for s in range(MAX_CACHED_CONTEXTS)]
        contexts = [experiment_context(config=config) for config in configs]
        experiment_context(config=configs[0])  # refresh the oldest entry
        experiment_context(config=WorldConfig(n_sites=100, n_days=1, seed=999))  # forces one eviction
        assert experiment_context(config=configs[0]) is contexts[0], "refreshed entry must survive"
        assert experiment_context(config=configs[1]) is not contexts[1], "LRU entry was evicted"

    def test_artifact_accessor(self, ctx):
        for name in ARTIFACT_NAMES:
            assert ctx.artifact(name) is ctx.artifact(name), "artifacts memoize"
        assert ctx.artifact("world") is ctx.world
        assert ctx.artifact("engine") is ctx.engine
        with pytest.raises(KeyError):
            ctx.artifact("nosuch")

    def test_normalized_cached(self, ctx):
        assert ctx.normalized("alexa", 0) is ctx.normalized("alexa", 0)
        assert ctx.normalized("crux", 0) is ctx.normalized("crux", 5)  # monthly

    def test_magnitudes(self, ctx):
        assert len(ctx.magnitudes) == 4
        assert ctx.magnitude_labels == ("1K", "10K", "100K", "1M")


class TestExperiments:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_every_experiment_runs(self, ctx, name):
        result = run_experiment(name, ctx)
        assert result.name == name
        assert result.text.strip()
        assert result.data

    def test_specs_are_declarative(self):
        for name, spec in SPECS.items():
            assert spec.id == name
            assert spec.title and spec.summary
            assert callable(spec.fn)
            unknown = set(spec.required_artifacts) - set(ARTIFACT_NAMES)
            assert not unknown, f"{name} requires unknown artifacts {unknown}"

    def test_deprecated_experiments_shim(self):
        with pytest.warns(DeprecationWarning):
            from repro.core.experiments import EXPERIMENTS

            fns = dict(EXPERIMENTS)
        assert set(fns) == set(SPECS)
        assert all(fns[name] is SPECS[name].fn for name in SPECS)

    def test_unknown_experiment(self, ctx):
        with pytest.raises(KeyError):
            run_experiment("fig99", ctx)

    def test_fig1_band(self, ctx):
        result = run_experiment("fig1", ctx)
        lo, hi = result.data["jaccard_band"]
        assert 0.0 <= lo < hi <= 1.0

    def test_table1_structure(self, ctx):
        result = run_experiment("table1", ctx)
        coverage = result.data["coverage"]
        assert set(coverage) == set(ctx.providers)
        for per_mag in coverage.values():
            assert set(per_mag) == set(ctx.magnitude_labels)

    def test_table2_umbrella_crux_high(self, ctx):
        deviation = run_experiment("table2", ctx).data["deviation"]
        assert deviation["umbrella"]["1M"] > 30
        assert deviation["crux"]["1M"] > 30
        assert deviation["tranco"]["1M"] < 5

    def test_fig3_contains_all_providers(self, ctx):
        series = run_experiment("fig3", ctx).data["series"]
        assert set(series) == set(ctx.providers)

    def test_fig5_stats(self, ctx):
        stats = run_experiment("fig5", ctx).data["stats"]
        assert set(stats) == {"alexa", "crux"}

    def test_survey_numbers(self, ctx):
        stats = run_experiment("survey", ctx).data["stats"]
        assert stats.papers == 59


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.experiment == "fig1"
        # Unset world arguments stay None; the base config supplies them.
        assert args.sites is None and args.days is None and args.seed is None
        config = WorldConfig.from_args(args)
        assert config.n_sites > 0

    def test_usage_error_returns_two(self, capsys):
        assert main(["fig1", "--sites", "not-a-number"]) == 2
        assert main(["--no-such-flag"]) == 2

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_runs_one_experiment(self, capsys):
        code = main(["survey", "--sites", "1200", "--days", "8", "--seed", "77"])
        assert code == 0
        out = capsys.readouterr().out
        assert "85%" in out

    def test_export_subcommand(self, capsys, tmp_path):
        path = tmp_path / "alexa.csv"
        code = main(["export", "alexa", str(path),
                     "--sites", "1200", "--days", "8", "--seed", "77",
                     "--limit", "25"])
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 25
        assert lines[0].startswith("1,")

    def test_export_crux_format(self, capsys, tmp_path):
        path = tmp_path / "crux.csv"
        code = main(["export", "crux", str(path),
                     "--sites", "1200", "--days", "8", "--seed", "77"])
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header == "origin,rank"

    def test_export_unknown_provider(self, capsys, tmp_path):
        code = main(["export", "nosuch", str(tmp_path / "x.csv"),
                     "--sites", "1200", "--days", "8", "--seed", "77"])
        assert code == 2

    def test_recommend_subcommand(self, capsys):
        code = main(["recommend", "--sites", "1200", "--days", "8",
                     "--seed", "77", "--magnitude", "1M"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out

    def test_recommend_rejects_bad_category(self, capsys):
        code = main(["recommend", "--sites", "1200", "--days", "8",
                     "--seed", "77", "--must-cover", "cryptofauna"])
        assert code == 2


class TestCacheCli:
    def test_stats_on_empty_store(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out

    def test_run_then_stats_ls_clear(self, capsys, tmp_path):
        # fig2 walks the whole artifact chain (world -> traffic -> metrics
        # -> providers), so the store ends up populated; a world-free
        # experiment like survey would lazily skip it all.
        cache = str(tmp_path / "store")
        code = main(["fig2", "--sites", "1200", "--days", "8", "--seed", "77",
                     "--cache-dir", cache])
        assert code == 0
        out = capsys.readouterr().out
        assert "[cache:" in out and "[manifest:" in out

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        stats_out = capsys.readouterr().out
        assert "configs: 1" in stats_out
        assert "world" in stats_out and "results" in stats_out

        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        ls_out = capsys.readouterr().out
        assert "world/arrays.npz" in ls_out

        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "freed" in capsys.readouterr().out
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        assert "(empty store" in capsys.readouterr().out

    def test_no_cache_flag_disables_store(self, capsys, tmp_path):
        cache = str(tmp_path / "never")
        code = main(["survey", "--sites", "1200", "--days", "8", "--seed", "77",
                     "--cache-dir", cache, "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[manifest:" not in out
        assert not (tmp_path / "never").exists()
