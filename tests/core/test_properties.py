"""Cross-cutting property-based tests on core algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import assign_buckets
from repro.core.similarity import jaccard_index
from repro.providers.tranco import dowdall_scores
from repro.providers.trexa import interleave_rankings


class TestDowdallProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 20), min_size=5, max_size=5),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50)
    def test_scores_nonnegative_and_bounded(self, rank_lists):
        vectors = [np.asarray(r, dtype=float) for r in rank_lists]
        scores = dowdall_scores(vectors, 5)
        assert (scores >= 0).all()
        # Max possible: rank 1 in every vector.
        assert (scores <= len(vectors) + 1e-9).all()

    @given(st.integers(1, 50))
    @settings(max_examples=20)
    def test_better_ranks_score_higher(self, n):
        ranks = np.arange(1, n + 1, dtype=float)
        scores = dowdall_scores([ranks], n)
        assert (np.diff(scores) <= 0).all()

    def test_absent_contributes_nothing(self):
        scores = dowdall_scores([np.array([0.0, 1.0])], 2)
        assert scores[0] == 0.0
        assert scores[1] == 1.0

    def test_additive_over_lists(self):
        a = np.array([1.0, 2.0])
        b = np.array([2.0, 1.0])
        combined = dowdall_scores([a, b], 2)
        separate = dowdall_scores([a], 2) + dowdall_scores([b], 2)
        assert np.allclose(combined, separate)


class TestInterleaveProperties:
    @given(
        st.lists(st.integers(0, 30), unique=True, max_size=15),
        st.lists(st.integers(0, 30), unique=True, max_size=15),
        st.integers(1, 4),
    )
    @settings(max_examples=60)
    def test_union_preserved_no_duplicates(self, primary, secondary, weight):
        merged = interleave_rankings(
            np.asarray(primary, dtype=np.int64),
            np.asarray(secondary, dtype=np.int64),
            weight,
        )
        assert set(merged.tolist()) == set(primary) | set(secondary)
        assert len(merged) == len(set(merged.tolist()))

    @given(
        st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=15),
        st.integers(1, 4),
    )
    @settings(max_examples=30)
    def test_primary_order_preserved(self, primary, weight):
        merged = interleave_rankings(
            np.asarray(primary, dtype=np.int64), np.asarray([], dtype=np.int64), weight
        )
        assert merged.tolist() == primary

    def test_first_element_comes_from_primary(self):
        merged = interleave_rankings(np.array([9, 8]), np.array([1, 2]), 1)
        assert merged[0] == 9


class TestBucketProperties:
    @given(
        st.lists(st.integers(0, 99), unique=True, min_size=1, max_size=60),
        st.lists(st.integers(1, 80), unique=True, min_size=1, max_size=4),
    )
    @settings(max_examples=60)
    def test_partition_property(self, ranking, raw_bounds):
        bounds = sorted(raw_bounds)
        assignment = assign_buckets(ranking, n_sites=100, bounds=bounds)
        # Every ranked site within the last bound gets a real bucket.
        for position, site in enumerate(ranking):
            expected = int(np.searchsorted(bounds, position + 1, side="left"))
            if expected >= len(bounds):
                assert assignment.bucket[site] == assignment.absent_bucket
            else:
                assert assignment.bucket[site] == expected
        # Unranked sites are absent.
        unranked = set(range(100)) - set(ranking)
        for site in list(unranked)[:10]:
            assert assignment.bucket[site] == assignment.absent_bucket

    @given(st.lists(st.integers(0, 99), unique=True, min_size=2, max_size=60))
    @settings(max_examples=30)
    def test_buckets_monotone_in_rank(self, ranking):
        assignment = assign_buckets(ranking, n_sites=100, bounds=[5, 20, 60])
        buckets = [assignment.bucket[s] for s in ranking]
        real = [b for b in buckets if b < assignment.absent_bucket]
        assert real == sorted(real)


class TestJaccardAlgebra:
    @given(
        st.sets(st.integers(0, 40)),
        st.sets(st.integers(0, 40)),
        st.sets(st.integers(0, 40)),
    )
    @settings(max_examples=60)
    def test_distance_triangle_inequality(self, a, b, c):
        """1 - JJ is a metric; the triangle inequality must hold."""
        def distance(x, y):
            return 1.0 - jaccard_index(x, y)

        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-12

    @given(st.sets(st.integers(0, 40), min_size=1))
    @settings(max_examples=20)
    def test_subset_formula(self, a):
        """JJ of a set with its half-subset is |half|/|a|."""
        half = set(list(a)[: len(a) // 2])
        if half:
            assert jaccard_index(a, half) == pytest.approx(len(half) / len(a))
