"""Tests for the Cloudflare-subset evaluation methodology."""

import numpy as np
import pytest

from repro.core.evaluation import CloudflareEvaluator


class TestEvaluateDay:
    def test_perfect_list_scores_high(self, small_world, small_engine, small_evaluator):
        """A hypothetical list equal to Cloudflare's own ranking must score
        JJ = rs = 1 against that metric."""
        from repro.providers.base import Granularity, RankedList, TopListProvider

        class OracleProvider(TopListProvider):
            name = "oracle"
            granularity = Granularity.DOMAIN

            def daily_list(self, day):
                ranking = small_engine.ranking(day, "all:requests")
                return RankedList("oracle", day, Granularity.DOMAIN, ranking)

        oracle = OracleProvider(small_world, small_engine.traffic)
        result = small_evaluator.evaluate_day(oracle, 0, "all:requests", 400)
        assert result.jaccard == pytest.approx(1.0)
        assert result.spearman == pytest.approx(1.0)

    def test_results_bounded(self, small_evaluator, small_providers):
        result = small_evaluator.evaluate_day(small_providers["alexa"], 0, "all:ips", 400)
        assert 0.0 <= result.jaccard <= 1.0
        assert -1.0 <= result.spearman <= 1.0
        assert result.intersection <= result.n

    def test_crux_spearman_is_nan(self, small_evaluator, small_providers):
        result = small_evaluator.evaluate_day(small_providers["crux"], 0, "all:requests", 400)
        assert np.isnan(result.spearman)
        assert result.jaccard > 0

    def test_cf_slice_only_cf_sites(self, small_world, small_evaluator, small_providers):
        normalized = small_evaluator.normalized(small_providers["alexa"], 0)
        cf_slice = small_evaluator.cloudflare_slice(normalized, 400)
        assert small_world.sites.cf_served[cf_slice].all()

    def test_month_averages_days(self, small_evaluator, small_providers):
        days = [0, 1, 2]
        month = small_evaluator.evaluate_month(
            small_providers["majestic"], "all:requests", 400, days=days
        )
        dailies = [
            small_evaluator.evaluate_day(small_providers["majestic"], d, "all:requests", 400)
            for d in days
        ]
        assert month.jaccard == pytest.approx(np.mean([d.jaccard for d in dailies]))
        assert month.days == 3

    def test_matrix_shape(self, small_evaluator, small_providers):
        matrix = small_evaluator.evaluate_matrix(
            {"alexa": small_providers["alexa"], "crux": small_providers["crux"]},
            ["all:requests", "all:ips"],
            300,
            days=[0],
        )
        assert set(matrix) == {"alexa", "crux"}
        assert set(matrix["alexa"]) == {"all:requests", "all:ips"}


class TestCoverage:
    def test_coverage_bounds(self, small_evaluator, small_providers):
        for provider in small_providers.values():
            value = small_evaluator.coverage(provider, 300)
            assert 0.0 <= value <= 1.0

    def test_secrank_coverage_lowest_at_full_list(self, small_evaluator, small_providers):
        full = small_evaluator.engine.world.config.list_length
        coverages = {
            name: small_evaluator.coverage(provider, full)
            for name, provider in small_providers.items()
        }
        assert coverages["secrank"] == min(coverages.values())

    def test_override_cf_flags(self, small_world, small_engine, small_providers):
        """An all-True override makes coverage 1 for domain lists."""
        everything = np.ones(small_world.n_sites, dtype=bool)
        evaluator = CloudflareEvaluator(small_world, small_engine, cf_served=everything)
        assert evaluator.coverage(small_providers["alexa"], 200) == 1.0
