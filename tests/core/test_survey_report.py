"""Tests for the survey dataset and the text report renderers."""

import numpy as np

from repro.core.report import (
    format_heatmap,
    format_movement,
    format_series,
    format_table,
)
from repro.core.survey import SURVEY_2021, usage_statistics


class TestSurvey:
    def test_paper_aggregates(self):
        """The encoded per-venue data must reproduce Section 2's numbers."""
        stats = usage_statistics()
        assert stats.papers == 59
        assert stats.set_only == 50
        assert stats.rank_using == 9
        assert stats.both == 5
        assert round(100 * stats.set_only_fraction) == 85
        assert round(100 * stats.rank_using_fraction) == 15
        assert round(100 * stats.both_fraction) == 8

    def test_venues(self):
        venues = {v.venue for v in SURVEY_2021}
        assert venues == {"USENIX Security", "IMC", "NSDI", "SOUPS", "NDSS", "WWW"}

    def test_totals_positive(self):
        assert all(v.total >= 0 for v in SURVEY_2021)


class TestFormatTable:
    def test_alignment_and_values(self):
        text = format_table(["name", "x"], [["a", 1.234], ["bb", float("nan")]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "1.23" in text
        assert "-" in lines[-1]  # nan rendered as dash

    def test_title(self):
        text = format_table(["c"], [[1]], title="Title")
        assert text.startswith("Title")

    def test_none_rendered_as_dash(self):
        text = format_table(["c"], [[None]])
        assert text.splitlines()[-1].strip() == "-"


class TestFormatHeatmap:
    def test_cells_present(self):
        values = {("r1", "c1"): 0.25, ("r1", "c2"): 0.9}
        text = format_heatmap(["r1"], ["c1", "c2"], values)
        assert "0.25" in text
        assert "0.90" in text

    def test_missing_cell_dash(self):
        text = format_heatmap(["r"], ["c"], {})
        assert "-" in text

    def test_shading_monotone(self):
        low = format_heatmap(["r"], ["c"], {("r", "c"): 0.05})
        high = format_heatmap(["r"], ["c"], {("r", "c"): 0.95})
        shades = " .:-=+*#%@"
        low_glyph = low[low.index("0.05") + 4]
        high_glyph = high[high.index("0.95") + 4]
        assert shades.index(high_glyph) > shades.index(low_glyph)


class TestFormatSeries:
    def test_renders_min_max(self):
        text = format_series("x", [0.1, 0.5, 0.9])
        assert "min=0.100" in text
        assert "max=0.900" in text

    def test_nan_tolerated(self):
        text = format_series("x", [0.1, float("nan"), 0.3])
        assert "min=0.100" in text

    def test_all_nan(self):
        assert "no data" in format_series("x", [float("nan")])


class TestFormatMovement:
    def test_matrix_rendered(self):
        counts = np.arange(9).reshape(3, 3)
        text = format_movement(["1K", "10K"], counts, "alexa")
        assert "alexa" in text
        assert "absent" in text
        assert "8" in text
