"""Tests for rank-magnitude buckets and movement matrices."""

import numpy as np
import pytest

from repro.core.buckets import (
    assign_buckets,
    bookend_consensus_buckets,
    movement_matrix,
)
from repro.core.normalize import normalize_list


class TestAssignBuckets:
    def test_basic_assignment(self):
        ranking = [7, 3, 9, 1, 5]
        assignment = assign_buckets(ranking, n_sites=10, bounds=[2, 4])
        assert assignment.bucket[7] == 0
        assert assignment.bucket[3] == 0
        assert assignment.bucket[9] == 1
        assert assignment.bucket[1] == 1
        assert assignment.bucket[5] == assignment.absent_bucket  # beyond last bound
        assert assignment.bucket[0] == assignment.absent_bucket  # not ranked

    def test_explicit_ranks(self):
        assignment = assign_buckets(
            [4, 8], n_sites=10, bounds=[5, 10], ranks=[2, 9]
        )
        assert assignment.bucket[4] == 0
        assert assignment.bucket[8] == 1

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            assign_buckets([1], 5, bounds=[4, 2])
        with pytest.raises(ValueError):
            assign_buckets([1], 5, bounds=[2, 2])

    def test_ranks_alignment_validated(self):
        with pytest.raises(ValueError):
            assign_buckets([1, 2], 5, bounds=[3], ranks=[1])

    def test_sites_in_bucket(self):
        assignment = assign_buckets([3, 1, 4], n_sites=5, bounds=[1, 3])
        assert assignment.sites_in_bucket(0).tolist() == [3]
        assert sorted(assignment.sites_in_bucket(1).tolist()) == [1, 4]


class TestBookendConsensus:
    def test_consensus_subset_of_cf(self, small_world, small_engine):
        bounds = small_world.config.bucket_sizes
        assignment, consensus = bookend_consensus_buckets(small_engine, 0, bounds)
        assert small_world.sites.cf_served[consensus].all()
        assert (assignment.bucket[consensus] < assignment.absent_bucket).all()

    def test_consensus_agrees_across_bookends(self, small_world, small_engine):
        bounds = small_world.config.bucket_sizes
        upper, consensus = bookend_consensus_buckets(small_engine, 0, bounds)
        lower = assign_buckets(
            small_engine.ranking(0, "root:requests"), small_world.n_sites, bounds
        )
        assert (upper.bucket[consensus] == lower.bucket[consensus]).all()

    def test_consensus_nonempty(self, small_engine, small_world):
        _, consensus = bookend_consensus_buckets(
            small_engine, 0, small_world.config.bucket_sizes
        )
        assert len(consensus) > 50


class TestMovementMatrix:
    @pytest.fixture(scope="class")
    def matrices(self, small_world, small_engine, small_providers):
        bounds = small_world.config.bucket_sizes
        assignment, consensus = bookend_consensus_buckets(small_engine, 0, bounds)
        out = {}
        for name in ("alexa", "crux"):
            normalized = normalize_list(small_world, small_providers[name].daily_list(0))
            out[name] = movement_matrix(
                assignment, consensus, normalized, small_world.sites.cf_served
            )
        return out

    def test_counts_conserve_tracked_sites(self, matrices, small_world, small_engine):
        bounds = small_world.config.bucket_sizes
        _, consensus = bookend_consensus_buckets(small_engine, 0, bounds)
        tracked = int(small_world.sites.cf_served[consensus].sum())
        for matrix in matrices.values():
            assert matrix.counts.sum() == tracked

    def test_fraction_bounds(self, matrices):
        for matrix in matrices.values():
            for bucket in range(matrix.n_buckets):
                value = matrix.overranked_fraction(bucket)
                assert np.isnan(value) or 0.0 <= value <= 1.0

    def test_crux_less_overranked_than_alexa(self, matrices):
        """The Section 5.3 headline: CrUX misplaces far fewer domains."""
        # Aggregate over the two middle buckets for statistical stability
        # at test scale.
        def total_overranked(matrix):
            over = agree = 0
            for bucket in (1, 2):
                column = matrix.counts[: matrix.n_buckets, bucket]
                over += column[bucket + 1:].sum()
                agree += column.sum()
            return over / max(1, agree)

        assert total_overranked(matrices["crux"]) <= total_overranked(matrices["alexa"])

    def test_agreement_fraction_bounds(self, matrices):
        for matrix in matrices.values():
            agreement = matrix.agreement_fraction()
            assert 0.0 <= agreement <= 1.0

    def test_min_gap_monotone(self, matrices):
        matrix = matrices["alexa"]
        one = matrix.overranked_fraction(1, min_gap=1)
        two = matrix.overranked_fraction(1, min_gap=2)
        if not (np.isnan(one) or np.isnan(two)):
            assert two <= one
