"""Tests for the platform/country bias analysis."""

import numpy as np
import pytest

from repro.core.bias import (
    compare_list_to_chrome,
    country_bias,
    intra_chrome_consistency,
    platform_bias,
)
from repro.core.normalize import normalize_list
from repro.telemetry.chrome import TELEMETRY_METRICS
from repro.worldgen.countries import TELEMETRY_COUNTRIES, country_index


@pytest.fixture(scope="module")
def normalized_lists(small_world, small_providers):
    return {
        name: normalize_list(small_world, small_providers[name].daily_list(0))
        for name in ("alexa", "umbrella", "secrank", "majestic")
    }


class TestCompare:
    def test_bounded(self, small_telemetry, normalized_lists):
        jj, rho = compare_list_to_chrome(
            small_telemetry, normalized_lists["alexa"], "completed",
            country_index("us"), 0, 300,
        )
        assert 0.0 <= jj <= 1.0
        assert np.isnan(rho) or -1.0 <= rho <= 1.0


class TestPlatformBias:
    def test_structure(self, small_telemetry, normalized_lists):
        cells = platform_bias(small_telemetry, normalized_lists, 300)
        assert set(cells) == set(normalized_lists)
        for per_platform in cells.values():
            assert set(per_platform) == {"windows", "android"}

    def test_alexa_desktop_skew(self, small_telemetry, normalized_lists):
        """Figure 4: Alexa (desktop-only panel) matches Windows better."""
        cells = platform_bias(small_telemetry, {"alexa": normalized_lists["alexa"]}, 300)
        assert cells["alexa"]["windows"].jaccard > cells["alexa"]["android"].jaccard

    def test_country_subset(self, small_telemetry, normalized_lists):
        cells = platform_bias(
            small_telemetry, normalized_lists, 300, countries=("us", "jp")
        )
        assert set(cells) == set(normalized_lists)


class TestCountryBias:
    @pytest.fixture(scope="class")
    def cells(self, small_telemetry, normalized_lists):
        return country_bias(small_telemetry, normalized_lists, 300)

    def test_all_countries_present(self, cells):
        for per_country in cells.values():
            assert set(per_country) == set(TELEMETRY_COUNTRIES)

    def test_secrank_matches_china_best(self, cells):
        """Figure 7: Secrank's only strength is China."""
        secrank = cells["secrank"]
        china = secrank["cn"].jaccard
        others = [secrank[c].jaccard for c in TELEMETRY_COUNTRIES if c != "cn"]
        assert china > max(others)

    def test_umbrella_matches_us_well(self, cells):
        umbrella = cells["umbrella"]
        us = umbrella["us"].jaccard
        median = np.median([umbrella[c].jaccard for c in TELEMETRY_COUNTRIES])
        assert us > median

    def test_japan_poorly_matched(self, cells):
        """All lists do badly on Japan's self-contained web."""
        for name, per_country in cells.items():
            if name == "secrank":
                continue  # Secrank is bad everywhere but China.
            jp = per_country["jp"].jaccard
            median = np.median([per_country[c].jaccard for c in TELEMETRY_COUNTRIES])
            assert jp <= median * 1.1, name


class TestIntraChrome:
    def test_pairs_and_bounds(self, small_telemetry):
        cells = intra_chrome_consistency(small_telemetry, 300)
        expected_pairs = {
            (a, b)
            for i, a in enumerate(TELEMETRY_METRICS)
            for b in TELEMETRY_METRICS[i + 1:]
        }
        assert set(cells) == expected_pairs
        for cell in cells.values():
            assert 0.0 <= cell.jaccard <= 1.0

    def test_completed_initiated_most_similar(self, small_telemetry):
        """Initiated and completed pageloads differ only by completion
        rate; time-on-site differs by dwell too (Figure 6 shape)."""
        cells = intra_chrome_consistency(small_telemetry, 300)
        ci = cells[("completed", "initiated")].jaccard
        ct = cells[("completed", "time")].jaccard
        assert ci > ct

    def test_chrome_more_consistent_than_cloudflare(self, small_telemetry, small_engine):
        """Figure 6 vs Figure 1: Chrome metrics agree more than CF ones."""
        from repro.core.similarity import pairwise_jaccard

        chrome_cells = intra_chrome_consistency(small_telemetry, 300)
        chrome_min = min(c.jaccard for c in chrome_cells.values())

        depth = 300
        cf_lists = {
            combo: small_engine.top(0, combo, depth)
            for combo in small_engine.FINAL_SEVEN
        }
        jj = pairwise_jaccard(cf_lists)
        cf_min = min(v for (a, b), v in jj.items() if a != b)
        assert chrome_min > cf_min
