"""Tests for PSL-based list normalization."""

import numpy as np
import pytest

from repro.core.normalize import (
    deviation_by_magnitude,
    normalize_list,
    normalize_strings,
    psl_deviation_fraction,
)
from repro.providers.base import Granularity, RankedList


class TestNormalizeStrings:
    def test_min_rank_grouping(self):
        entries = ["www.example.com", "other.net", "example.com", "api.example.com"]
        domains, ranks = normalize_strings(entries)
        assert domains == ["example.com", "other.net"]
        assert ranks == [1, 2]

    def test_origins_reduced_to_host(self):
        entries = ["https://www.example.com", "http://example.com"]
        domains, ranks = normalize_strings(entries)
        assert domains == ["example.com"]
        assert ranks == [1]

    def test_bare_suffixes_dropped(self):
        domains, _ranks = normalize_strings(["com", "co.uk", "example.com"])
        assert domains == ["example.com"]

    def test_malformed_dropped(self):
        domains, _ranks = normalize_strings(["..bad..", "https://bad/path", "ok.com"])
        assert domains == ["ok.com"]

    def test_multilevel_suffix(self):
        domains, _ = normalize_strings(["news.bbc.co.uk", "www.bbc.co.uk"])
        assert domains == ["bbc.co.uk"]

    def test_idn_entries_folded_to_ace(self):
        domains, _ = normalize_strings(["www.bücher.de", "bücher.de"])
        assert domains == ["xn--bcher-kva.de"]

    def test_idn_deviation(self):
        from repro.core.normalize import psl_deviation_fraction

        assert psl_deviation_fraction(["bücher.de"]) == 0.0
        assert psl_deviation_fraction(["www.bücher.de"]) == 1.0


class TestNormalizeList:
    def test_domain_list_is_identity(self, small_world, small_providers):
        ranked = small_providers["majestic"].daily_list(0)
        normalized = normalize_list(small_world, ranked)
        assert np.array_equal(
            normalized.sites, small_world.names.site[ranked.name_rows]
        )
        assert np.array_equal(normalized.ranks, np.arange(1, len(ranked) + 1))

    def test_fqdn_list_folds(self, small_world, small_providers):
        ranked = small_providers["umbrella"].daily_list(0)
        normalized = normalize_list(small_world, ranked)
        assert len(normalized) < len(ranked)  # FQDNs folded + infra dropped
        assert (normalized.sites >= 0).all()
        assert len(np.unique(normalized.sites)) == len(normalized)

    def test_ranks_increasing(self, small_world, small_providers):
        for name in ("umbrella", "crux", "alexa"):
            normalized = normalize_list(small_world, small_providers[name].daily_list(0))
            assert (np.diff(normalized.ranks) > 0).all(), name

    def test_min_rank_wins(self, small_world):
        # Build a synthetic list: site 5's service FQDN first, then another
        # FQDN of the same site; the domain should get rank 1.
        from repro.worldgen.nametable import NameKind

        names = small_world.names
        rows = names.rows_of_kind(NameKind.FQDN)
        site5_rows = rows[names.site[rows] == 5][:2]
        assert len(site5_rows) == 2
        ranked = RankedList("test", 0, Granularity.FQDN, np.array(site5_rows))
        normalized = normalize_list(small_world, ranked)
        assert normalized.sites.tolist() == [5]
        assert normalized.ranks.tolist() == [1]

    def test_top_sites_by_original_rank(self, small_world, small_providers):
        normalized = normalize_list(small_world, small_providers["umbrella"].daily_list(0))
        top = normalized.top_sites(100)
        assert (normalized.ranks[: len(top)] <= 100).all()
        assert len(top) <= 100

    def test_bucketed_flag_propagates(self, small_world, small_providers):
        normalized = normalize_list(small_world, small_providers["crux"].monthly_list())
        assert normalized.is_bucketed

    def test_unfolded_drops_fqdns_keeps_apexes(self, small_world, small_providers):
        """fold=False keeps only entries whose string IS the domain."""
        ranked = small_providers["umbrella"].daily_list(0)
        folded = normalize_list(small_world, ranked, fold=True)
        unfolded = normalize_list(small_world, ranked, fold=False)
        assert 0 < len(unfolded) < len(folded)
        # Every surviving site's best entry was its apex string.
        strings = small_world.names.strings
        kept = set(unfolded.sites.tolist())
        for site in list(kept)[:50]:
            assert small_world.sites.names[site] in ranked.strings(small_world)

    def test_unfolded_origins_vanish(self, small_world, small_providers):
        ranked = small_providers["crux"].monthly_list()
        unfolded = normalize_list(small_world, ranked, fold=False)
        assert len(unfolded) == 0

    def test_unfolded_equals_folded_for_domain_lists(self, small_world, small_providers):
        ranked = small_providers["majestic"].daily_list(0)
        folded = normalize_list(small_world, ranked, fold=True)
        unfolded = normalize_list(small_world, ranked, fold=False)
        assert np.array_equal(folded.sites, unfolded.sites)


class TestDeviation:
    def test_fraction_basic(self):
        entries = ["example.com", "www.example.com", "com", "b.net"]
        assert psl_deviation_fraction(entries) == pytest.approx(0.5)

    def test_origin_apex_does_not_deviate(self):
        assert psl_deviation_fraction(["https://example.com"]) == 0.0
        assert psl_deviation_fraction(["https://www.example.com"]) == 1.0

    def test_empty(self):
        assert psl_deviation_fraction([]) == 0.0

    def test_table2_shape(self, small_world, small_providers):
        """Domain lists ~0%; Umbrella and CrUX majorities deviate."""
        magnitudes = [200, 500]
        for name in ("alexa", "majestic", "secrank", "tranco"):
            ranked = small_providers[name].daily_list(0)
            deviation = deviation_by_magnitude(small_world, ranked, magnitudes)
            assert all(v < 0.02 for v in deviation.values()), name
        for name in ("umbrella", "crux"):
            ranked = small_providers[name].daily_list(0)
            deviation = deviation_by_magnitude(small_world, ranked, magnitudes)
            assert all(v > 0.35 for v in deviation.values()), name
