"""Runner tests: manifests, failure isolation, retry, result JSON."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import experiments as experiments_mod
from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.core.pipeline import clear_contexts
from repro.obs import Span, Tracer, stage_totals
from repro.runner import ExperimentOutcome, RunManifest, run_experiments
from repro.runner.manifest import build_timings
from repro.runner.parallel import _jsonable
from repro.store import SCHEMA_VERSION, ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)


def _tiny_experiment(ctx) -> ExperimentResult:
    return ExperimentResult(
        name="tiny",
        title="Tiny",
        data={"n_sites": ctx.world.n_sites},
        text=f"n_sites={ctx.world.n_sites}",
    )


_FLAKY_CALLS = {"count": 0}


def _flaky_experiment(ctx) -> ExperimentResult:
    _FLAKY_CALLS["count"] += 1
    if _FLAKY_CALLS["count"] == 1:
        raise RuntimeError("transient failure")
    return ExperimentResult(name="flaky", title="Flaky", data={}, text="recovered")


def _broken_experiment(ctx) -> ExperimentResult:
    raise ValueError("always broken")


def _dying_experiment(ctx) -> ExperimentResult:
    import os as _os

    _os._exit(9)  # simulated OOM-kill: the worker vanishes mid-task


def _spec(name, fn):
    return ExperimentSpec(
        id=name, title=name.title(), fn=fn, tags=("test",), required_artifacts=()
    )


@pytest.fixture()
def registry(monkeypatch):
    """SPECS extended with synthetic test experiments."""
    extended = dict(SPECS)
    for name, fn in (
        ("tiny", _tiny_experiment),
        ("flaky", _flaky_experiment),
        ("broken", _broken_experiment),
        ("dying", _dying_experiment),
    ):
        extended[name] = _spec(name, fn)
    monkeypatch.setattr(experiments_mod, "SPECS", extended)
    monkeypatch.setattr("repro.runner.parallel.SPECS", extended)
    _FLAKY_CALLS["count"] = 0
    clear_contexts()
    return extended


class TestInlineRunner:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"], _CONFIG)

    def test_success_payload_and_manifest(self, registry, tmp_path):
        payloads, manifest, manifest_file = run_experiments(
            ["tiny"], _CONFIG, cache_dir=tmp_path / "store"
        )
        assert payloads[0]["ok"] and payloads[0]["text"] == "n_sites=400"
        assert manifest_file is not None and manifest_file.exists()

        outcome = manifest.outcomes[0]
        assert outcome.name == "tiny"
        assert outcome.ok and outcome.attempts == 1 and outcome.error is None
        assert outcome.seconds > 0 and outcome.worker_pid > 0
        assert outcome.text_sha256 == ExperimentOutcome.digest("n_sites=400")
        assert outcome.cache, "store-backed run must attribute cache traffic"

        # The manifest on disk round-trips.
        reloaded = RunManifest.from_dict(json.loads(manifest_file.read_text()))
        assert reloaded.config == json.loads(_CONFIG.to_json())
        assert reloaded.schema_version == SCHEMA_VERSION
        assert reloaded.outcomes[0].text_sha256 == outcome.text_sha256

    def test_failure_is_isolated_and_retried(self, registry, tmp_path):
        payloads, manifest, _ = run_experiments(
            ["broken", "tiny"], _CONFIG, cache_dir=tmp_path / "store"
        )
        by_name = {payload["name"]: payload for payload in payloads}
        assert not by_name["broken"]["ok"]
        assert by_name["tiny"]["ok"], "one failure must not abort the batch"

        broken = next(o for o in manifest.outcomes if o.name == "broken")
        assert broken.attempts == 2, "failed experiments are retried once"
        assert "always broken" in broken.error
        assert manifest.failures == [broken]

    def test_transient_failure_recovers_on_retry(self, registry):
        payloads, manifest, _ = run_experiments(["flaky"], _CONFIG)
        assert payloads[0]["ok"] and payloads[0]["text"] == "recovered"
        assert manifest.outcomes[0].attempts == 2
        assert manifest.outcomes[0].error is None

    def test_seconds_are_cumulative_across_attempts(self, registry):
        # The manifest used to report only the final attempt's wall time,
        # hiding the failed first attempt entirely.
        _, manifest, _ = run_experiments(["flaky"], _CONFIG)
        outcome = manifest.outcomes[0]
        assert len(outcome.per_attempt) == 2
        assert all(seconds > 0 for seconds in outcome.per_attempt)
        # Cumulative wall includes the attempts plus the retry backoff.
        assert outcome.seconds >= sum(outcome.per_attempt)

    def test_single_attempt_per_attempt_shape(self, registry):
        _, manifest, _ = run_experiments(["tiny"], _CONFIG)
        outcome = manifest.outcomes[0]
        assert len(outcome.per_attempt) == 1
        assert outcome.seconds >= outcome.per_attempt[0]

    def test_result_artifact_persisted(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        run_experiments(["tiny"], _CONFIG, cache_dir=store_dir)
        record = ArtifactStore(store_dir).get_json(config_key(_CONFIG), "results/tiny")
        assert record is not None
        assert record["name"] == "tiny"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["config"] == json.loads(_CONFIG.to_json())
        assert record["data"] == {"n_sites": 400}

    def test_no_cache_dir_means_no_manifest_file(self, registry):
        payloads, manifest, manifest_file = run_experiments(["tiny"], _CONFIG)
        assert manifest_file is None
        assert payloads[0]["ok"]
        assert manifest.cache_dir is None
        assert manifest.outcomes[0].cache == {}

    def test_explicit_manifest_path(self, registry, tmp_path):
        target = tmp_path / "deep" / "run.json"
        _, _, manifest_file = run_experiments(["tiny"], _CONFIG, manifest_path=target)
        assert manifest_file == target and target.exists()

    def test_keep_data_attaches_json_projection(self, registry):
        payloads, _, _ = run_experiments(["tiny"], _CONFIG, keep_data=True)
        assert payloads[0]["data"] == {"n_sites": 400}
        json.dumps(payloads[0]["data"])  # plain JSON types only

        payloads, _, _ = run_experiments(["tiny"], _CONFIG)
        assert "data" not in payloads[0], "data projection is opt-in"

    def test_outcomes_have_no_golden_status_outside_qa(self, registry):
        _, manifest, _ = run_experiments(["tiny"], _CONFIG)
        assert manifest.outcomes[0].golden_status is None
        assert manifest.qa is None
        assert "golden_status" in json.dumps(manifest.to_dict())


class TestPoolRunner:
    def test_worker_death_does_not_fabricate_attempts(self, registry, tmp_path):
        # A pool worker that dies (OOM-kill shape) must be reported with
        # attempts=0 (the true count is unknown) and elapsed-since-submit
        # timing — and, since the pool is poisoned, never hang the batch.
        # Workers fork, so they inherit the monkeypatched registry.
        payloads, manifest, _ = run_experiments(
            ["dying", "tiny"], _CONFIG, jobs=2, cache_dir=tmp_path / "store"
        )
        dying = next(o for o in manifest.outcomes if o.name == "dying")
        assert not dying.ok
        assert dying.worker_died
        assert dying.attempts == 0
        assert dying.seconds > 0, "elapsed-since-submit, never fabricated"
        assert dying.worker_pid == 0, "the reporting pid is unknown"
        assert manifest.faults is not None
        assert manifest.faults["worker_deaths"] >= 1

    def test_keep_data_crosses_the_pool(self, tmp_path):
        # Real registry entries: keeps the pool test meaningful even under
        # spawn semantics, using the two cheapest genuine experiments.
        payloads, manifest, _ = run_experiments(
            ["survey", "table1"], _CONFIG, jobs=2, cache_dir=tmp_path / "store",
            keep_data=True,
        )
        by_name = {p["name"]: p for p in payloads}
        assert by_name["survey"]["ok"] and by_name["table1"]["ok"]
        for payload in payloads:
            json.dumps(payload["data"])  # projection survived pickling
        assert "coverage" in by_name["table1"]["data"]
        assert not manifest.failures


class TestTracedRunner:
    def test_trace_is_opt_in(self, registry):
        payloads, manifest, _ = run_experiments(["tiny"], _CONFIG)
        assert "trace" not in payloads[0]
        assert manifest.timings is None

    def test_traced_run_attaches_spans_and_timings(self, registry):
        payloads, manifest, _ = run_experiments(["tiny"], _CONFIG, trace=True)
        root = Span.from_dict(payloads[0]["trace"])
        assert root.name == "tiny"
        # _tiny_experiment touches ctx.world, so the context choke point
        # must have recorded the artifact-construction span.
        stage_names = [child.name for child in root.children]
        assert "context/world" in stage_names
        assert set(manifest.timings) == {"experiments", "stages"}
        assert set(manifest.timings["experiments"]) == {"tiny"}
        assert "context/world" in manifest.timings["stages"]

    def test_timings_round_trip_through_manifest_file(self, registry, tmp_path):
        target = tmp_path / "run.json"
        _, manifest, _ = run_experiments(
            ["tiny"], _CONFIG, manifest_path=target, trace=True
        )
        reloaded = RunManifest.from_dict(json.loads(target.read_text()))
        assert reloaded.timings == manifest.timings
        rebuilt = Span.from_dict(reloaded.timings["experiments"]["tiny"])
        assert stage_totals(rebuilt) == pytest.approx(
            reloaded.timings["stages"]
        )

    def test_build_timings_merges_across_workers(self):
        # Two root spans as two pool workers would serialize them: the
        # merged stage view sums wall time for the shared stage name.
        traces = {}
        for name in ("a", "b"):
            tracer = Tracer(name)
            with tracer.span("context/world"):
                pass
            traces[name] = tracer.finish().to_dict()
        timings = build_timings(traces)
        assert set(timings["experiments"]) == {"a", "b"}
        expected = sum(
            stage_totals(Span.from_dict(trace))["context/world"]
            for trace in traces.values()
        )
        assert timings["stages"]["context/world"] == pytest.approx(expected)

    def test_traces_merge_from_pool_workers(self, tmp_path):
        # Real registry entries (workers cannot see monkeypatched specs):
        # both experiments' span trees must land in one timings block.
        payloads, manifest, _ = run_experiments(
            ["survey", "table1"], _CONFIG, jobs=2,
            cache_dir=tmp_path / "store", trace=True,
        )
        assert all(isinstance(p.get("trace"), dict) for p in payloads)
        assert set(manifest.timings["experiments"]) == {"survey", "table1"}
        # table1 walks the full artifact chain in some worker process.
        assert "context/world" in manifest.timings["stages"]


class TestManifestAggregation:
    def _outcome(self, name, cache):
        return ExperimentOutcome(name=name, ok=True, seconds=1.0, worker_pid=1, cache=cache)

    def test_cache_totals_sum_by_kind(self):
        manifest = RunManifest(
            config={}, schema_version=SCHEMA_VERSION, jobs=2, cache_dir=None,
            started_unix=0.0,
            outcomes=[
                self._outcome("a", {"world": {"hits": 1}, "traffic": {"misses": 2, "puts": 2}}),
                self._outcome("b", {"world": {"hits": 1}, "traffic": {"hits": 2}}),
            ],
        )
        totals = manifest.cache_totals()
        assert totals["world"]["hits"] == 2
        assert totals["traffic"] == {"hits": 2, "misses": 2, "puts": 2}
        assert manifest.total_hits() == 4


class TestJsonable:
    def test_scalars_and_numpy(self):
        assert _jsonable(np.float64(0.5)) == 0.5
        assert _jsonable(np.int32(7)) == 7
        assert _jsonable(None) is None

    def test_small_array_inlined_large_summarized(self):
        assert _jsonable(np.arange(3)) == [0, 1, 2]
        summary = _jsonable(np.zeros((100, 100)))
        assert summary == {"__array__": True, "shape": [100, 100], "dtype": "float64"}

    def test_tuple_keys_joined(self):
        assert _jsonable({("alexa", "pageloads"): 0.4}) == {"alexa|pageloads": 0.4}

    def test_opaque_objects_reprd(self):
        value = _jsonable({"obj": object()})
        assert isinstance(value["obj"], str)
        json.dumps(value)  # everything must serialize
