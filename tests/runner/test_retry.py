"""RetryPolicy tests: schedule math, determinism, runner integration."""

from __future__ import annotations

import pytest

from repro.core import experiments as experiments_mod
from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.core.pipeline import clear_contexts
from repro.runner import NO_RETRY, RetryPolicy, run_experiments
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)

_CALLS = {"count": 0}


def _twice_flaky_experiment(ctx) -> ExperimentResult:
    _CALLS["count"] += 1
    if _CALLS["count"] <= 2:
        raise RuntimeError(f"transient failure {_CALLS['count']}")
    return ExperimentResult(
        name="twice_flaky", title="Twice Flaky", data={}, text="third time lucky"
    )


@pytest.fixture()
def registry(monkeypatch):
    extended = dict(SPECS)
    extended["twice_flaky"] = ExperimentSpec(
        id="twice_flaky", title="Twice Flaky", fn=_twice_flaky_experiment,
        tags=("test",), required_artifacts=(),
    )
    monkeypatch.setattr(experiments_mod, "SPECS", extended)
    monkeypatch.setattr("repro.runner.parallel.SPECS", extended)
    _CALLS["count"] = 0
    clear_contexts()
    return extended


class TestPolicyValidation:
    def test_defaults_are_two_attempts(self):
        policy = RetryPolicy()
        assert list(policy.attempts()) == [1, 2]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_shrinking_multiplier_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestSchedule:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.0,
        )
        delays = [policy.delay(n) for n in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        assert policy.delay(1, "fig1") == policy.delay(1, "fig1")
        assert policy.delay(1, "fig1") != policy.delay(1, "fig2")
        for key in ("fig1", "fig2", "table1"):
            assert 0.75 <= policy.delay(1, key) <= 1.25

    def test_no_retry_sentinel(self):
        assert list(NO_RETRY.attempts()) == [1]

    def test_json_round_trip(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=3.0,
                             max_delay=1.5, jitter=0.1)
        assert RetryPolicy.from_json(policy.to_json()) == policy


class TestRunnerIntegration:
    def test_three_attempt_policy_outlasts_double_flake(self, registry):
        policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
        payloads, manifest, _ = run_experiments(
            ["twice_flaky"], _CONFIG, retry=policy
        )
        outcome = manifest.outcomes[0]
        assert payloads[0]["ok"] and payloads[0]["text"] == "third time lucky"
        assert outcome.attempts == 3
        assert len(outcome.per_attempt) == 3
        assert outcome.seconds >= sum(outcome.per_attempt)

    def test_default_policy_gives_up_after_two(self, registry):
        payloads, manifest, _ = run_experiments(["twice_flaky"], _CONFIG)
        assert not payloads[0]["ok"]
        assert manifest.outcomes[0].attempts == 2
        assert "transient failure 2" in manifest.outcomes[0].error

    def test_single_attempt_policy_never_retries(self, registry):
        payloads, manifest, _ = run_experiments(
            ["twice_flaky"], _CONFIG, retry=NO_RETRY
        )
        assert not payloads[0]["ok"]
        assert manifest.outcomes[0].attempts == 1
        assert _CALLS["count"] == 1
