"""Resumable-run tests: skip verification, interrupts, partial manifests."""

from __future__ import annotations

import json

import pytest

from repro.core import experiments as experiments_mod
from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.core.pipeline import clear_contexts
from repro.runner import run_experiments
from repro.store import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)

_STATE = {"broken_calls": 0, "fixed": False}


def _tiny_experiment(ctx) -> ExperimentResult:
    return ExperimentResult(
        name="tiny", title="Tiny", data={"n_sites": ctx.world.n_sites},
        text=f"n_sites={ctx.world.n_sites}",
    )


def _fixable_experiment(ctx) -> ExperimentResult:
    _STATE["broken_calls"] += 1
    if not _STATE["fixed"]:
        raise RuntimeError("still broken")
    return ExperimentResult(name="fixable", title="Fixable", data={}, text="fixed")


def _interrupting_experiment(ctx) -> ExperimentResult:
    raise KeyboardInterrupt


@pytest.fixture()
def registry(monkeypatch):
    extended = dict(SPECS)
    for name, fn in (
        ("tiny", _tiny_experiment),
        ("fixable", _fixable_experiment),
        ("interrupting", _interrupting_experiment),
    ):
        extended[name] = ExperimentSpec(
            id=name, title=name.title(), fn=fn, tags=("test",),
            required_artifacts=(),
        )
    monkeypatch.setattr(experiments_mod, "SPECS", extended)
    monkeypatch.setattr("repro.runner.parallel.SPECS", extended)
    _STATE["broken_calls"] = 0
    _STATE["fixed"] = False
    clear_contexts()
    return extended


class TestResume:
    def test_verified_outcomes_are_skipped(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, manifest_path=manifest_path
        )
        payloads, manifest, _ = run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir,
            manifest_path=tmp_path / "run2.json", resume_manifest=manifest_path,
        )
        outcome = manifest.outcomes[0]
        assert outcome.ok and outcome.resumed
        assert outcome.attempts == 0 and outcome.seconds == 0.0
        assert payloads[0]["text"] == "n_sites=400"

    def test_resumed_payload_carries_data_when_asked(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, manifest_path=manifest_path
        )
        payloads, _, _ = run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, keep_data=True,
            resume_manifest=manifest_path,
        )
        assert payloads[0]["data"] == {"n_sites": 400}

    def test_only_failures_re_run(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["fixable", "tiny"], _CONFIG, cache_dir=store_dir,
            manifest_path=manifest_path,
        )
        calls_before = _STATE["broken_calls"]
        _STATE["fixed"] = True
        payloads, manifest, _ = run_experiments(
            ["fixable", "tiny"], _CONFIG, cache_dir=store_dir,
            resume_manifest=manifest_path,
        )
        by_name = {o.name: o for o in manifest.outcomes}
        assert by_name["tiny"].resumed, "the ok experiment is skipped"
        assert not by_name["fixable"].resumed, "the failure re-runs"
        assert by_name["fixable"].ok
        assert _STATE["broken_calls"] == calls_before + 1

    def test_config_mismatch_is_an_error(self, registry, tmp_path):
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=tmp_path / "store",
            manifest_path=manifest_path,
        )
        other = WorldConfig(n_sites=500, n_days=4, seed=11)
        with pytest.raises(ValueError, match="different world config"):
            run_experiments(
                ["tiny"], other, cache_dir=tmp_path / "store",
                resume_manifest=manifest_path,
            )

    def test_missing_result_blob_forces_re_run(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, manifest_path=manifest_path
        )
        # Simulate cache eviction between the runs: the manifest claims ok,
        # but the bytes are gone, so resume must not trust it.
        store = ArtifactStore(store_dir)
        blob_path = next(
            p for p in store._iter_files() if "results/tiny" in str(p)
        )
        blob_path.unlink()
        _, manifest, _ = run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, resume_manifest=manifest_path
        )
        outcome = manifest.outcomes[0]
        assert outcome.ok and not outcome.resumed
        assert outcome.attempts == 1

    def test_tampered_result_blob_forces_re_run(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, manifest_path=manifest_path
        )
        # Rewrite the cached result with different text: the store checksum
        # is valid but the manifest text digest no longer matches.
        store = ArtifactStore(store_dir)
        blob = store.get_json(config_key(_CONFIG), "results/tiny")
        blob["text"] = "tampered"
        store.put_json(config_key(_CONFIG), "results/tiny", blob)
        _, manifest, _ = run_experiments(
            ["tiny"], _CONFIG, cache_dir=store_dir, resume_manifest=manifest_path
        )
        assert not manifest.outcomes[0].resumed

    def test_resume_without_cache_runs_everything(self, registry, tmp_path):
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny"], _CONFIG, cache_dir=tmp_path / "store",
            manifest_path=manifest_path,
        )
        _, manifest, _ = run_experiments(
            ["tiny"], _CONFIG, resume_manifest=manifest_path
        )
        assert not manifest.outcomes[0].resumed


class TestInterrupt:
    def test_inline_interrupt_writes_partial_manifest(self, registry, tmp_path):
        manifest_path = tmp_path / "run.json"
        payloads, manifest, manifest_file = run_experiments(
            ["tiny", "interrupting", "fixable"], _CONFIG,
            cache_dir=tmp_path / "store", manifest_path=manifest_path,
        )
        assert manifest.interrupted
        assert manifest_file is not None and manifest_file.exists()
        by_name = {o.name: o for o in manifest.outcomes}
        assert by_name["tiny"].ok, "work done before the interrupt is kept"
        assert not by_name["interrupting"].ok
        assert not by_name["fixable"].ok
        assert "interrupted" in by_name["fixable"].error
        assert by_name["fixable"].attempts == 0
        reloaded = json.loads(manifest_path.read_text())
        assert reloaded["interrupted"] is True

    def test_resume_after_interrupt_skips_completed(self, registry, tmp_path):
        store_dir = tmp_path / "store"
        manifest_path = tmp_path / "run.json"
        run_experiments(
            ["tiny", "interrupting"], _CONFIG, cache_dir=store_dir,
            manifest_path=manifest_path,
        )
        _STATE["fixed"] = True
        payloads, manifest, _ = run_experiments(
            ["tiny", "fixable"], _CONFIG, cache_dir=store_dir,
            resume_manifest=manifest_path,
        )
        by_name = {o.name: o for o in manifest.outcomes}
        assert by_name["tiny"].resumed
        assert by_name["fixable"].ok and not by_name["fixable"].resumed
        assert not manifest.interrupted

    def test_pool_interrupt_writes_partial_manifest(self, registry, tmp_path,
                                                    monkeypatch):
        # Simulate ^C landing in the parent's wait loop: every pending
        # experiment is marked interrupted and the manifest still lands.
        def interrupted_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.runner.parallel.wait", interrupted_wait)
        manifest_path = tmp_path / "run.json"
        payloads, manifest, manifest_file = run_experiments(
            ["survey", "table1"], _CONFIG, jobs=2,
            cache_dir=tmp_path / "store", manifest_path=manifest_path,
        )
        assert manifest.interrupted
        assert manifest_file.exists()
        assert all(not o.ok for o in manifest.outcomes)
        assert all("interrupted" in o.error for o in manifest.outcomes)
