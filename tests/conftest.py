"""Shared fixtures: small deterministic worlds, built once per session."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

# Hypothesis profiles: exploratory locally, reproducible in automation.
# CI (or any run with REPRO_HYPOTHESIS_PROFILE=ci) derandomizes example
# generation so a property failure on a PR is replayable verbatim; local
# runs keep the default randomized search to keep finding new examples.
hypothesis_settings.register_profile("ci", derandomize=True)
hypothesis_settings.register_profile("dev")
hypothesis_settings.load_profile(
    os.environ.get(
        "REPRO_HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)

from repro.cdn.metrics import CdnMetricEngine
from repro.core.evaluation import CloudflareEvaluator
from repro.providers.registry import build_providers
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

#: Small world: big enough for statistical shape assertions.
SMALL_CONFIG = WorldConfig(n_sites=2500, n_days=8, seed=1234)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the default artifact store at a per-session temp directory.

    CLI defaults would otherwise write to the user's real cache during the
    test run; tests that want a specific store pass ``--cache-dir``.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-store"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

#: Tiny world: for record-level (event) tests.
TINY_CONFIG = WorldConfig(n_sites=300, n_days=4, seed=99)


@pytest.fixture(scope="session")
def small_world() -> World:
    """A 2.5k-site world shared by statistical tests."""
    return build_world(SMALL_CONFIG)


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """A 300-site world for event-level tests."""
    return build_world(TINY_CONFIG)


@pytest.fixture(scope="session")
def small_traffic(small_world: World) -> TrafficModel:
    """Traffic model over the small world."""
    return TrafficModel(small_world)


@pytest.fixture(scope="session")
def tiny_traffic(tiny_world: World) -> TrafficModel:
    """Traffic model over the tiny world."""
    return TrafficModel(tiny_world)


@pytest.fixture(scope="session")
def small_engine(small_world: World, small_traffic: TrafficModel) -> CdnMetricEngine:
    """CDN metric engine over the small world."""
    return CdnMetricEngine(small_world, small_traffic)


@pytest.fixture(scope="session")
def small_telemetry(small_world: World, small_traffic: TrafficModel) -> ChromeTelemetry:
    """Chrome telemetry over the small world."""
    return ChromeTelemetry(small_world, small_traffic)


@pytest.fixture(scope="session")
def small_providers(
    small_world: World,
    small_traffic: TrafficModel,
    small_telemetry: ChromeTelemetry,
):
    """All seven providers over the small world."""
    return build_providers(small_world, small_traffic, small_telemetry)


@pytest.fixture(scope="session")
def small_evaluator(small_world: World, small_engine: CdnMetricEngine) -> CloudflareEvaluator:
    """Evaluator over the small world."""
    return CloudflareEvaluator(small_world, small_engine)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(42)
