"""Serving under data chaos: ``data_health`` on every list surface.

A module-scoped service armed with the default data plan (seed 11 over
an 8-day world) must mark every degraded day in its list bodies, key
ETags off the health-carrying snapshot (degraded can't collide with
clean), summarize degradation in the stability surface, admit the armed
state in the lists index, and expose the fired/digest accounting in
``/metricz`` with an in-run replay match.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.faults import inject as fault_inject
from repro.faults.plan import default_data_plan
from repro.loadgen.personas import validate_data_health
from repro.runner import run_experiments
from repro.serve.selftest import _fetch
from repro.serve.server import MetricsService, ServeSettings
from repro.store import ArtifactStore
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=8, seed=11, tranco_window=3)
_NAME = "dh1"
_SEED = 11


@pytest.fixture(scope="module")
def tiny_registry():
    def fn(ctx) -> ExperimentResult:
        return ExperimentResult(
            name=_NAME, title="Dh1",
            data={"n_sites": ctx.world.n_sites}, text="dh1",
        )

    SPECS[_NAME] = ExperimentSpec(
        id=_NAME, title="Dh1", fn=fn, tags=("test",), required_artifacts=(),
    )
    yield [_NAME]
    SPECS.pop(_NAME, None)


@pytest.fixture(scope="module")
def service(tiny_registry, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("datahealth-cache"))
    _payloads, manifest, _path = run_experiments(
        list(tiny_registry), _CONFIG, cache_dir=cache
    )
    assert not manifest.failures
    fault_inject.activate(default_data_plan(_SEED, _CONFIG.n_days))
    svc = MetricsService(
        _CONFIG, ArtifactStore(cache),
        settings=ServeSettings(
            port=0, max_inflight=8, queue_depth=8, deadline_ms=10000.0,
            drain_seconds=2.0,
        ),
        names=list(tiny_registry),
    )
    svc.warm()
    svc.start()
    yield svc
    fault_inject.activate(None)
    if not svc.draining:
        svc.drain(reason="test")


def _get_json(svc, path, headers=None):
    response = _fetch(svc.host, svc.port, path, headers=headers)
    assert response is not None, f"no response for {path}"
    return response, (json.loads(response.body) if response.status == 200
                      else None)


class TestListBodies:
    def test_every_provider_day_carries_well_formed_health(self, service):
        for provider in ("alexa", "umbrella", "majestic", "tranco"):
            for day in range(_CONFIG.n_days):
                response, body = _get_json(
                    service, f"/v1/lists/{provider}/{day}?k=20"
                )
                assert response.status == 200, (provider, day)
                health = body.get("data_health")
                assert health is not None, (provider, day)
                assert validate_data_health(health) is None, (
                    provider, day, health
                )

    def test_some_days_are_actually_degraded(self, service):
        degraded = set()
        for provider in ("alexa", "umbrella", "majestic"):
            for day in range(_CONFIG.n_days):
                _, body = _get_json(service,
                                    f"/v1/lists/{provider}/{day}?k=20")
                if body["data_health"]["degraded"]:
                    degraded.add(body["data_health"]["status"])
        assert degraded, "the default plan must degrade visible days"

    def test_day_zero_is_clean_everywhere(self, service):
        for provider in ("alexa", "umbrella", "majestic"):
            _, body = _get_json(service, f"/v1/lists/{provider}/0?k=20")
            assert body["data_health"]["status"] == "clean"
            assert body["data_health"]["degraded"] is False

    def test_tranco_component_faults_do_not_break_the_aggregate(
        self, service
    ):
        # Tranco is aggregated downstream of its own clean components
        # here; its wrapper health must be clean and the body complete.
        for day in range(_CONFIG.n_days):
            _, body = _get_json(service, f"/v1/lists/tranco/{day}?k=20")
            assert body["data_health"]["status"] == "clean"
            assert body["count"] == 20

    def test_degraded_day_revalidates_like_any_other(self, service):
        # Find a degraded day, then 304 it: the ETag is the version of
        # the health-carrying snapshot, so revalidation still works.
        for provider in ("alexa", "umbrella", "majestic"):
            for day in range(1, _CONFIG.n_days):
                response, body = _get_json(
                    service, f"/v1/lists/{provider}/{day}?k=20"
                )
                if not body["data_health"]["degraded"]:
                    continue
                etag = response.headers.get("etag")
                assert etag
                again = _fetch(service.host, service.port,
                               f"/v1/lists/{provider}/{day}?k=20",
                               headers={"If-None-Match": etag})
                assert again.status == 304
                return
        pytest.fail("no degraded day found")


class TestStabilityAndIndex:
    def test_stability_summarizes_degraded_days(self, service):
        _, body = _get_json(service, "/v1/lists/alexa/stability?k=50")
        health = body.get("data_health")
        assert health is not None
        assert isinstance(health["degraded_days"], int)
        assert isinstance(health["by_status"], dict)
        assert health["degraded_days"] == len(body["degraded_days"])

    def test_lists_index_admits_data_chaos(self, service):
        _, body = _get_json(service, "/v1/lists")
        assert body.get("data_chaos") is True

    def test_metricz_data_block_accounts_and_replays(self, service):
        # Force full resolution first so the fired set is complete.
        for provider in ("alexa", "umbrella", "majestic"):
            _get_json(service,
                      f"/v1/lists/{provider}/{_CONFIG.n_days - 1}?k=10")
        _, body = _get_json(service, "/metricz")
        data = body["data"]
        assert data["armed"] is True
        assert data["digest"] is not None
        assert data["digest"] == data["replay_digest"]
        assert set(data["fired"]) == {
            "data.day.missing", "data.day.stale_repeat",
            "data.day.truncated", "data.day.duplicate_ranks",
            "data.day.schema_drift", "data.provider.retired",
        }
        for name in ("alexa", "umbrella", "majestic"):
            assert data["providers"][name]["days_resolved"] == _CONFIG.n_days
