"""DrainController: single-shot triggering and signal wiring."""

from __future__ import annotations

import signal
import threading

from repro.serve.drain import DrainController


class TestRequest:
    def test_starts_unrequested(self):
        ctl = DrainController()
        assert not ctl.requested
        assert ctl.reason is None

    def test_first_reason_sticks(self):
        ctl = DrainController()
        ctl.request("SIGTERM")
        ctl.request("SIGINT")
        assert ctl.requested
        assert ctl.reason == "SIGTERM"

    def test_wait_returns_immediately_after_request(self):
        ctl = DrainController()
        ctl.request("stop")
        assert ctl.wait(timeout=0.0)

    def test_wait_times_out_without_request(self):
        ctl = DrainController()
        assert not ctl.wait(timeout=0.01)

    def test_wait_wakes_on_request_from_other_thread(self):
        ctl = DrainController()
        timer = threading.Timer(0.05, ctl.request, args=("stop",))
        timer.start()
        assert ctl.wait(timeout=2.0)
        timer.join()


class TestSignals:
    def test_install_routes_sigterm_and_restore_puts_back(self):
        ctl = DrainController()
        before = signal.getsignal(signal.SIGTERM)
        ctl.install()
        try:
            assert signal.getsignal(signal.SIGTERM) is not before
            signal.raise_signal(signal.SIGTERM)
            assert ctl.wait(timeout=2.0)
            assert ctl.reason == "SIGTERM"
        finally:
            ctl.restore()
        assert signal.getsignal(signal.SIGTERM) is before
