"""Serve-side transport hardening: header limits, client_gone
accounting, and the connection-lifetime reaper.

Contracts:

* requests past the service's header count/size limits answer 431 in
  the canonical envelope (token ``headers_too_large``) and close;
* stdlib parse-level rejects (bad request line, oversized request
  line) also answer in the envelope — never the stdlib HTML page;
* a client vanishing mid-response is a ``client_gone`` outcome in
  ``/metricz``, not breaker food and not a handler error;
* a connection that outlives ``connection_lifetime_seconds`` is
  reaped even when it keeps trickling bytes (slowloris), and the reap
  is counted.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.runner import run_experiments
from repro.serve.selftest import _fetch
from repro.serve.server import MetricsService, ServeSettings
from repro.store import ArtifactStore
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)
_NAMES = ("hd1", "hd2")


def _make_fn(name):
    def fn(ctx) -> ExperimentResult:
        return ExperimentResult(
            name=name, title=name.title(),
            data={"which": name}, text=name,
        )

    return fn


@pytest.fixture(scope="module")
def tiny_registry():
    for name in _NAMES:
        SPECS[name] = ExperimentSpec(
            id=name, title=name.title(), fn=_make_fn(name),
            tags=("test",), required_artifacts=(),
        )
    yield list(_NAMES)
    for name in _NAMES:
        SPECS.pop(name, None)


@pytest.fixture(scope="module")
def served_cache(tiny_registry, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("hardening-cache"))
    _payloads, manifest, _path = run_experiments(
        list(tiny_registry), _CONFIG, cache_dir=cache
    )
    assert not manifest.failures
    return cache


def _settings(**overrides):
    base = dict(
        port=0, max_inflight=4, queue_depth=4, deadline_ms=2000.0,
        breaker_threshold=2, breaker_cooldown_seconds=0.2,
        drain_seconds=2.0,
    )
    base.update(overrides)
    return ServeSettings(**base)


def _start(served_cache, names, **overrides):
    svc = MetricsService(
        _CONFIG, ArtifactStore(served_cache),
        settings=_settings(**overrides), names=list(names),
    )
    svc.warm()
    svc.start()
    return svc


@pytest.fixture()
def service(served_cache, tiny_registry):
    svc = _start(served_cache, tiny_registry)
    yield svc
    if not svc.draining:
        svc.drain()


def _raw_exchange(svc, payload: bytes, timeout: float = 3.0) -> bytes:
    with socket.create_connection((svc.host, svc.port), timeout=timeout) as conn:
        conn.settimeout(timeout)
        conn.sendall(payload)
        data = b""
        while True:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            data += chunk
        return data


def _parse(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, head, json.loads(body) if body else None


class TestHeaderLimits:
    def test_too_many_headers_answer_431_envelope(self, service):
        extras = "".join(f"X-Pad-{i}: {i}\r\n" for i in range(70))
        raw = _raw_exchange(
            service,
            (
                "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                f"{extras}Connection: close\r\n\r\n"
            ).encode(),
        )
        status, head, body = _parse(raw)
        assert status == 431
        assert body["error"] == "headers_too_large"
        assert b"Connection: close" in head

    def test_oversized_header_bytes_answer_431_envelope(self, service):
        big = "x" * 20000  # under the stdlib 64 KiB line cap, over ours
        raw = _raw_exchange(
            service,
            (
                "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                f"X-Big: {big}\r\nConnection: close\r\n\r\n"
            ).encode(),
        )
        status, _head, body = _parse(raw)
        assert status == 431
        assert body["error"] == "headers_too_large"

    def test_within_limits_still_serves(self, service):
        extras = "".join(f"X-Pad-{i}: {i}\r\n" for i in range(10))
        raw = _raw_exchange(
            service,
            (
                "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                f"{extras}Connection: close\r\n\r\n"
            ).encode(),
        )
        status, _head, body = _parse(raw)
        assert status == 200
        assert body["status"] == "alive"

    def test_limited_requests_are_counted(self, service):
        extras = "".join(f"X-Pad-{i}: {i}\r\n" for i in range(70))
        _raw_exchange(
            service,
            (
                "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                f"{extras}Connection: close\r\n\r\n"
            ).encode(),
        )
        metrics = json.loads(
            _fetch(service.host, service.port, "/metricz").body
        )
        assert metrics["connections"]["max_header_count"] == 64


class TestProtocolErrors:
    def test_bad_request_line_answers_in_envelope(self, service):
        raw = _raw_exchange(service, b"GARBAGE\r\n\r\n")
        status, head, body = _parse(raw)
        assert status == 400
        assert body["error"] == "bad_request"
        assert b"Content-Type: application/json" in head

    def test_protocol_errors_are_counted(self, service):
        _raw_exchange(service, b"GARBAGE\r\n\r\n")
        metrics = json.loads(
            _fetch(service.host, service.port, "/metricz").body
        )
        assert metrics["requests"]["protocol_errors"] >= 1


class TestClientGone:
    def test_broken_pipe_mid_response_counts_client_gone(self, service):
        class _GoneHandler:
            path = "/v1/experiments/hd1"
            headers = {}
            command = "GET"
            close_connection = False
            request_version = "HTTP/1.1"

            def send_response(self, *a, **k):
                raise BrokenPipeError("client went away")

            send_response_only = send_response

        service.handle(_GoneHandler())  # must not raise
        metrics = json.loads(
            _fetch(service.host, service.port, "/metricz").body
        )
        assert metrics["requests"]["client_gone"] == 1
        # The breaker never saw it: store state untouched.
        assert metrics["breaker"]["state"] == "closed"


class TestLifetimeReaper:
    def test_slowloris_connection_is_reaped(self, served_cache, tiny_registry):
        svc = _start(
            served_cache, tiny_registry,
            idle_timeout_seconds=30.0,
            connection_lifetime_seconds=0.4,
        )
        try:
            with socket.create_connection((svc.host, svc.port), timeout=5.0) as conn:
                conn.settimeout(5.0)
                # Trickle a never-finishing request: the idle timeout
                # alone would keep waiting, the lifetime bound must not.
                conn.sendall(b"GET /healthz HTTP/1.1\r\n")
                deadline = time.time() + 5.0
                reaped = False
                while time.time() < deadline:
                    try:
                        conn.sendall(b"X-Drip: 1\r\n")
                    except OSError:
                        reaped = True
                        break
                    try:
                        if conn.recv(4096) == b"":
                            reaped = True
                            break
                    except socket.timeout:
                        pass
                    except OSError:
                        reaped = True
                        break
                    time.sleep(0.1)
                assert reaped, "lifetime reaper never closed the connection"
            metrics = json.loads(_fetch(svc.host, svc.port, "/metricz").body)
            assert metrics["connections"]["reaped"] >= 1
            assert metrics["connections"]["lifetime_seconds"] == 0.4
        finally:
            if not svc.draining:
                svc.drain()

    def test_active_connections_track_register_unregister(self, service):
        with socket.create_connection((service.host, service.port), timeout=3.0):
            time.sleep(0.2)
            assert service.active_connections >= 1
        time.sleep(0.3)
        metrics = json.loads(
            _fetch(service.host, service.port, "/metricz").body
        )
        assert metrics["connections"]["idle_timeout_seconds"] == 30.0
