"""The versioned/cache-validatable list API: strong ETags, 304s with
zero store reads, rank diffs, stability analytics, and the canonical
error envelope.

Same tiny-registry pattern as ``test_server.py``; a module-scoped
service keeps the whole file on one warm world.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.faults import inject as fault_inject
from repro.runner import run_experiments
from repro.serve.selftest import _fetch
from repro.serve.server import MetricsService, ServeSettings
from repro.store import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)
_NAMES = ("cond1", "cond2")


def _make_fn(name):
    def fn(ctx) -> ExperimentResult:
        return ExperimentResult(
            name=name, title=name.title(),
            data={"which": name, "n_sites": ctx.world.n_sites},
            text=f"{name} over {ctx.world.n_sites} sites",
        )

    return fn


@pytest.fixture(scope="module")
def tiny_registry():
    for name in _NAMES:
        SPECS[name] = ExperimentSpec(
            id=name, title=name.title(), fn=_make_fn(name),
            tags=("test",), required_artifacts=(),
        )
    yield list(_NAMES)
    for name in _NAMES:
        SPECS.pop(name, None)


@pytest.fixture(scope="module")
def service(tiny_registry, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("conditional-cache"))
    _payloads, manifest, _path = run_experiments(
        list(tiny_registry), _CONFIG, cache_dir=cache
    )
    assert not manifest.failures
    svc = MetricsService(
        _CONFIG, ArtifactStore(cache),
        settings=ServeSettings(
            port=0, max_inflight=8, queue_depth=8, deadline_ms=5000.0,
            drain_seconds=2.0,
        ),
        names=list(tiny_registry),
    )
    svc.warm()
    svc.start()
    yield svc
    fault_inject.activate(None)
    if not svc.draining:
        svc.drain(reason="test")


def _get(svc, path, headers=None):
    response = _fetch(svc.host, svc.port, path, headers=headers)
    assert response is not None, f"no response for {path}"
    return response


def _store_reads(svc):
    stats = svc.store.stats
    return stats.total_hits + stats.total_misses


def _revalidate(svc, path):
    """GET once for the ETag, again with If-None-Match; returns both."""
    first = _get(svc, path)
    assert first.status == 200
    etag = first.headers.get("etag")
    assert etag, f"no ETag on 200 for {path}"
    second = _get(svc, path, headers={"If-None-Match": etag})
    return first, second


class TestExperimentEtags:
    def test_etag_is_the_store_checksum(self, service):
        response = _get(service, f"/v1/experiments/{_NAMES[0]}")
        assert response.status == 200
        checksum = service.store.checksum(
            config_key(_CONFIG), f"results/{_NAMES[0]}"
        )
        assert checksum is not None
        assert response.headers["etag"] == '"%s"' % checksum

    def test_revalidation_304_with_zero_store_reads(self, service):
        path = f"/v1/experiments/{_NAMES[0]}"
        first = _get(service, path)
        etag = first.headers["etag"]
        before = _store_reads(service)
        second = _get(service, path, headers={"If-None-Match": etag})
        assert second.status == 304
        assert second.body == b""
        assert second.headers["etag"] == etag
        assert _store_reads(service) == before

    def test_stale_etag_gets_a_full_200(self, service):
        path = f"/v1/experiments/{_NAMES[0]}"
        response = _get(service, path, headers={"If-None-Match": '"stale"'})
        assert response.status == 200
        assert response.body

    def test_weak_and_star_validators_match(self, service):
        path = f"/v1/experiments/{_NAMES[1]}"
        etag = _get(service, path).headers["etag"]
        weak = _get(service, path, headers={"If-None-Match": f"W/{etag}"})
        assert weak.status == 304
        star = _get(service, path, headers={"If-None-Match": "*"})
        assert star.status == 304

    def test_experiments_index_revalidates(self, service):
        _, second = _revalidate(service, "/v1/experiments")
        assert second.status == 304


class TestListVersions:
    def test_list_body_carries_its_snapshot_version(self, service):
        response = _get(service, "/v1/lists/alexa/0?k=5")
        assert response.status == 200
        doc = json.loads(response.body)
        version = doc["version"]
        assert isinstance(version, str) and len(version) == 64
        # The version is the identity of the full (provider, day)
        # snapshot, so every k-slice of the same day shares it.
        other = json.loads(_get(service, "/v1/lists/alexa/0?k=25").body)
        assert other["version"] == version

    def test_list_revalidation_304(self, service):
        first, second = _revalidate(service, "/v1/lists/alexa/1?k=10")
        assert second.status == 304
        assert second.body == b""
        assert second.headers["etag"] == first.headers["etag"]

    def test_different_slices_have_different_etags(self, service):
        a = _get(service, "/v1/lists/alexa/0?k=5").headers["etag"]
        b = _get(service, "/v1/lists/alexa/0?k=10").headers["etag"]
        assert a != b


class TestDiffEndpoint:
    def test_diff_shape(self, service):
        response = _get(service, "/v1/lists/alexa/diff?from=0&to=1&k=25")
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["provider"] == "alexa"
        assert doc["from"] == 0 and doc["to"] == 1 and doc["k"] == 25
        assert isinstance(doc["entrants"], list)
        assert isinstance(doc["dropouts"], list)
        assert isinstance(doc["moved"], list)
        assert isinstance(doc["unchanged"], int)
        moved_total = len(doc["moved"]) + doc["unchanged"]
        assert moved_total + len(doc["entrants"]) == doc["to_count"]

    def test_diff_revalidation_304(self, service):
        _, second = _revalidate(service, "/v1/lists/alexa/diff?from=0&to=1&k=5")
        assert second.status == 304

    def test_diff_missing_params_is_400_enveloped(self, service):
        response = _get(service, "/v1/lists/alexa/diff?from=0")
        assert response.status == 400
        doc = json.loads(response.body)
        assert set(doc) >= {"error", "detail"}

    def test_diff_bad_day_is_404(self, service):
        response = _get(
            service, f"/v1/lists/alexa/diff?from=0&to={_CONFIG.n_days}"
        )
        assert response.status == 404
        assert "error" in json.loads(response.body)

    def test_diff_unknown_provider_is_404(self, service):
        response = _get(service, "/v1/lists/nope/diff?from=0&to=1")
        assert response.status == 404


class TestStabilityEndpoint:
    def test_stability_shape(self, service):
        response = _get(service, "/v1/lists/umbrella/stability?k=50")
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["provider"] == "umbrella"
        assert doc["k"] == 50
        assert doc["days"] == _CONFIG.n_days
        assert len(doc["churn"]) == _CONFIG.n_days
        assert len(doc["intersection_decay"]) == _CONFIG.n_days
        assert doc["churn"][0] == 0.0
        assert doc["intersection_decay"][0] == 1.0
        assert "weekday" in doc

    def test_stability_revalidation_304(self, service):
        _, second = _revalidate(service, "/v1/lists/umbrella/stability?k=50")
        assert second.status == 304

    def test_stability_unknown_provider_is_404(self, service):
        assert _get(service, "/v1/lists/nope/stability").status == 404


class TestErrorEnvelope:
    @pytest.mark.parametrize("path", [
        "/v1/nope",
        "/v1/lists/nope/0",
        "/v1/lists/alexa/99",
        "/v1/lists/alexa/0?k=zero",
        "/v1/experiments/ghost",
    ])
    def test_4xx_bodies_carry_the_envelope(self, service, path):
        response = _get(service, path)
        assert 400 <= response.status < 500
        doc = json.loads(response.body)
        assert isinstance(doc["error"], str) and doc["error"]
        assert "detail" in doc
        # retry_after appears exactly when the header does.
        assert ("retry_after" in doc) == ("retry-after" in response.headers)


class TestMetricz:
    def test_conditional_counters_surface(self, service):
        _revalidate(service, "/v1/lists/majestic/0?k=5")
        doc = json.loads(_get(service, "/metricz").body)
        conditional = doc["conditional"]
        assert conditional["not_modified_total"] >= 1
        assert conditional["etags_cached"] >= 1
        assert conditional["snapshot_versions"] >= 1
