"""End-to-end ``run_selftest`` at a small world: chaos plan, breaker
cycle, shed burst, and SIGTERM drain all inside one process."""

from __future__ import annotations

import pytest

from repro.serve.selftest import run_selftest
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    # A reduced request volume keeps the module fast; the injected 500s
    # then weigh more, so the availability bar drops with them.
    return run_selftest(
        _CONFIG,
        cache_dir=str(tmp_path_factory.mktemp("selftest-cache")),
        min_requests=120,
        availability_threshold=0.97,
    )


def test_selftest_passes_under_chaos(report):
    assert report.ok, "\n" + report.render()
    assert report.breaker_opens >= 1
    assert report.breaker_closes >= 1
    assert report.requests_total >= 120
    assert report.shed_observed


def test_selftest_log_tells_the_lifecycle_story(report):
    joined = "\n".join(report.log_lines)
    for marker in ("serve.start", "serve.ready", "breaker.open",
                   "breaker.close", "drain.start", "drain.complete",
                   "event=serve.exit code=0"):
        assert marker in joined, f"missing {marker} in access log"


def test_selftest_report_renders_every_check(report):
    rendered = report.render()
    assert str(len(report.checks)) in rendered
    for check in report.checks:
        assert check.name in rendered
