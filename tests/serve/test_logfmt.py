"""logfmt formatting, parsing round-trips, and the thread-safe AccessLog."""

from __future__ import annotations

import threading

from repro.serve.logfmt import AccessLog, logfmt, parse_logfmt


class TestLogfmt:
    def test_plain_values_unquoted(self):
        assert logfmt({"a": 1, "b": "x", "c": "path/to/thing"}) == "a=1 b=x c=path/to/thing"

    def test_booleans_lowercase(self):
        assert logfmt({"ok": True, "bad": False}) == "ok=true bad=false"

    def test_floats_three_decimals(self):
        assert logfmt({"ms": 12.34567}) == "ms=12.346"

    def test_none_is_dash(self):
        assert logfmt({"x": None}) == "x=-"

    def test_space_forces_quotes(self):
        assert logfmt({"msg": "two words"}) == 'msg="two words"'

    def test_empty_string_quoted(self):
        assert logfmt({"x": ""}) == 'x=""'

    def test_quotes_and_equals_escaped(self):
        line = logfmt({"m": 'say "hi" a=b'})
        assert parse_logfmt(line)["m"] == 'say "hi" a=b'

    def test_newline_and_tab_escaped(self):
        line = logfmt({"m": "a\nb\tc"})
        assert "\n" not in line
        assert parse_logfmt(line)["m"] == "a\nb\tc"

    def test_key_order_preserved(self):
        line = logfmt({"z": 1, "a": 2})
        assert line.startswith("z=")


class TestParseLogfmt:
    def test_round_trip(self):
        fields = {
            "event": "request",
            "path": "/v1/experiments/fig1",
            "status": 200,
            "ms": 1.5,
            "note": 'has "quotes" and = signs',
            "blank": "",
        }
        parsed = parse_logfmt(logfmt(fields))
        assert parsed == {
            "event": "request",
            "path": "/v1/experiments/fig1",
            "status": "200",
            "ms": "1.500",
            "note": 'has "quotes" and = signs',
            "blank": "",
        }

    def test_tolerates_extra_spaces(self):
        assert parse_logfmt("a=1   b=2") == {"a": "1", "b": "2"}

    def test_empty_line(self):
        assert parse_logfmt("") == {}


class TestAccessLog:
    def test_memory_buffer_and_events(self):
        log = AccessLog()
        log.write("request", path="/healthz", status=200)
        log.write("breaker.open", reason="corrupt")
        assert len(log.lines()) == 2
        events = log.events("breaker.open")
        assert len(events) == 1
        assert events[0]["reason"] == "corrupt"

    def test_every_record_has_timestamp_and_event_first(self):
        log = AccessLog()
        log.write("x", a=1)
        line = log.lines()[0]
        assert line.startswith("ts=")
        assert "event=x" in line

    def test_writes_to_file(self, tmp_path):
        target = tmp_path / "logs" / "access.log"
        log = AccessLog(target)
        log.write("request", status=200)
        log.close()
        content = target.read_text().strip().splitlines()
        assert len(content) == 1
        assert parse_logfmt(content[0])["status"] == "200"

    def test_appends_across_instances(self, tmp_path):
        target = tmp_path / "access.log"
        first = AccessLog(target)
        first.write("a")
        first.close()
        second = AccessLog(target)
        second.write("b")
        second.close()
        assert len(target.read_text().strip().splitlines()) == 2

    def test_concurrent_writers_never_interleave(self, tmp_path):
        target = tmp_path / "access.log"
        log = AccessLog(target)
        per_thread = 50

        def writer(index: int) -> None:
            for i in range(per_thread):
                log.write("request", thread=index, i=i, msg="two words here")

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        lines = target.read_text().strip().splitlines()
        assert len(lines) == 8 * per_thread
        for line in lines:
            parsed = parse_logfmt(line)
            assert parsed["event"] == "request"
            assert parsed["msg"] == "two words here"
