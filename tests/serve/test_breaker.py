"""CircuitBreaker state machine (fake clock) and the LastKnownGood cache."""

from __future__ import annotations

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker, LastKnownGood


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make_breaker(clock, threshold=3, cooldown=10.0, transitions=None):
    callback = None
    if transitions is not None:
        callback = lambda old, new, reason: transitions.append((old, new, reason))
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_seconds=cooldown,
        on_transition=callback,
        clock=clock,
    )


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self, clock):
        breaker = make_breaker(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_consecutive_count(self, clock):
        breaker = make_breaker(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_threshold_validated(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)


class TestOpen:
    def test_opens_at_threshold(self, clock):
        transitions = []
        breaker = make_breaker(clock, threshold=3, transitions=transitions)
        for _ in range(3):
            breaker.record_failure("corrupt")
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1
        assert transitions == [(BreakerState.CLOSED, BreakerState.OPEN, "corrupt")]

    def test_open_denies_reads(self, clock):
        breaker = make_breaker(clock, threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()


class TestHalfOpen:
    def test_cooldown_enables_single_probe(self, clock):
        breaker = make_breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # everyone else still blocked
        assert breaker.probes == 1

    def test_probe_success_closes(self, clock):
        transitions = []
        breaker = make_breaker(clock, threshold=1, cooldown=1.0,
                               transitions=transitions)
        breaker.record_failure("slow")
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.closes == 1
        assert breaker.allow()
        assert transitions[-1] == (
            BreakerState.HALF_OPEN, BreakerState.CLOSED, "probe_succeeded"
        )

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make_breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure("corrupt")
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 2
        clock.advance(9.0)
        assert not breaker.allow()  # cooldown restarted at the failed probe
        clock.advance(1.5)
        assert breaker.allow()

    def test_snapshot_fields(self, clock):
        breaker = make_breaker(clock, threshold=2)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == BreakerState.CLOSED
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["failures_total"] == 1
        assert snapshot["failure_threshold"] == 2


class TestCooldownRemaining:
    def test_zero_while_closed(self, clock):
        assert make_breaker(clock).cooldown_remaining() == 0.0

    def test_counts_down_while_open(self, clock):
        breaker = make_breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.cooldown_remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.cooldown_remaining() == pytest.approx(6.0)

    def test_zero_once_half_open(self, clock):
        breaker = make_breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.5)
        # Reading the remaining cooldown performs the half-open
        # transition itself; a Retry-After built on it tells the client
        # "now" exactly when a probe slot exists.
        assert breaker.cooldown_remaining() == 0.0
        assert breaker.state == BreakerState.HALF_OPEN

    def test_reopened_breaker_restarts_the_clock(self, clock):
        breaker = make_breaker(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure("probe_failed")
        assert breaker.cooldown_remaining() == pytest.approx(10.0)


class TestLastKnownGood:
    def test_put_get_bytes(self):
        lkg = LastKnownGood(capacity=4)
        lkg.put("fig1", b'{"a": 1}')
        assert lkg.get("fig1") == b'{"a": 1}'
        assert lkg.serves == 1
        assert "fig1" in lkg
        assert len(lkg) == 1

    def test_miss_is_none(self):
        lkg = LastKnownGood()
        assert lkg.get("nope") is None
        assert lkg.serves == 0

    def test_evicts_least_recently_used(self):
        lkg = LastKnownGood(capacity=2)
        lkg.put("a", b"1")
        lkg.put("b", b"2")
        lkg.put("c", b"3")
        assert "a" not in lkg
        assert lkg.get("b") == b"2"
        assert lkg.get("c") == b"3"

    def test_get_refreshes_recency(self):
        lkg = LastKnownGood(capacity=2)
        lkg.put("a", b"1")
        lkg.put("b", b"2")
        lkg.get("a")
        lkg.put("c", b"3")
        assert "a" in lkg
        assert "b" not in lkg

    def test_put_overwrites(self):
        lkg = LastKnownGood(capacity=2)
        lkg.put("a", b"1")
        lkg.put("a", b"2")
        assert lkg.get("a") == b"2"
        assert len(lkg) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LastKnownGood(capacity=0)
