"""MetricsService over real sockets: routes, breaker, shedding, drain.

The tests register throwaway tiny experiments (the runner-test pattern)
and serve them at a 400-site world so the whole module stays fast; the
full-scale path is covered by ``repro serve --selftest`` in CI.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.experiments import SPECS, ExperimentResult, ExperimentSpec
from repro.faults import FaultPlan, FaultRule
from repro.faults import inject as fault_inject
from repro.runner import run_experiments
from repro.serve.breaker import BreakerState
from repro.serve.selftest import _fetch
from repro.serve.server import (
    RETRY_AFTER_CAP,
    MetricsService,
    ServeSettings,
    dynamic_retry_after,
)
from repro.store import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

_CONFIG = WorldConfig(n_sites=400, n_days=4, seed=11)
_NAMES = ("srv1", "srv2", "srv3", "srv4")


def _make_fn(name):
    def fn(ctx) -> ExperimentResult:
        return ExperimentResult(
            name=name, title=name.title(),
            data={"which": name, "n_sites": ctx.world.n_sites},
            text=f"{name} over {ctx.world.n_sites} sites",
        )

    return fn


@pytest.fixture(scope="module")
def tiny_registry():
    """Throwaway specs registered in the live SPECS dict (shared by the
    runner and the server, which both hold references to it)."""
    for name in _NAMES:
        SPECS[name] = ExperimentSpec(
            id=name, title=name.title(), fn=_make_fn(name),
            tags=("test",), required_artifacts=(),
        )
    yield list(_NAMES)
    for name in _NAMES:
        SPECS.pop(name, None)


@pytest.fixture(scope="module")
def served_cache(tiny_registry, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("serve-cache"))
    _payloads, manifest, _path = run_experiments(
        list(tiny_registry), _CONFIG, cache_dir=cache
    )
    assert not manifest.failures
    return cache


def _settings(**overrides):
    base = dict(
        port=0, max_inflight=4, queue_depth=4, deadline_ms=2000.0,
        breaker_threshold=2, breaker_cooldown_seconds=0.2,
        drain_seconds=2.0,
    )
    base.update(overrides)
    return ServeSettings(**base)


@pytest.fixture()
def service(served_cache, tiny_registry):
    svc = MetricsService(
        _CONFIG, ArtifactStore(served_cache),
        settings=_settings(), names=list(tiny_registry),
    )
    svc.warm()
    svc.start()
    yield svc
    fault_inject.activate(None)
    if not svc.draining:
        svc.drain(reason="test")


def _get(svc, path):
    response = _fetch(svc.host, svc.port, path)
    assert response is not None, f"no response for {path}"
    return response


class TestRoutes:
    def test_healthz(self, service):
        response = _get(service, "/healthz")
        assert response.status == 200
        assert json.loads(response.body) == {"status": "alive"}

    def test_readyz_after_warm(self, service):
        assert _get(service, "/readyz").status == 200

    def test_experiments_index(self, service):
        response = _get(service, "/v1/experiments")
        assert response.status == 200
        doc = json.loads(response.body)
        rows = {row["id"]: row for row in doc["experiments"]}
        assert set(rows) == set(_NAMES)
        assert all(row["status"] == "available" for row in rows.values())

    def test_experiment_body(self, service):
        response = _get(service, "/v1/experiments/srv1")
        assert response.status == 200
        assert response.headers["x-repro-source"] == "store"
        blob = json.loads(response.body)
        assert blob["name"] == "srv1"
        assert blob["data"]["n_sites"] == _CONFIG.n_sites

    def test_content_length_matches_body(self, service):
        response = _get(service, "/v1/experiments/srv2")
        assert int(response.headers["content-length"]) == len(response.body)

    def test_unknown_experiment_404(self, service):
        assert _get(service, "/v1/experiments/nope").status == 404

    def test_unknown_route_404(self, service):
        assert _get(service, "/v2/anything").status == 404

    def test_lists_index(self, service):
        response = _get(service, "/v1/lists")
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["days"] == _CONFIG.n_days
        assert doc["default_k"] == service.settings.default_k
        assert doc["max_k"] == service.settings.max_k
        assert doc["config_key"] == config_key(_CONFIG)
        rows = doc["providers"]
        assert [row["id"] for row in rows] == sorted(row["id"] for row in rows)
        assert rows, "a warm service advertises at least one provider"
        for row in rows:
            assert row["days"] == _CONFIG.n_days
            assert row["path"] == f"/v1/lists/{row['id']}/<day>?k=<k>"

    def test_lists_index_rows_resolve(self, service):
        doc = json.loads(_get(service, "/v1/lists").body)
        provider = doc["providers"][0]["id"]
        response = _get(service, f"/v1/lists/{provider}/0?k=5")
        assert response.status == 200
        assert json.loads(response.body)["provider"] == provider

    def test_lists_index_trailing_slash_is_the_index(self, service):
        assert json.loads(_get(service, "/v1/lists/").body) == json.loads(
            _get(service, "/v1/lists").body
        )

    def test_lists_endpoint(self, service):
        response = _get(service, "/v1/lists/alexa/0?k=7")
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["provider"] == "alexa"
        assert doc["k"] == 7
        assert doc["count"] == 7
        assert len(doc["names"]) == 7

    def test_lists_bucketed_provider_reports_bounds(self, service):
        response = _get(service, "/v1/lists/crux/0?k=50")
        doc = json.loads(response.body)
        assert doc["bucketed"] is True
        assert doc["bucket_bounds"][-1] == doc["count"]

    def test_lists_unknown_provider_404(self, service):
        assert _get(service, "/v1/lists/nope/0").status == 404

    def test_lists_day_out_of_range_404(self, service):
        assert _get(service, f"/v1/lists/alexa/{_CONFIG.n_days}").status == 404
        assert _get(service, "/v1/lists/alexa/-1").status == 404

    def test_lists_bad_k_400(self, service):
        assert _get(service, "/v1/lists/alexa/0?k=zero").status == 400
        assert _get(service, "/v1/lists/alexa/0?k=0").status == 400

    def test_lists_k_clamped_to_max(self, service):
        response = _get(service, "/v1/lists/alexa/0?k=999999")
        doc = json.loads(response.body)
        assert doc["k"] <= service.settings.max_k

    def test_metricz_counters(self, service):
        _get(service, "/v1/experiments/srv1")
        # Accounting lands just after the response bytes flush: poll so a
        # fast /metricz read cannot race the prior request's counters.
        deadline = time.monotonic() + 2.0
        while True:
            doc = json.loads(_get(service, "/metricz").body)
            if doc["requests"]["total"] >= 1 or time.monotonic() > deadline:
                break
            time.sleep(0.01)
        assert doc["ready"] is True
        assert doc["requests"]["total"] >= 1
        assert doc["breaker"]["state"] == BreakerState.CLOSED
        assert doc["shed"]["max_inflight"] == 4
        assert "counters" in doc


class TestBreakerIntegration:
    def test_corrupt_read_serves_last_known_good_and_repairs(self, service):
        baseline = _get(service, "/v1/experiments/srv1").body
        plan = FaultPlan(
            rules=[FaultRule("store.read.corrupt", match="results/srv1")],
            seed=7,
        )
        fault_inject.activate(plan)
        try:
            poisoned = _get(service, "/v1/experiments/srv1")
        finally:
            fault_inject.activate(None)
        assert poisoned.status == 200
        assert poisoned.body == baseline
        assert poisoned.headers["x-repro-source"] == "last-known-good"
        assert service.repairs == 1
        # The repair wrote the blob back: the next read is a clean hit.
        healed = _get(service, "/v1/experiments/srv1")
        assert healed.headers["x-repro-source"] == "store"
        assert healed.body == baseline

    def test_breaker_opens_serves_cached_then_recloses(self, service):
        for name in ("srv1", "srv2"):
            baseline = _get(service, f"/v1/experiments/{name}")
            assert baseline.status == 200
        plan = FaultPlan(
            rules=[FaultRule("store.read.corrupt", match="results/*")],
            seed=7,
        )
        fault_inject.activate(plan)
        try:
            # threshold=2: two consecutive poisoned reads open the circuit,
            # both still answered 200 from last-known-good.
            assert _get(service, "/v1/experiments/srv1").status == 200
            assert _get(service, "/v1/experiments/srv2").status == 200
            assert service.breaker.state == BreakerState.OPEN
            # While open the store is never read: untouched fault budget.
            open_hit = _get(service, "/v1/experiments/srv3")
            assert open_hit.status == 200
            assert open_hit.headers["x-repro-source"] == "last-known-good"
            # After the cooldown, the half-open probe reads the repaired
            # blob (its corrupt budget was spent tripping) and re-closes.
            time.sleep(0.25)
            probe = _get(service, "/v1/experiments/srv1")
            assert probe.status == 200
            assert service.breaker.state == BreakerState.CLOSED
        finally:
            fault_inject.activate(None)
        assert service.breaker.opens >= 1
        assert service.breaker.closes >= 1
        assert service.log.events("breaker.open")
        assert service.log.events("breaker.close")


class TestSheddingIntegration:
    def test_saturated_gate_sheds_with_retry_after(self, service):
        held = 0
        try:
            while service.gate.try_acquire() is None:
                held += 1
            burst = service.settings.queue_depth + 3
            results = [None] * burst

            def fetch(i):
                results[i] = _fetch(service.host, service.port,
                                    "/v1/experiments/srv1")

            threads = [threading.Thread(target=fetch, args=(i,))
                       for i in range(burst)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            for _ in range(held):
                service.gate.release()
        for response in results:
            assert response is not None
            assert response.status == 503
            assert "retry-after" in response.headers
        assert service.gate.shed_total >= burst

    def test_health_endpoints_bypass_admission(self, service):
        held = 0
        try:
            while service.gate.try_acquire() is None:
                held += 1
            assert _get(service, "/healthz").status == 200
            assert _get(service, "/metricz").status == 200
        finally:
            for _ in range(held):
                service.gate.release()


class TestRetryAfter:
    """Every 503/504 carries an integer-seconds Retry-After derived from
    live load (queue backlog, breaker cooldown) — the loadgen contract."""

    def test_floor_applies_when_idle(self):
        assert dynamic_retry_after(1, waiting=0, capacity=4,
                                   deadline_ms=2000.0) == 1
        assert dynamic_retry_after(5, waiting=0, capacity=4,
                                   deadline_ms=2000.0) == 5

    def test_queue_backlog_raises_the_estimate(self):
        # 8 waiters over 2 slots at a 2s deadline: ~8s to drain.
        assert dynamic_retry_after(1, waiting=8, capacity=2,
                                   deadline_ms=2000.0) == 8

    def test_open_breaker_cooldown_raises_the_estimate(self):
        assert dynamic_retry_after(1, waiting=0, capacity=4,
                                   deadline_ms=2000.0,
                                   breaker_remaining=6.2) == 7

    def test_clamped_to_cap_and_never_below_one(self):
        assert dynamic_retry_after(1, waiting=10_000, capacity=1,
                                   deadline_ms=5000.0) == RETRY_AFTER_CAP
        assert dynamic_retry_after(0, waiting=0, capacity=1,
                                   deadline_ms=0.0) == 1

    def test_shed_503_carries_integer_retry_after(self, service):
        held = 0
        try:
            while service.gate.try_acquire() is None:
                held += 1
            response = _fetch(service.host, service.port,
                              "/v1/experiments/srv1")
        finally:
            for _ in range(held):
                service.gate.release()
        assert response.status == 503
        assert int(response.headers["retry-after"]) >= 1

    def test_deadline_504_carries_integer_retry_after(
        self, served_cache, tiny_registry
    ):
        svc = MetricsService(
            _CONFIG, ArtifactStore(served_cache),
            settings=_settings(deadline_ms=0.0), names=list(tiny_registry),
        )
        svc.warm()
        svc.start()
        try:
            response = _fetch(svc.host, svc.port, "/v1/experiments/srv1")
            assert response.status == 504
            assert int(response.headers["retry-after"]) >= 1
        finally:
            svc.drain(reason="test")

    def test_metricz_reports_the_retry_after_derivation(self, service):
        doc = json.loads(_get(service, "/metricz").body)
        block = doc["retry_after"]
        assert block["floor_seconds"] == service.settings.retry_after_seconds
        assert block["cap_seconds"] == RETRY_AFTER_CAP
        assert block["current_seconds"] >= 1


class TestDeadline:
    def test_exhausted_budget_is_504(self, served_cache, tiny_registry):
        svc = MetricsService(
            _CONFIG, ArtifactStore(served_cache),
            settings=_settings(deadline_ms=0.0), names=list(tiny_registry),
        )
        svc.warm()
        svc.start()
        try:
            response = _fetch(svc.host, svc.port, "/v1/experiments/srv1")
            assert response is not None
            assert response.status == 504
            assert "retry-after" in response.headers
            # Health surfaces are exempt from the deadline budget.
            assert _fetch(svc.host, svc.port, "/healthz").status == 200
        finally:
            svc.drain(reason="test")


class TestDrainIntegration:
    def test_drain_stops_serving_and_logs_exit(self, served_cache, tiny_registry):
        svc = MetricsService(
            _CONFIG, ArtifactStore(served_cache),
            settings=_settings(), names=list(tiny_registry),
        )
        svc.warm()
        svc.start()
        assert _fetch(svc.host, svc.port, "/readyz").status == 200
        host, port = svc.host, svc.port
        assert svc.drain(reason="SIGTERM")
        assert svc.draining
        assert _fetch(host, port, "/readyz") is None  # listener closed
        exits = svc.log.events("serve.exit")
        assert len(exits) == 1
        assert exits[0]["code"] == "0"
        starts = svc.log.events("drain.start")
        assert starts and starts[0]["reason"] == "SIGTERM"
        assert svc.log.events("drain.complete")

    def test_readyz_reports_draining(self, served_cache, tiny_registry):
        svc = MetricsService(
            _CONFIG, ArtifactStore(served_cache),
            settings=_settings(), names=list(tiny_registry),
        )
        svc.warm()
        svc.start()
        try:
            svc._draining = True
            response = _fetch(svc.host, svc.port, "/readyz")
            assert response is not None
            assert response.status == 503
            assert "retry-after" in response.headers
            # Not-ready uses the canonical error envelope, with the body's
            # retry_after mirroring the Retry-After header.
            body = json.loads(response.body)
            assert body["error"] == "not_ready"
            assert body["detail"] == "draining"
            assert body["retry_after"] == int(response.headers["retry-after"])
        finally:
            svc._draining = False
            svc.drain(reason="test")


class TestWarmup:
    def test_missing_result_reported_and_404(self, served_cache, tiny_registry):
        name = "srv_missing"
        SPECS[name] = ExperimentSpec(
            id=name, title="Missing", fn=_make_fn(name),
            tags=("test",), required_artifacts=(),
        )
        try:
            svc = MetricsService(
                _CONFIG, ArtifactStore(served_cache),
                settings=_settings(),
                names=list(tiny_registry) + [name],
            )
            statuses = svc.warm(build_lists=False)
            assert statuses[name] == "missing"
            svc.start()
            try:
                assert _fetch(svc.host, svc.port,
                              f"/v1/experiments/{name}").status == 404
            finally:
                svc.drain(reason="test")
        finally:
            SPECS.pop(name, None)

    def test_warm_is_reference_digest_mode_without_goldens(self, served_cache,
                                                           tiny_registry):
        store = ArtifactStore(served_cache)
        svc = MetricsService(
            _CONFIG, store, settings=_settings(), names=list(tiny_registry),
        )
        statuses = svc.warm(build_lists=False)
        assert all(status == "ok" for status in statuses.values())
        assert set(svc._reference) == set(tiny_registry)
        cfg = config_key(_CONFIG)
        blob = store.get_json(cfg, "results/srv1")
        body = json.dumps(blob, sort_keys=True).encode()
        import hashlib

        assert svc._reference["srv1"] == hashlib.sha256(body).hexdigest()
