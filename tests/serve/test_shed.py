"""AdmissionGate: bounded concurrency, bounded queueing, shedding, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.shed import AdmissionGate, ShedDecision


class TestAdmission:
    def test_admits_up_to_capacity(self):
        gate = AdmissionGate(capacity=2, queue_depth=0)
        assert gate.try_acquire() is None
        assert gate.try_acquire() is None
        assert gate.inflight == 2
        assert gate.admitted_total == 2

    def test_sheds_immediately_when_full_and_no_queue(self):
        gate = AdmissionGate(capacity=1, queue_depth=0)
        assert gate.try_acquire() is None
        assert gate.try_acquire() == ShedDecision.QUEUE_FULL
        assert gate.shed_total == 1

    def test_zero_timeout_never_waits(self):
        gate = AdmissionGate(capacity=1, queue_depth=5)
        assert gate.try_acquire() is None
        started = time.monotonic()
        assert gate.try_acquire(timeout=0.0) == ShedDecision.QUEUE_FULL
        assert time.monotonic() - started < 0.1

    def test_release_frees_slot(self):
        gate = AdmissionGate(capacity=1, queue_depth=0)
        assert gate.try_acquire() is None
        gate.release()
        assert gate.inflight == 0
        assert gate.try_acquire() is None

    def test_release_without_acquire_raises(self):
        gate = AdmissionGate(capacity=1, queue_depth=0)
        with pytest.raises(RuntimeError):
            gate.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(capacity=0, queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionGate(capacity=1, queue_depth=-1)


class TestQueueing:
    def test_waiter_admitted_when_slot_frees(self):
        gate = AdmissionGate(capacity=1, queue_depth=1)
        assert gate.try_acquire() is None
        result = {}

        def waiter():
            result["shed"] = gate.try_acquire(timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 2.0
        while gate.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert gate.waiting == 1
        gate.release()
        thread.join(timeout=2.0)
        assert result["shed"] is None
        assert gate.inflight == 1

    def test_waiter_times_out(self):
        gate = AdmissionGate(capacity=1, queue_depth=1)
        assert gate.try_acquire() is None
        assert gate.try_acquire(timeout=0.05) == ShedDecision.TIMEOUT
        assert gate.waiting == 0

    def test_queue_depth_bounds_waiters(self):
        gate = AdmissionGate(capacity=1, queue_depth=1)
        assert gate.try_acquire() is None
        results = []

        def waiter():
            results.append(gate.try_acquire(timeout=0.5))

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 2.0
        while gate.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        # The queue is now full; the next caller sheds without waiting.
        assert gate.try_acquire(timeout=0.5) == ShedDecision.QUEUE_FULL
        gate.release()
        thread.join(timeout=2.0)
        assert results == [None]


class TestDrain:
    def test_draining_gate_sheds_new_arrivals(self):
        gate = AdmissionGate(capacity=2, queue_depth=2)
        gate.drain()
        assert gate.try_acquire() == ShedDecision.DRAINING
        assert gate.draining

    def test_drain_wakes_and_sheds_waiters(self):
        gate = AdmissionGate(capacity=1, queue_depth=2)
        assert gate.try_acquire() is None
        results = []

        def waiter():
            results.append(gate.try_acquire(timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 2.0
        while gate.waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        gate.drain()
        thread.join(timeout=2.0)
        assert results == [ShedDecision.DRAINING]

    def test_wait_idle_returns_when_inflight_done(self):
        gate = AdmissionGate(capacity=1, queue_depth=0)
        assert gate.try_acquire() is None
        timer = threading.Timer(0.05, gate.release)
        timer.start()
        assert gate.wait_idle(timeout=2.0)
        timer.join()

    def test_wait_idle_times_out_while_busy(self):
        gate = AdmissionGate(capacity=1, queue_depth=0)
        assert gate.try_acquire() is None
        assert not gate.wait_idle(timeout=0.05)
        gate.release()
