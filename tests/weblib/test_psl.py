"""Tests for the Public Suffix List matcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.weblib.psl import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl() -> PublicSuffixList:
    return default_psl()


class TestPublicSuffix:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("example.com", "com"),
            ("www.example.com", "com"),
            ("bbc.co.uk", "co.uk"),
            ("www.bbc.co.uk", "co.uk"),
            ("foo.gov.cn", "gov.cn"),
            ("a.b.c.example.co.jp", "co.jp"),
            ("com", "com"),
            ("co.uk", "co.uk"),
        ],
    )
    def test_normal_rules(self, psl, name, expected):
        assert psl.public_suffix(name) == expected

    def test_wildcard_rule(self, psl):
        # *.ck: any single label under ck is a public suffix.
        assert psl.public_suffix("foo.ck") == "foo.ck"
        assert psl.public_suffix("bar.foo.ck") == "foo.ck"

    def test_exception_rule(self, psl):
        # !www.ck: www.ck is NOT a public suffix despite the wildcard.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registrable_domain("www.ck") == "www.ck"

    def test_wildcard_jp_cities(self, psl):
        assert psl.public_suffix("foo.kawasaki.jp") == "foo.kawasaki.jp"
        assert psl.public_suffix("city.kawasaki.jp") == "kawasaki.jp"

    def test_unknown_tld_prevailing_rule(self, psl):
        # No rule matches -> "*" prevails: TLD itself is the suffix.
        assert psl.public_suffix("example.zz-unknown") == "zz-unknown"
        assert psl.registrable_domain("foo.example.zz-unknown") == "example.zz-unknown"

    def test_empty(self, psl):
        assert psl.public_suffix("") is None


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("example.com", "example.com"),
            ("www.example.com", "example.com"),
            ("a.b.example.co.uk", "example.co.uk"),
            ("example.github.io", "example.github.io"),  # private section
            ("deep.example.github.io", "example.github.io"),
        ],
    )
    def test_registrable(self, psl, name, expected):
        assert psl.registrable_domain(name) == expected

    @pytest.mark.parametrize("name", ["com", "co.uk", "gov.cn", "github.io"])
    def test_bare_suffix_has_none(self, psl, name):
        assert psl.registrable_domain(name) is None

    def test_private_rules_optional(self):
        icann_only = PublicSuffixList(include_private=False)
        assert icann_only.registrable_domain("example.github.io") == "github.io"

    def test_is_public_suffix(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert not psl.is_public_suffix("example.co.uk")


class TestDeviation:
    @pytest.mark.parametrize(
        "name,deviates",
        [
            ("example.com", False),
            ("www.example.com", True),
            ("com", True),  # no registrable domain at all
            ("bbc.co.uk", False),
            ("news.bbc.co.uk", True),
        ],
    )
    def test_deviates(self, psl, name, deviates):
        assert psl.deviates_from_registrable(name) is deviates


class TestRuleParsing:
    def test_rule_count(self, psl):
        assert len(psl) > 200

    def test_malformed_rule_rejected(self):
        with pytest.raises(ValueError):
            PublicSuffixList(icann_rules=["bad..rule"], private_rules=[])

    def test_custom_rules(self):
        custom = PublicSuffixList(icann_rules=["test", "sub.test"], private_rules=[])
        assert custom.registrable_domain("a.sub.test") == "a.sub.test"
        assert custom.registrable_domain("a.b.test") == "b.test"


_LABEL = st.from_regex(r"[a-z]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)


@given(st.lists(_LABEL, min_size=2, max_size=6))
def test_property_registrable_contains_suffix(labels):
    """registrable = suffix + exactly one label, and name ends with it."""
    psl = default_psl()
    name = ".".join(labels)
    suffix = psl.public_suffix(name)
    registrable = psl.registrable_domain(name)
    assert name.endswith(suffix)
    if registrable is not None:
        assert registrable.endswith(suffix)
        assert len(registrable.split(".")) == len(suffix.split(".")) + 1
        assert name.endswith(registrable)


@given(st.lists(_LABEL, min_size=2, max_size=6))
def test_property_registrable_idempotent(labels):
    """Normalizing an already-registrable domain is a no-op."""
    psl = default_psl()
    registrable = psl.registrable_domain(".".join(labels))
    if registrable is not None:
        assert psl.registrable_domain(registrable) == registrable
        assert not psl.deviates_from_registrable(registrable)
