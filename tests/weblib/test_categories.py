"""Tests for the category taxonomy."""

import pytest

from repro.weblib.categories import CATEGORIES, category_by_name, category_index


class TestTaxonomy:
    def test_twenty_two_categories(self):
        # The paper applies a Bonferroni correction of 22.
        assert len(CATEGORIES) == 22

    def test_prevalence_sums_to_one(self):
        assert abs(sum(c.prevalence for c in CATEGORIES) - 1.0) < 1e-9

    def test_names_unique(self):
        names = [c.name for c in CATEGORIES]
        assert len(set(names)) == len(names)

    def test_lookup_roundtrip(self):
        for i, cat in enumerate(CATEGORIES):
            assert category_by_name(cat.name) is cat
            assert category_index(cat.name) == i

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            category_by_name("cryptozoology")


class TestMechanismParameters:
    """The parameters encode the paper's stated bias mechanisms."""

    def test_adult_browsed_privately(self):
        # Gao et al.: adult browsing happens in private windows.
        adult = category_by_name("adult")
        others = [c for c in CATEGORIES if c.name not in ("adult", "gambling")]
        assert adult.private_browsing_rate > max(c.private_browsing_rate for c in others)

    def test_government_attracts_backlinks(self):
        gov = category_by_name("government")
        assert gov.backlink_propensity == max(c.backlink_propensity for c in CATEGORIES)

    def test_enterprise_blocks_adult_gambling_abuse(self):
        blocked = {"adult", "gambling", "abuse"}
        for cat in CATEGORIES:
            if cat.name in blocked:
                assert cat.enterprise_blocked_rate > 0.5
            else:
                assert cat.enterprise_blocked_rate < 0.5

    def test_parked_not_public(self):
        # Parked/abuse domains are rarely crawlable public pages.
        assert category_by_name("parked").robots_public_rate < 0.5
        assert category_by_name("abuse").robots_public_rate < 0.5

    def test_all_rates_are_probabilities(self):
        for cat in CATEGORIES:
            assert 0.0 <= cat.private_browsing_rate <= 1.0
            assert 0.0 <= cat.enterprise_blocked_rate <= 1.0
            assert 0.0 <= cat.robots_public_rate <= 1.0
            assert 0.0 <= cat.work_affinity <= 1.0
            assert cat.prevalence > 0
            assert cat.popularity_tilt > 0
            assert cat.dwell_seconds > 0
