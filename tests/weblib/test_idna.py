"""Tests for the Punycode/IDNA codec, cross-validated against Python's."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.weblib.idna import (
    IdnaError,
    punycode_decode,
    punycode_encode,
    to_ascii,
    to_unicode,
)


class TestRfcVectors:
    """Sample strings from RFC 3492 section 7.1."""

    @pytest.mark.parametrize(
        "unicode_text,encoded",
        [
            ("bücher", "bcher-kva"),
            ("München", "mnchen-3ya"),
            # RFC 3492 (L): Japanese "3年B組金八先生"
            ("3年B組金八先生", "3B-ww4c5e180e575a65lsy2b"),
            # RFC 3492 (A): Arabic (Egyptian)
            (
                "ليهمابتكل"
                "موشعربي؟",
                "egbpdaj6bu4bxfgehfvwxn",
            ),
            # RFC 3492 (K): Vietnamese
            (
                "Tạisaohọkhôngthểchỉnóiti"
                "ếngViệt",
                "TisaohkhngthchnitingVit-kjcr8268qyxafd2f1b9g",
            ),
        ],
    )
    def test_encode(self, unicode_text, encoded):
        assert punycode_encode(unicode_text).lower() == encoded.lower()

    @pytest.mark.parametrize(
        "unicode_text,encoded",
        [
            ("bücher", "bcher-kva"),
            ("münchen", "mnchen-3ya"),  # case of basic chars is preserved as given
            ("München", "Mnchen-3ya"),
        ],
    )
    def test_decode(self, unicode_text, encoded):
        assert punycode_decode(encoded) == unicode_text


class TestHostConversions:
    def test_to_ascii(self):
        assert to_ascii("bücher.de") == "xn--bcher-kva.de"
        assert to_ascii("Example.COM") == "example.com"

    def test_to_unicode(self):
        assert to_unicode("xn--bcher-kva.de") == "bücher.de"
        assert to_unicode("example.com") == "example.com"

    def test_roundtrip_mixed(self):
        name = "shop.bücher.co.uk"
        assert to_unicode(to_ascii(name)) == name

    def test_matches_python_codec(self):
        for name in ("bücher.de", "münchen.example", "東京.jp", "café.fr"):
            ours = to_ascii(name)
            theirs = name.encode("idna").decode("ascii")
            assert ours == theirs, name

    def test_empty_label_rejected(self):
        with pytest.raises(IdnaError):
            to_ascii("a..b")

    def test_truncated_punycode_rejected(self):
        with pytest.raises(IdnaError):
            punycode_decode("bcher-kv")  # invalid digit

    def test_bad_digit_rejected(self):
        with pytest.raises(IdnaError):
            punycode_decode("abc-!!")


_LABEL_TEXT = st.text(
    alphabet=st.characters(
        codec="utf-8",
        min_codepoint=ord("a"),
        max_codepoint=0x2FFF,
        exclude_characters=".  ",
    ),
    min_size=1,
    max_size=12,
)


@given(_LABEL_TEXT)
@settings(max_examples=150)
def test_property_punycode_roundtrip(label):
    """encode -> decode is the identity for any label."""
    label = label.lower()
    assert punycode_decode(punycode_encode(label)) == label


@given(_LABEL_TEXT)
@settings(max_examples=100)
def test_property_matches_stdlib_punycode(label):
    """Our encoder agrees with Python's punycode codec."""
    label = label.lower()
    ours = punycode_encode(label)
    theirs = label.encode("punycode").decode("ascii")
    assert ours == theirs


@given(_LABEL_TEXT)
@settings(max_examples=80)
def test_property_encoded_is_ascii(label):
    encoded = punycode_encode(label.lower())
    assert all(ord(c) < 128 for c in encoded)
