"""Tests for the browser / user-agent model."""

import pytest

from repro.weblib.useragents import (
    BROWSERS,
    TOP_FIVE_BROWSERS,
    UserAgent,
    browser_by_name,
)


class TestBrowserTable:
    def test_top_five_are_browsers(self):
        assert len(TOP_FIVE_BROWSERS) == 5
        for name in TOP_FIVE_BROWSERS:
            assert browser_by_name(name).is_browser

    def test_chrome_is_top(self):
        assert TOP_FIVE_BROWSERS[0] == "chrome"

    def test_top_five_sorted_by_share(self):
        shares = [browser_by_name(n).global_share for n in TOP_FIVE_BROWSERS]
        assert shares == sorted(shares, reverse=True)

    def test_bots_not_in_top_five(self):
        bots = {b.name for b in BROWSERS if not b.is_browser}
        assert bots
        assert not bots & set(TOP_FIVE_BROWSERS)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            browser_by_name("netscape-navigator")

    def test_shares_form_distribution(self):
        total = sum(b.global_share for b in BROWSERS)
        assert 0.9 < total <= 1.05


class TestUserAgent:
    def test_header_value_substitutes_version(self):
        ua = UserAgent(family="chrome", version="98.0.4758.102")
        assert "98.0.4758.102" in ua.header_value()
        assert ua.header_value().startswith("Mozilla/5.0")

    def test_top_five_flag(self):
        assert UserAgent("chrome", "98.0").is_top_five_browser
        assert not UserAgent("curl", "7.81").is_top_five_browser

    def test_bot_ua_strings_distinct(self):
        values = {UserAgent(b.name, "1.0").header_value() for b in BROWSERS}
        assert len(values) == len(BROWSERS)
