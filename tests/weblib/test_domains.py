"""Tests for hostname and origin parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.weblib.domains import (
    Origin,
    is_valid_hostname,
    parse_name,
    parse_origin,
    reverse_labels,
    split_labels,
)


class TestSplitLabels:
    def test_basic(self):
        assert split_labels("www.example.com") == ["www", "example", "com"]

    def test_lowercases(self):
        assert split_labels("WWW.Example.COM") == ["www", "example", "com"]

    def test_trailing_dot_removed(self):
        assert split_labels("example.com.") == ["example", "com"]

    def test_empty(self):
        assert split_labels("") == []

    def test_whitespace_stripped(self):
        assert split_labels("  example.com  ") == ["example", "com"]


class TestReverseLabels:
    def test_tld_first(self):
        assert reverse_labels("www.example.com") == ["com", "example", "www"]

    def test_single_label(self):
        assert reverse_labels("com") == ["com"]


class TestIsValidHostname:
    @pytest.mark.parametrize(
        "name",
        ["example.com", "a.b.c.d.e", "xn--bcher-kva.de", "_dmarc.example.com",
         "a-b.example.org", "1.2.3.example", "x" * 63 + ".com"],
    )
    def test_valid(self, name):
        assert is_valid_hostname(name)

    @pytest.mark.parametrize(
        "name",
        ["", "-leading.example.com", "trailing-.example.com", "exa mple.com",
         "x" * 64 + ".com", "a..b", "a." * 130 + "com", "exämple.com"],
    )
    def test_invalid(self, name):
        assert not is_valid_hostname(name)


class TestParseName:
    def test_roundtrip(self):
        parsed = parse_name("WWW.Example.COM.")
        assert parsed.host == "www.example.com"
        assert parsed.labels == ("www", "example", "com")
        assert str(parsed) == "www.example.com"

    def test_depth(self):
        assert parse_name("a.b.c").depth == 3

    def test_parent(self):
        assert parse_name("www.example.com").parent().host == "example.com"

    def test_parent_of_tld_is_none(self):
        assert parse_name("com").parent() is None

    def test_subdomain_relation(self):
        child = parse_name("a.b.example.com")
        parent = parse_name("example.com")
        assert child.is_subdomain_of(parent)
        assert not parent.is_subdomain_of(child)
        assert not parent.is_subdomain_of(parent)

    def test_unrelated_not_subdomain(self):
        assert not parse_name("a.other.com").is_subdomain_of(parse_name("example.com"))

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_name("bad..name")


class TestParseOrigin:
    def test_https_default_port(self):
        origin = parse_origin("https://example.com")
        assert origin == Origin("https", "example.com", 443)
        assert origin.is_default_port
        assert origin.serialize() == "https://example.com"

    def test_http_default_port(self):
        assert parse_origin("http://example.com").port == 80

    def test_explicit_port(self):
        origin = parse_origin("https://example.com:8443")
        assert origin.port == 8443
        assert origin.serialize() == "https://example.com:8443"

    def test_case_insensitive(self):
        assert parse_origin("HTTPS://Example.COM").serialize() == "https://example.com"

    @pytest.mark.parametrize(
        "text",
        ["example.com", "ftp://example.com", "https://example.com/path",
         "https://example.com?q=1", "https://", "https://example.com:0",
         "https://example.com:99999", "https://example.com:abc"],
    )
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_origin(text)

    def test_distinct_origins_not_equal(self):
        assert parse_origin("https://example.com") != parse_origin("https://www.example.com")
        assert parse_origin("https://example.com") != parse_origin("http://example.com")


_LABEL = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)


@given(st.lists(_LABEL, min_size=1, max_size=5))
def test_property_parse_roundtrip(labels):
    """Any syntactically valid label sequence parses and round-trips."""
    name = ".".join(labels)
    parsed = parse_name(name)
    assert parsed.host == name
    assert list(parsed.labels) == labels


@given(st.lists(_LABEL, min_size=1, max_size=5))
def test_property_origin_roundtrip(labels):
    """Origins serialize and reparse to the same value."""
    origin = parse_origin(f"https://{'.'.join(labels)}")
    assert parse_origin(origin.serialize()) == origin
