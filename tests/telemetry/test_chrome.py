"""Tests for Chrome telemetry."""

import numpy as np
import pytest

from repro.telemetry.chrome import TELEMETRY_METRICS, ChromeTelemetry
from repro.worldgen.countries import country_index


class TestPanel:
    def test_metrics_enumerated(self):
        assert TELEMETRY_METRICS == ("completed", "initiated", "time")

    def test_unknown_metric_raises(self, small_telemetry):
        with pytest.raises(KeyError):
            small_telemetry.metric_counts("dwell", 0, 0)

    def test_completed_below_initiated(self, small_telemetry):
        us = country_index("us")
        completed = small_telemetry.metric_counts("completed", us, 0, with_noise=False)
        initiated = small_telemetry.metric_counts("initiated", us, 0, with_noise=False)
        assert (completed <= initiated + 1e-9).all()

    def test_non_public_sites_invisible(self, small_world, small_telemetry):
        hidden = ~small_world.sites.robots_public
        counts = small_telemetry.metric_counts("completed", 0, 0, with_noise=False)
        assert (counts[hidden] == 0).all()

    def test_android_coverage_below_desktop_rate(self, small_world, small_telemetry):
        us = country_index("us")
        desktop = small_telemetry.metric_counts("completed", us, 0, with_noise=False)
        mobile = small_telemetry.metric_counts("completed", us, 1, with_noise=False)
        # Per observed pageload, mobile telemetry keeps a smaller fraction;
        # compare totals scaled by the platform traffic split.
        desktop_loads = sum(
            small_telemetry.traffic.platform_country_pageloads(d, 0)[:, us].sum()
            for d in range(small_world.config.n_days)
        )
        mobile_loads = sum(
            small_telemetry.traffic.platform_country_pageloads(d, 1)[:, us].sum()
            for d in range(small_world.config.n_days)
        )
        assert desktop.sum() / desktop_loads > mobile.sum() / mobile_loads

    def test_ranking_excludes_unseen(self, small_telemetry):
        ranking = small_telemetry.ranking("completed", country_index("za"), 1)
        counts = small_telemetry.metric_counts("completed", country_index("za"), 1)
        assert (counts[ranking] >= 1).all()

    def test_ranking_sorted(self, small_telemetry):
        us = country_index("us")
        ranking = small_telemetry.ranking("completed", us, 0)
        counts = small_telemetry.metric_counts("completed", us, 0)
        assert (np.diff(counts[ranking]) <= 0).all()

    def test_time_metric_uses_dwell(self, small_world, small_telemetry):
        us = country_index("us")
        completed = small_telemetry.metric_counts("completed", us, 0, with_noise=False)
        time_on_site = small_telemetry.metric_counts("time", us, 0, with_noise=False)
        visible = completed > 0
        ratio = time_on_site[visible] / completed[visible]
        assert np.allclose(ratio, small_world.sites.dwell_seconds[visible])

    def test_global_completed_sums_countries(self, small_world, small_telemetry):
        total = small_telemetry.global_completed_by_site(with_noise=False)
        assert (total >= 0).all()
        # Popular public sites dominate.
        public_top = np.flatnonzero(small_world.sites.robots_public)[:20]
        tail = np.flatnonzero(small_world.sites.robots_public)[-20:]
        assert total[public_top].sum() > total[tail].sum() * 10

    def test_country_rankings_differ(self, small_telemetry):
        jp = small_telemetry.ranking("completed", country_index("jp"), 0)[:100]
        us = small_telemetry.ranking("completed", country_index("us"), 0)[:100]
        assert set(jp.tolist()) != set(us.tolist())

    def test_deterministic(self, small_world, small_traffic):
        a = ChromeTelemetry(small_world, small_traffic).metric_counts("completed", 0, 0)
        b = ChromeTelemetry(small_world, small_traffic).metric_counts("completed", 0, 0)
        assert np.array_equal(a, b)
