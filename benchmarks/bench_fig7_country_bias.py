"""Figure 7: top-list accuracy by client country.

Paper: lists show strong, irregular geographic bias — Secrank matches only
China; Umbrella and Majestic match the US best; Alexa does surprisingly
well in sub-Saharan Africa; every list does poorly on Japan; Tranco and
Trexa inherit their components' biases.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core.experiments import run_fig7
from repro.worldgen.countries import TELEMETRY_COUNTRIES

_PAPER = """
Figure 7: secrank best matches China and is terrible elsewhere; umbrella
and majestic best match the US; alexa unusually strong in sub-Saharan
Africa (ng/za); all lists match Japan poorly; tranco/trexa inherit
component biases.
"""


def test_fig7_country_bias(benchmark, ctx):
    result = benchmark.pedantic(run_fig7, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    cells = result.data["cells"]

    def jj(name, code):
        return cells[name][code].jaccard

    # Secrank: China is its best country by a wide margin.
    secrank_others = [jj("secrank", c) for c in TELEMETRY_COUNTRIES if c != "cn"]
    assert jj("secrank", "cn") > max(secrank_others) * 1.5

    # Umbrella: the US is at or near its best.
    umbrella_rank = sorted(
        TELEMETRY_COUNTRIES, key=lambda c: jj("umbrella", c), reverse=True
    ).index("us")
    assert umbrella_rank <= 2

    # Alexa: sub-Saharan Africa (Nigeria/South Africa) above its median.
    alexa_median = np.median([jj("alexa", c) for c in TELEMETRY_COUNTRIES])
    assert jj("alexa", "ng") > alexa_median or jj("alexa", "za") > alexa_median

    # Japan: poorly matched across the board — below (or at) the median
    # country for nearly every list, and clearly below on average.
    below = 0
    ratios = []
    for name in cells:
        if name == "secrank":
            continue
        median = np.median([jj(name, c) for c in TELEMETRY_COUNTRIES])
        ratios.append(jj(name, "jp") / max(median, 1e-9))
        if jj(name, "jp") <= median * 1.02:
            below += 1
    assert below >= len(cells) - 2
    assert np.mean(ratios) < 1.0

    # Tranco inherits its components' geography: its per-country profile
    # correlates with the mean of alexa/umbrella/majestic profiles.
    component_mean = np.array([
        np.mean([jj("alexa", c), jj("umbrella", c), jj("majestic", c)])
        for c in TELEMETRY_COUNTRIES
    ])
    tranco_profile = np.array([jj("tranco", c) for c in TELEMETRY_COUNTRIES])
    correlation = np.corrcoef(component_mean, tranco_profile)[0, 1]
    assert correlation > 0.5
