"""Shared benchmark fixtures.

All benches run over one bench-scale world (see
:data:`repro.core.pipeline.BENCH_CONFIG`): 20k sites standing in for the
paper's 1M universe, 28 simulated days standing in for February 2022.  The
context is built once per session; each bench times its *analysis*, not
world construction.

Every bench prints the reproduced table/figure next to the paper's reported
values so `pytest benchmarks/ --benchmark-only -s` doubles as the
EXPERIMENTS.md evidence generator.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import ExperimentResult
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared bench-scale experiment context."""
    return experiment_context(BENCH_CONFIG)


def show(result: ExperimentResult, paper_notes: str) -> None:
    """Print a reproduced artifact with the paper's numbers for comparison."""
    print()
    print(f"=== {result.name}: {result.title} ===")
    print(result.text)
    print()
    print("--- paper reference ---")
    print(paper_notes.strip())
    print()
