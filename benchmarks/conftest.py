"""Shared benchmark fixtures.

All benches run over one bench-scale world (see
:data:`repro.core.pipeline.BENCH_CONFIG`): 20k sites standing in for the
paper's 1M universe, 28 simulated days standing in for February 2022.  The
context is built once per session; each bench times its *analysis*, not
world construction.

Every bench prints the reproduced table/figure next to the paper's reported
values so `pytest benchmarks/ --benchmark-only -s` doubles as the
EXPERIMENTS.md evidence generator.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import ExperimentResult
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context
from repro.store import ArtifactStore, default_cache_dir


@pytest.fixture(scope="session")
def store() -> ArtifactStore:
    """The persistent artifact store warming bench sessions.

    The first session pays for world construction; every later bench
    session (and every `repro` CLI run at bench scale) hydrates the same
    artifacts from ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-toplists``.
    """
    return ArtifactStore(default_cache_dir())


@pytest.fixture(scope="session")
def ctx(store: ArtifactStore) -> ExperimentContext:
    """The shared bench-scale experiment context (store-hydrated)."""
    return experiment_context(config=BENCH_CONFIG, store=store)


def show(result: ExperimentResult, paper_notes: str) -> None:
    """Print a reproduced artifact with the paper's numbers for comparison."""
    print()
    print(f"=== {result.name}: {result.title} ===")
    print(result.text)
    print()
    print("--- paper reference ---")
    print(paper_notes.strip())
    print()
