"""Robustness: the headline finding must survive rescaling and reseeding.

A scaled-down reproduction is only credible if its conclusions are not
artifacts of the particular universe size or random seed.  This bench
re-runs the Figure 2 core comparison across world sizes and seeds and
asserts the invariants that matter: CrUX wins on every metric, and
Secrank/Majestic trail, at every scale and seed tested.
"""

import numpy as np

from benchmarks.conftest import show
from repro.cdn.filters import FINAL_SEVEN
from repro.cdn.metrics import CdnMetricEngine
from repro.core import report
from repro.core.evaluation import CloudflareEvaluator
from repro.core.experiments import ExperimentResult
from repro.providers.registry import PROVIDER_ORDER, build_providers
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

_WORLDS = (
    {"n_sites": 5_000, "seed": 20220201},
    {"n_sites": 10_000, "seed": 20220201},
    {"n_sites": 20_000, "seed": 20220201},
    {"n_sites": 10_000, "seed": 7},
    {"n_sites": 10_000, "seed": 99},
)


def _fig2_core(n_sites: int, seed: int):
    config = WorldConfig(n_sites=n_sites, n_days=6, seed=seed)
    world = build_world(config)
    traffic = TrafficModel(world)
    providers = build_providers(world, traffic)
    engine = CdnMetricEngine(world, traffic)
    evaluator = CloudflareEvaluator(world, engine)
    magnitude = config.bucket_sizes[2]
    matrix = evaluator.evaluate_matrix(
        providers, FINAL_SEVEN, magnitude, days=[0, 2, 4]
    )
    return {
        name: float(np.mean([matrix[name][c].jaccard for c in FINAL_SEVEN]))
        for name in PROVIDER_ORDER
    }


def test_scale_and_seed_sensitivity(benchmark):
    def run():
        rows = []
        results = []
        for spec in _WORLDS:
            scores = _fig2_core(**spec)
            results.append((spec, scores))
            rows.append(
                [f"{spec['n_sites']}/{spec['seed']}"]
                + [scores[name] for name in PROVIDER_ORDER]
            )
        text = report.format_table(
            ["sites/seed"] + list(PROVIDER_ORDER),
            rows,
            title="mean Jaccard across the 7 metrics, by world size and seed",
        )
        return ExperimentResult(
            "scale", "Scale/Seed Sensitivity", {"results": results}, text
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result, "Robustness requirement: the paper's orderings must not "
                 "depend on the simulation scale or seed.")

    for spec, scores in result.data["results"]:
        ordered = sorted(scores, key=scores.get, reverse=True)
        assert ordered[0] == "crux", spec
        assert set(ordered[-2:]) == {"secrank", "majestic"}, spec

    # The CrUX margin is stable, not shrinking toward zero with scale.
    margins = []
    for _spec, scores in result.data["results"][:3]:  # the size sweep
        runner_up = max(v for k, v in scores.items() if k != "crux")
        margins.append(scores["crux"] - runner_up)
    assert min(margins) > 0.02
