"""Context experiment: list stability (Section 2 / Scheitle et al.).

Prior work the paper builds on: commercial lists churn heavily day to day
("top lists are unstable"), and Tranco's 30-day aggregation restores
stability.  We reproduce the ordering: the smoothed/aggregated lists
(Tranco, Secrank, Majestic) churn least, the per-day measured lists
(Umbrella, Alexa) churn most, and CrUX — published monthly — does not
churn at all within a month.
"""

from benchmarks.conftest import show
from repro.core import report
from repro.core.experiments import ExperimentResult
from repro.core.stability import stability_report
from repro.providers.registry import PROVIDER_ORDER


def test_stability(benchmark, ctx):
    depth = ctx.magnitudes[2]

    from repro.core.experiments import run_stability

    result = benchmark.pedantic(run_stability, args=(ctx,), rounds=1, iterations=1)
    show(result, "Scheitle et al. (IMC '18): lists are unstable; Tranco "
                 "(NDSS '19) exists to fix that via 30-day aggregation; "
                 "CrUX is a fixed monthly snapshot.")

    reports = result.data["reports"]
    churn = {name: r.mean_daily_churn for name, r in reports.items()}

    # CrUX is a monthly snapshot: zero churn within the window.
    assert churn["crux"] == 0.0

    # Tranco's aggregation makes it far more stable than its *measured*
    # components (the near-static backlink crawl needs no help).
    assert churn["tranco"] < churn["alexa"]
    assert churn["tranco"] < churn["umbrella"] / 2

    # Umbrella is the notorious churner (as in Scheitle et al.).
    assert churn["umbrella"] == max(churn.values())

    # Rank stability mirrors set stability for the aggregated list.
    assert reports["tranco"].rank_stability > reports["umbrella"].rank_stability
