"""Figure 6: intra-Chrome metric consistency.

Paper: Chrome's three client metrics (completed pageloads, initiated
pageloads, time on site) are notably more consistent with one another
(JJ 0.73-0.86, rs 0.66-0.98) than the Cloudflare metrics are with each
other — evidence that Chrome's data quality, not metric choice, drives
CrUX's accuracy.
"""

from benchmarks.conftest import show
from repro.core.experiments import run_fig1, run_fig6

_PAPER = """
Figure 6: intra-Chrome JJ 0.73-0.86 and rs 0.66-0.98 — tighter than the
intra-Cloudflare agreement of Figure 1; completed vs initiated pageloads
is the closest pair.
"""


def test_fig6_intra_chrome(benchmark, ctx):
    result = benchmark.pedantic(run_fig6, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    cells = result.data["cells"]

    values = {pair: cell.jaccard for pair, cell in cells.items()}
    chrome_min = min(values.values())
    chrome_max = max(values.values())

    # Tight internal agreement.
    assert chrome_min > 0.5
    assert chrome_max > 0.8

    # Completed vs initiated is the closest pair; time-on-site differs most.
    assert values[("completed", "initiated")] == chrome_max
    assert min(values, key=values.get)[1] == "time" or min(values, key=values.get)[0] == "time"

    # Chrome metrics agree more than Cloudflare metrics do (Figure 1).
    fig1 = run_fig1(ctx)
    cf_lo, _cf_hi = fig1.data["jaccard_band"]
    assert chrome_min > cf_lo

    # Spearman: strong across all pairs.
    assert all(cell.spearman > 0.5 for cell in cells.values())
