"""Section 2: how research papers use top lists.

Paper: of the 2021 papers using top lists at USENIX Security, IMC, NSDI,
SOUPS, NDSS, and WWW, 50 (85%) use lists only as an unordered set, 9 (15%)
use site ranks, and 5 (8%) use both — the observation that makes CrUX's
bucketed format suitable for most research.
"""

import pytest

from benchmarks.conftest import show
from repro.core.experiments import run_survey

_PAPER = """
Section 2: 50/59 papers (85%) use top lists only as a set; 9 (15%) use
rank; 5 (8%) use both.  Scheitle et al.: 22% of measurement, 9% of
security, 6% of networking, 8% of web papers use a top list.
"""


def test_survey_stats(benchmark, ctx):
    result = benchmark.pedantic(run_survey, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    stats = result.data["stats"]

    assert stats.papers == 59
    assert stats.set_only == 50
    assert stats.rank_using == 9
    assert stats.both == 5
    assert stats.set_only_fraction == pytest.approx(0.847, abs=0.01)
    assert stats.rank_using_fraction == pytest.approx(0.153, abs=0.01)
