"""Figure 8 (appendix): all 21 filter-aggregation combinations, one day.

Paper: the full 21x21 comparison shows heavy redundancy — 200-filtered and
referer-filtered counts track all-requests (rs = 0.97 / 0.92); unique-IP
vs (IP, UA) aggregations are nearly identical; text/html behaves like the
browser/TLS family — which is what justifies reducing to seven final
metrics.
"""

from benchmarks.conftest import show
from repro.core.experiments import run_fig8

_PAPER = """
Figure 8: 200-filter ~ all-requests (rs = 0.97, JJ = 0.84); referer-filter
~ top-5-browsers (rs = 0.92, JJ = 0.77); unique-IP ~ (IP, UA) (rs = 0.99);
html-filter clusters with TLS/browsers; the redundancy motivates the
seven-metric reduction of Section 3.3.
"""


def test_fig8_all_combinations(benchmark, ctx):
    result = benchmark.pedantic(run_fig8, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)

    rho = result.data["spearman"]
    jj = result.data["jaccard"]

    # The redundancies that justified dropping filters (Section 3.2):
    assert rho[("all:requests", "200:requests")] > 0.9
    assert rho[("referer:requests", "browsers:requests")] > 0.8
    assert rho[("all:ips", "all:ip_ua")] > 0.95
    assert jj[("all:requests", "200:requests")] > 0.75

    # The html filter tracks pageload-ish metrics better than raw requests.
    assert rho[("html:requests", "tls:requests")] > rho[("html:requests", "all:requests")] or \
        jj[("html:requests", "tls:requests")] > jj[("html:requests", "all:requests")]

    # The surviving diversity: bookends stay far apart even here.
    assert jj[("all:requests", "root:requests")] < 0.5
