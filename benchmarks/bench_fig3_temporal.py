"""Figure 3: popularity metrics over time (daily, full month).

Paper: daily correlations are somewhat periodic — Umbrella's Jaccard index
moves with the work week, Alexa's and Umbrella's Spearman correlations are
best on weekends — but the ordering of lists barely changes day to day.
Alexa improves, by both measures, in late February after an unannounced
methodology change.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core.experiments import run_fig3
from repro.core.temporal import weekend_effect

_PAPER = """
Figure 3: umbrella JJ weekly-periodic; alexa & umbrella rs better on
weekends; ordering of lists stable across days; alexa improves in late
February (unexplained methodology change).
"""


def test_fig3_temporal(benchmark, ctx):
    result = benchmark.pedantic(run_fig3, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)

    series = result.data["series"]
    analysis = result.data["analysis"]

    # Weekly structure exists across the board (the reference's own
    # enterprise/home rhythm), and the DNS list's rank accuracy swings
    # with the work week: Umbrella is distinctly *more accurate on
    # weekends*, when its biased enterprise tier goes quiet — the paper's
    # Spearman weekend effect.  (The paper also reports the effect for
    # Alexa; in our reproduction Alexa's weekend delta is within noise,
    # recorded as a deviation in EXPERIMENTS.md.)
    amplitudes = {name: analysis.weekly_amplitude(name) for name in series}
    assert max(amplitudes.values()) > 2 * min(amplitudes.values())

    rho_deltas = {
        name: weekend_effect(series[name])[1]
        for name in series
        if name != "crux"
    }
    assert rho_deltas["umbrella"] > 0.0
    assert rho_deltas["umbrella"] == max(rho_deltas.values()) or         rho_deltas["secrank"] == max(rho_deltas.values())
    assert rho_deltas["alexa"] > -0.03

    # The ordering of lists is largely consistent over time.
    assert analysis.ordering_stability() > 0.8

    # Alexa improves after the late-month panel change.
    jj_delta, rho_delta = result.data["alexa_trend"]
    assert jj_delta > 0.0
    assert np.isnan(rho_delta) or rho_delta > -0.05

    # No other list shows a comparable late-month jump.
    for name in ("majestic", "umbrella", "secrank"):
        other_delta, _ = analysis.trend_delta(name, ctx.config.alexa_change_day)
        assert other_delta < jj_delta
