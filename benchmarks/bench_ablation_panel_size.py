"""Ablation: panel size vs list accuracy.

The paper attributes Alexa's inaccuracy partly to its small extension
panel and CrUX's accuracy to Chrome's enormous one ("Umbrella and CrUX are
computed off of a significantly larger set of users").  Sweeping Alexa's
daily observation budget over three orders of magnitude should trace the
accuracy curve between those regimes.
"""

from benchmarks.conftest import show
from repro.cdn.metrics import CdnMetricEngine
from repro.core import report
from repro.core.evaluation import CloudflareEvaluator
from repro.core.experiments import ExperimentResult
from repro.providers.alexa import AlexaProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

_PANEL_SIZES = (2e3, 2e4, 2e5, 2e6)


def test_ablation_panel_size(benchmark):
    def run():
        rows = []
        scores = []
        for events in _PANEL_SIZES:
            config = WorldConfig(
                n_sites=8000, n_days=6, seed=20220201, alexa_daily_events=events
            )
            world = build_world(config)
            traffic = TrafficModel(world)
            engine = CdnMetricEngine(world, traffic)
            evaluator = CloudflareEvaluator(world, engine)
            alexa = AlexaProvider(world, traffic)
            result = evaluator.evaluate_month(
                alexa, "all:ips", config.bucket_sizes[2], days=range(3)
            )
            rows.append([f"{events:.0e}", result.jaccard, result.n])
            scores.append(result.jaccard)
        text = report.format_table(
            ["panel events/day", "jaccard (all:ips)", "n"],
            rows,
            title="Alexa accuracy vs panel size",
        )
        return ExperimentResult(
            "ablation_panel", "Panel-size ablation", {"scores": scores}, text
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result, "Mechanism check: small panels are a root cause of panel-"
                 "list inaccuracy; accuracy should rise monotonically-ish "
                 "with panel size and saturate at the taste-bias ceiling.")

    scores = result.data["scores"]
    # Bigger panels help...
    assert scores[-1] > scores[0] * 1.15
    # ...up to the persistent-bias ceiling: the last doubling gains little.
    assert scores[-1] - scores[-2] < scores[1] - scores[0] + 0.05
    # Broadly monotone (allow one small inversion from noise).
    drops = sum(1 for a, b in zip(scores, scores[1:]) if b < a - 0.01)
    assert drops <= 1
