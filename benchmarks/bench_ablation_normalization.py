"""Ablation: PSL normalization on vs off (Section 4.2).

The paper: "Without normalization, all correlations are lower and this
appears to be a strictly worse alternative."  We re-run the Figure 2
comparison for the two name-granular lists with the min-rank PSL folding
disabled and check that every score drops.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core.experiments import ExperimentResult
from repro.core.normalize import normalize_list
from repro.core.similarity import jaccard_index
from repro.core import report


def _evaluate(ctx, provider_name, fold, magnitude, day=0):
    world = ctx.world
    normalized = normalize_list(world, ctx.providers[provider_name].daily_list(day), fold=fold)
    list_side = ctx.evaluator.cloudflare_slice(normalized, magnitude)
    if len(list_side) == 0:
        # An empty comparable set is total failure, not perfect agreement
        # (CrUX without normalization matches nothing: every entry is an
        # origin string).
        return 0.0, 0
    cf_side = ctx.engine.top(day, "all:requests", len(list_side))
    return jaccard_index(list_side, cf_side), len(list_side)


def test_ablation_normalization(benchmark, ctx):
    magnitude = ctx.magnitudes[2]

    def run():
        rows = []
        data = {}
        for name in ("umbrella", "crux", "alexa"):
            with_fold, n_folded = _evaluate(ctx, name, True, magnitude)
            without, n_raw = _evaluate(ctx, name, False, magnitude)
            rows.append([name, with_fold, without, n_folded, n_raw])
            data[name] = (with_fold, without)
        text = report.format_table(
            ["list", "JJ folded", "JJ unfolded", "n folded", "n unfolded"],
            rows,
            title="PSL normalization ablation (all:requests, 100K analog)",
        )
        return ExperimentResult("ablation_norm", "Normalization ablation", data, text)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result, "Paper §4.2: without normalization all correlations are "
                 "lower — a strictly worse alternative.")

    # Name-granular lists collapse without folding...
    for name in ("umbrella", "crux"):
        folded, unfolded = result.data[name]
        assert unfolded < folded * 0.8, name
    # ...while a domain-granular list is unaffected.
    folded, unfolded = result.data["alexa"]
    assert unfolded == folded
