"""Figure 2: correlation between top lists and Cloudflare.

Paper: by Jaccard index, CrUX (0.23-0.43) clearly beats every other list
and is the only one inside the intra-Cloudflare agreement band; Umbrella is
second (0.17-0.29); Tranco/Trexa fall in the middle; Alexa (0.13-0.19),
Majestic (0.13-0.15), and Secrank (0.08-0.11) do worst.  All seven metrics
rank the lists' accuracy identically (pairwise rs = 1.0).  By Spearman,
Alexa/Tranco/Trexa are highest and Majestic/Secrank lowest; CrUX cannot be
evaluated (bucketed).
"""

import numpy as np

from benchmarks.conftest import show
from repro.cdn.filters import FINAL_SEVEN
from repro.core.experiments import run_fig2
from repro.providers.registry import PROVIDER_ORDER

_PAPER = """
Figure 2a (JJ): crux 0.23-0.43 > umbrella 0.17-0.29 > tranco/trexa middle >
alexa 0.13-0.19 > majestic 0.13-0.15 > secrank 0.08-0.11; all 7 metrics
agree on the ordering (rs = 1.0).  Figure 2b (rs): alexa/tranco/trexa
highest; umbrella/majestic/secrank poor; CrUX not computable.
"""


def test_fig2_toplists_vs_cloudflare(benchmark, ctx):
    result = benchmark.pedantic(run_fig2, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    matrix = result.data["matrix"]

    # CrUX strictly best on every metric.
    for combo in FINAL_SEVEN:
        scores = {name: matrix[name][combo].jaccard for name in PROVIDER_ORDER}
        assert max(scores, key=scores.get) == "crux", combo

    # Secrank and Majestic are the two worst on every metric.
    for combo in FINAL_SEVEN:
        scores = {name: matrix[name][combo].jaccard for name in PROVIDER_ORDER}
        assert set(sorted(scores, key=scores.get)[:2]) == {"secrank", "majestic"}

    # Near-perfect cross-metric agreement on the ordering of lists.
    # The paper reports exactly 1.0; we land slightly below because our
    # Tranco and Umbrella are nearly tied (documented in EXPERIMENTS.md).
    assert result.data["ordering_agreement"] > 0.85

    # CrUX's spearman is undefined (rank-magnitude buckets only).
    assert all(np.isnan(matrix["crux"][combo].spearman) for combo in FINAL_SEVEN)

    # Rank correlations are weak-to-moderate at best for everyone.
    best_rho = np.nanmax(
        [matrix[name][combo].spearman for name in PROVIDER_ORDER for combo in FINAL_SEVEN]
    )
    assert best_rho < 0.75

    # Majestic and Secrank have the weakest rank correlations on average.
    mean_rho = {
        name: np.nanmean([matrix[name][combo].spearman for combo in FINAL_SEVEN])
        for name in PROVIDER_ORDER
        if name != "crux"
    }
    worst_two = set(sorted(mean_rho, key=mean_rho.get)[:2])
    assert "majestic" in worst_two or "secrank" in worst_two
