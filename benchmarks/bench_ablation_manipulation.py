"""Ablation: list manipulation and Tranco's hardening.

The paper leans on the manipulation literature (Le Pochat et al.,
Rweyemamu et al.): single-source lists are cheap to game; Tranco's 30-day
multi-list aggregation is the defence.  We attack a deep-tail site with
fake panel pageviews (Alexa) and botnet queries (Umbrella) for three days
and compare how far it climbs on each list versus on Tranco.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core import report
from repro.core.experiments import ExperimentResult
from repro.providers.manipulation import AttackWindow, run_manipulation_experiment
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world


def test_ablation_manipulation(benchmark):
    config = WorldConfig(n_sites=8000, n_days=14, seed=20220201)
    world = build_world(config)
    traffic = TrafficModel(world)
    target = 6500  # a deep-tail nobody
    attack = AttackWindow(target_site=target, start_day=5, end_day=7, intensity=8000)

    def run():
        clean = run_manipulation_experiment(
            world, traffic, AttackWindow(target, 99, 99, 0.0)
        )
        attacked = run_manipulation_experiment(world, traffic, attack)
        rows = []
        for name in ("alexa", "umbrella", "tranco"):
            rows.append([
                name,
                clean.best_rank(name),
                attacked.best_rank(name),
                attacked.trajectories[name][-1],
            ])
        text = report.format_table(
            ["list", "clean best rank", "attacked best rank", "rank on final day"],
            rows,
            title=(
                f"3-day attack on true-rank-{target + 1} site "
                f"(intensity {attack.intensity:.0f}/day)"
            ),
        )
        return ExperimentResult(
            "ablation_attack",
            "Manipulation resistance",
            {"clean": clean, "attacked": attacked},
            text,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result, "Le Pochat et al.: single-source lists are cheap to game; "
                 "Tranco's cross-list 30-day aggregation blunts short "
                 "attacks.  The paper (§6.4) adds: aggregation does NOT fix "
                 "composition bias, only manipulation.")

    attacked = result.data["attacked"]
    clean = result.data["clean"]

    alexa_best = attacked.best_rank("alexa")
    tranco_best = attacked.best_rank("tranco")
    assert alexa_best is not None and alexa_best < 100  # attack works
    # Tranco blunts it: the attacker lands far lower than on Alexa.
    assert tranco_best is None or tranco_best > alexa_best * 3

    # The Alexa gain decays after the attack stops (EMA smoothing).
    trajectory = attacked.trajectories["alexa"]
    during = trajectory[7]
    after = trajectory[-1]
    assert during is not None
    assert after is None or after > during

    # The clean run never ranks the target anywhere near the head.
    for name in ("alexa", "umbrella", "tranco"):
        best = clean.best_rank(name)
        assert best is None or best > 1000, name
