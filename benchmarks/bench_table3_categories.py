"""Table 3: odds of website inclusion by category.

Paper: every list has its own category skew, but adult, gambling, abuse,
and parked domains are under-included almost everywhere (Alexa adult 0.27x,
gambling 0.22x, parked 0.11x; Majestic adult 0.14x), government and news
are over-included by the link-driven lists (Majestic gov 5.45x, Tranco gov
17.62x), and CrUX is the only list that also covers adult and gambling
sites (2.83x / 1.84x).
"""

import numpy as np

from benchmarks.conftest import show
from repro.core.experiments import run_table3

_PAPER = """
Table 3: adult/gambling/parked ORs < 1 for every panel/DNS/link list
(alexa adult 0.27, majestic adult 0.14, umbrella gambling 0.13, parked
0.03-0.2); majestic/tranco government 5.45/17.62 and travel/news > 1;
crux adult 2.83 and gambling 1.84 — the only list covering them.
"""


def test_table3_categories(benchmark, ctx):
    result = benchmark.pedantic(run_table3, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    odds = result.data["odds"]

    def ratio(name, category):
        return odds[name][category].odds_ratio

    # Adult under-inclusion by the private-browsing-blind and
    # enterprise-filtered lists.
    for name in ("alexa", "umbrella"):
        assert ratio(name, "adult") < 0.7, name

    # Parked domains under-included by everyone (nobody visits them on
    # purpose, and crawlers cannot see them).  Only cells with enough
    # universe members are statistically meaningful.
    for name in ("alexa", "majestic", "umbrella", "tranco", "crux"):
        cell = odds[name]["parked"]
        if cell.n_category >= 30 and np.isfinite(cell.odds_ratio):
            assert cell.odds_ratio < 0.8, name

    # Link-magnet categories over-included by the link-driven list.
    assert ratio("majestic", "government") > 1.0
    assert ratio("majestic", "news") > 1.0

    # CrUX treats adult sites far better than Alexa/Umbrella.
    assert ratio("crux", "adult") > ratio("alexa", "adult")
    assert ratio("crux", "adult") > ratio("umbrella", "adult")

    # Statistical discipline: everything flagged significant survived the
    # Bonferroni-corrected threshold.
    for per_list in odds.values():
        for cell in per_list.values():
            if cell.significant:
                assert cell.p_value < 0.01 / 22
