"""Table 2: percent of raw list entries deviating from the PSL domain.

Paper: Umbrella (FQDN-granular) deviates 71-78%; CrUX (origin-granular)
66-75%; Alexa 0.3-2.3%; Majestic 0.1-5.9%; Trexa 0.2-1.3%; Secrank and
Tranco 0.0%.
"""

from benchmarks.conftest import show
from repro.core.experiments import run_table2

_PAPER = """
Table 2: umbrella 71-78% and crux 66-75% deviate (they rank FQDNs and
origins); alexa/majestic/trexa under ~6%; secrank/tranco 0.0%.
"""


def test_table2_psl_deviation(benchmark, ctx):
    result = benchmark.pedantic(run_table2, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    deviation = result.data["deviation"]

    for label in ("10K", "100K", "1M"):
        # Name-granular lists deviate massively...
        assert deviation["umbrella"][label] > 40.0, label
        assert deviation["crux"][label] > 40.0, label
        # ...domain-granular lists barely at all.
        for name in ("alexa", "majestic", "secrank", "tranco", "trexa"):
            assert deviation[name][label] < 6.0, (name, label)

    # Umbrella's head is the worst offender (TLDs + service names).
    assert deviation["umbrella"]["1K"] > 50.0
