"""Figure 4: top-list accuracy by client platform.

Paper: every non-CrUX list approximates desktop (Windows) browsing better
than mobile (Android) — Alexa's desktop Jaccard is nearly double its
mobile one; Majestic shows the smallest gap — but the gap is small enough
that platform alone does not explain list inaccuracy.
"""

from benchmarks.conftest import show
from repro.core.experiments import run_fig4

_PAPER = """
Figure 4: all lists better on Windows than Android (JJ 0.023-0.15 desktop
vs 0.017-0.1 mobile); alexa's gap largest (~2x), majestic's smallest; the
delta is small, so platform alone does not explain inaccuracy.
"""


def test_fig4_platform_bias(benchmark, ctx):
    result = benchmark.pedantic(run_fig4, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    cells = result.data["cells"]

    # Desktop beats mobile for the desktop-skewed lists.
    for name in ("alexa", "tranco", "trexa", "umbrella"):
        assert cells[name]["windows"].jaccard > cells[name]["android"].jaccard, name

    # Alexa has one of the largest relative gaps (desktop-only panel).
    gaps = {
        name: cells[name]["windows"].jaccard / max(cells[name]["android"].jaccard, 1e-9)
        for name in cells
    }
    assert gaps["alexa"] > gaps["majestic"]

    # Majestic's link-based method is the most platform-neutral.
    majestic_gap = abs(
        cells["majestic"]["windows"].jaccard - cells["majestic"]["android"].jaccard
    )
    alexa_gap = abs(
        cells["alexa"]["windows"].jaccard - cells["alexa"]["android"].jaccard
    )
    assert majestic_gap < alexa_gap

    # The deltas stay modest: platform bias alone cannot explain the
    # Figure 2 inaccuracy.
    for name, per_platform in cells.items():
        gap = per_platform["windows"].jaccard - per_platform["android"].jaccard
        assert abs(gap) < 0.2, name
