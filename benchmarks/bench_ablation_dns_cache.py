"""Ablation: shared-resolver caching vs Umbrella's rank accuracy.

Section 5.2 blames "caching, TTLs, and other DNS complexities" for
Umbrella's inability to capture fine-grained popularity.  Our model makes
the mechanism concrete: enterprise devices share forwarder caches, so
Umbrella counts organizations, and the head of the count distribution
saturates.  Sweeping the org size from 1 (no sharing — every device
queries Umbrella directly) upward should degrade rank accuracy while
leaving set accuracy roughly alone.
"""

import numpy as np

import numpy as np

from benchmarks.conftest import show
from repro.cdn.metrics import CdnMetricEngine
from repro.core import report
from repro.core.evaluation import CloudflareEvaluator
from repro.core.experiments import ExperimentResult
from repro.providers.umbrella import UmbrellaProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

_ORG_SIZES = (1.0, 300.0, 3000.0, 30000.0)


def test_ablation_dns_cache(benchmark):
    def run():
        rows = []
        rhos = []
        jjs = []
        for org_size in _ORG_SIZES:
            config = WorldConfig(
                n_sites=8000, n_days=4, seed=20220201, umbrella_org_size=org_size
            )
            world = build_world(config)
            traffic = TrafficModel(world)
            engine = CdnMetricEngine(world, traffic)
            evaluator = CloudflareEvaluator(world, engine)
            umbrella = UmbrellaProvider(world, traffic)
            # Isolate the cache mechanism: hold the provider's other
            # distortions (panel taste, TTL-policy heterogeneity) flat.
            umbrella._taste = np.ones(world.n_sites)  # noqa: SLF001
            umbrella._ttl_factor = np.ones(world.n_sites)  # noqa: SLF001
            result = evaluator.evaluate_month(
                umbrella, "all:ips", config.bucket_sizes[1], days=range(2)
            )
            rows.append([f"{org_size:.0f}", result.jaccard, result.spearman])
            jjs.append(result.jaccard)
            rhos.append(result.spearman)
        text = report.format_table(
            ["devices per shared cache", "jaccard", "spearman"],
            rows,
            title="Umbrella accuracy vs forwarder-cache sharing",
        )
        return ExperimentResult(
            "ablation_dns", "DNS-cache ablation", {"jj": jjs, "rho": rhos}, text
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result, "Mechanism check for §5.2: cache sharing compresses the "
                 "head of the unique-client distribution, destroying rank "
                 "information while set membership survives.")

    rhos = result.data["rho"]
    jjs = result.data["jj"]
    # Rank accuracy degrades as sharing grows.
    assert rhos[-1] < rhos[0] - 0.2
    # Set accuracy is far less sensitive than rank accuracy — the paper's
    # "good coverage, bad ranks" signature of DNS lists.
    jj_drop = jjs[0] - jjs[-1]
    rho_drop = rhos[0] - rhos[-1]
    assert jj_drop < rho_drop * 0.5
