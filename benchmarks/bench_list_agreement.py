"""Context experiment: how much do the top lists agree with each other?

Scheitle et al. (quoted in Section 2): "There is little agreement between
top lists in terms of both overlap and rank order of names" — the premise
that makes an accuracy evaluation necessary.  We compute the pairwise
agreement among our seven simulated lists and check the structure: low
overlap overall, with the amalgams (Tranco/Trexa) naturally closest to
their dominant components.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core import report
from repro.core.agreement import pairwise_list_agreement
from repro.core.experiments import ExperimentResult
from repro.providers.registry import PROVIDER_ORDER


def test_list_agreement(benchmark, ctx):
    depth = ctx.magnitudes[2]

    from repro.core.experiments import run_agreement

    result = benchmark.pedantic(run_agreement, args=(ctx,), rounds=1, iterations=1)
    show(result, "Scheitle et al.: lists have little overlap and rank "
                 "agreement with one another; amalgam lists trivially "
                 "overlap their components.")

    matrix = result.data["matrix"]

    # The fractured landscape: mean pairwise overlap well below half.
    assert matrix.mean_offdiagonal_jaccard() < 0.5

    # Trexa is Alexa-weighted by construction: their overlap tops the
    # independent pairs.
    trexa_alexa = matrix.jaccard[("trexa", "alexa")]
    independent_pairs = [
        matrix.jaccard[(a, b)]
        for a in ("alexa", "umbrella", "majestic", "secrank", "crux")
        for b in ("alexa", "umbrella", "majestic", "secrank", "crux")
        if a < b
    ]
    assert trexa_alexa > max(independent_pairs)

    # Secrank is the odd one out: lowest mean overlap with everyone.
    mean_overlap = {
        name: np.mean([
            matrix.jaccard[(name, other)]
            for other in PROVIDER_ORDER
            if other != name
        ])
        for name in PROVIDER_ORDER
    }
    assert min(mean_overlap, key=mean_overlap.get) == "secrank"

    # CrUX pairs have no Spearman (bucketed), as in the paper.
    assert np.isnan(matrix.spearman[("crux", "alexa")])
