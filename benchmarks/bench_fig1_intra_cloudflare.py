"""Figure 1: intra-Cloudflare metric consistency.

Paper: the seven final metrics disagree substantially with one another —
Jaccard indices 0.28-0.82 across pairs — with all-HTTP-requests vs
root-page-loads the least-correlated pair (rs = 0.41, JJ = 0.28), and the
unique-IP family internally tight (IP vs (IP, UA): rs = 0.99, JJ = 0.95).
"""

from benchmarks.conftest import show
from repro.core.experiments import run_fig1
from repro.core.similarity import rank_correlation_of_lists

_PAPER = """
Figure 1: intra-Cloudflare JJ spread 0.28-0.82; all-requests vs root-page
is the least similar pair (JJ = 0.28, rs = 0.41); TLS handshakes sit
between the bookends; unique-IP vs (IP, UA) nearly identical (rs = 0.99).
"""


def test_fig1_intra_cloudflare(benchmark, ctx):
    result = benchmark.pedantic(run_fig1, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)

    jj = result.data["jaccard"]
    lo, hi = result.data["jaccard_band"]

    # Wide spread between metric pairs, as in the paper.
    assert lo < 0.45
    assert hi > 0.75

    # All-requests vs root-page is among the least similar pairs.
    bookends = jj[("all:requests", "root:requests")]
    assert bookends <= lo * 1.35

    # TLS correlates with both bookends better than they do with each other.
    assert jj[("tls:requests", "all:requests")] > bookends
    assert jj[("tls:requests", "root:requests")] > bookends

    # The unique-IP family is internally tight.
    assert jj[("all:ips", "browsers:ips")] > 0.75

    # The (IP, UA) aggregation is nearly identical to unique IPs.
    depth = result.data["depth"]
    rho = rank_correlation_of_lists(
        ctx.engine.ranking(0, "all:ips")[:depth],
        ctx.engine.ranking(0, "all:ip_ua")[:depth],
    ).rho
    assert rho > 0.95
