"""Figure 5 / Section 5.3: rank-magnitude movement vs Cloudflare.

Paper: of the 1,790 Alexa top-10K domains trackable against the bookend
consensus, 70% are overranked (placed in a less-popular Cloudflare bucket)
and 27.2% by two or more orders of magnitude; 87.1% of the Alexa top 1K are
overranked.  CrUX: 47.1% of its top-10K domains are overranked and only 1%
by two or more magnitudes.  Majestic/Tranco/Trexa/Umbrella look like Alexa.
"""

import numpy as np

from benchmarks.conftest import show
from repro.core.experiments import run_fig5

_PAPER = """
Figure 5 / Section 5.3: alexa top-10K 70% overranked (27.2% by >= 2
magnitudes), top-1K 87.1% overranked; crux top-10K 47.1% overranked (1% by
>= 2 magnitudes) — far better bucket agreement.
"""


def test_fig5_rank_movement(benchmark, ctx):
    result = benchmark.pedantic(
        run_fig5, args=(ctx,), kwargs={"providers": ("alexa", "crux", "majestic")},
        rounds=1, iterations=1,
    )
    show(result, _PAPER)
    stats = result.data["stats"]

    # A majority of Alexa's 10K bucket is overranked...
    assert stats["alexa"]["overranked_10k"] > 0.5
    # ...while CrUX misplaces far less.
    assert stats["crux"]["overranked_10k"] < stats["alexa"]["overranked_10k"] * 0.75

    # Two-or-more magnitude errors are rare for CrUX.
    crux_2plus = stats["crux"]["overranked_10k_2plus"]
    assert np.isnan(crux_2plus) or crux_2plus < 0.1

    # The top-1K bucket shows the same direction.
    crux_1k = stats["crux"]["overranked_1k"]
    alexa_1k = stats["alexa"]["overranked_1k"]
    if not (np.isnan(crux_1k) or np.isnan(alexa_1k)):
        assert crux_1k <= alexa_1k

    # Majestic behaves like Alexa, not like CrUX (the paper: "results for
    # Majestic, Tranco, Trexa, and Umbrella are very similar [to Alexa]").
    assert stats["majestic"]["overranked_10k"] > stats["crux"]["overranked_10k"]

    # Enough consensus domains to make the statistics meaningful.
    assert result.data["consensus_size"] > 100
