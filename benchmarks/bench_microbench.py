"""Microbenchmarks of the performance-critical primitives.

Unlike the experiment benches (one-shot, pedantic), these run multiple
rounds to give real timing distributions for the code on the hot paths:
PSL matching, similarity measures, DNS cache operations, the metric
engine's per-day computation, and provider list assembly.
"""

import numpy as np
import pytest

from repro.cdn.metrics import CdnMetricEngine
from repro.core.similarity import jaccard_index, spearman
from repro.dnslib.cache import DnsCache
from repro.dnslib.records import ResourceRecord
from repro.traffic.fastpath import TrafficModel
from repro.weblib.psl import default_psl
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world

_MICRO_CONFIG = WorldConfig(n_sites=5_000, n_days=4, seed=31)


@pytest.fixture(scope="module")
def micro_world():
    return build_world(_MICRO_CONFIG)


def test_psl_registrable_domain(benchmark, micro_world):
    psl = default_psl()
    names = [f"www.{n}" for n in micro_world.sites.names[:1000]]

    def run():
        return [psl.registrable_domain(name) for name in names]

    result = benchmark(run)
    assert len(result) == 1000


def test_spearman_large(benchmark):
    rng = np.random.default_rng(3)
    x = rng.normal(size=10_000)
    y = x + rng.normal(size=10_000)

    result = benchmark(spearman, x, y)
    assert result.rho > 0.5


def test_jaccard_large(benchmark):
    a = list(range(0, 20_000, 2))
    b = list(range(0, 20_000, 3))

    value = benchmark(jaccard_index, a, b)
    assert 0.0 < value < 1.0


def test_dns_cache_churn(benchmark):
    names = [f"site{i}.example" for i in range(512)]
    records = [
        ResourceRecord(name=name, rtype="A", ttl=60, data="198.51.100.1")
        for name in names
    ]

    def run():
        cache = DnsCache(capacity=1024)
        hits = 0
        for t in range(4):
            now = t * 30.0
            for record in records:
                if cache.get(record.name, "A", now) is None:
                    cache.put(record, now)
                else:
                    hits += 1
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_world_build(benchmark):
    def run():
        return build_world(WorldConfig(n_sites=2_000, n_days=4, seed=17))

    world = benchmark(run)
    assert world.n_sites == 2_000


def test_metric_engine_day(benchmark, micro_world):
    traffic = TrafficModel(micro_world)
    engine = CdnMetricEngine(micro_world, traffic)
    engine.day_counts(0)  # warm the traffic tensors

    def run():
        engine.drop_cache()
        return engine.day_counts(0, combos=("all:requests", "all:ips"))

    counts = benchmark(run)
    assert (counts["all:requests"] >= 0).all()


def test_provider_daily_list(benchmark, micro_world):
    from repro.providers.umbrella import UmbrellaProvider

    traffic = TrafficModel(micro_world)
    provider = UmbrellaProvider(micro_world, traffic)

    result = benchmark(provider.daily_list, 1)
    assert len(result) > 100
