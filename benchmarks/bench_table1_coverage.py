"""Table 1: Cloudflare coverage of top lists.

Paper (percent of list entries Cloudflare serves):

    list      1K     10K    100K   1M
    alexa     14.97  23.16  26.63  23.12
    majestic  10.12  15.86  23.44  17.58
    secrank    0.57   3.65   6.37   7.80
    tranco     9.98  15.69  24.83  19.65
    trexa     11.62  18.75  25.19  21.50
    umbrella   1.99   4.09   6.75  10.86
    crux      24.00  31.97  30.67  23.57
"""

from benchmarks.conftest import show
from repro.core.experiments import run_table1

_PAPER = """
Table 1: crux has the highest coverage overall (24-32%); secrank (0.6-7.8%)
and umbrella (2-10.9%) the lowest at small magnitudes (umbrella's head is
bare TLDs and infrastructure names; secrank's is the Chinese web); the
domain lists sit at 10-27%.
"""


def test_table1_coverage(benchmark, ctx):
    result = benchmark.pedantic(run_table1, args=(ctx,), rounds=1, iterations=1)
    show(result, _PAPER)
    coverage = result.data["coverage"]

    # Secrank has the lowest coverage at every magnitude >= 10K; its DNS
    # vantage sees a web Cloudflare barely serves.
    for label in ("10K", "100K", "1M"):
        others = [coverage[n][label] for n in coverage if n != "secrank"]
        assert coverage["secrank"][label] < min(others), label

    # Umbrella's smallest bucket is poisoned by TLDs and infra names.
    assert coverage["umbrella"]["1K"] < coverage["umbrella"]["100K"]

    # Every list lands in a plausible coverage band at the 1M magnitude.
    for name, per_magnitude in coverage.items():
        assert 0.0 <= per_magnitude["1M"] <= 45.0, name

    # CrUX coverage is at or near the top for the bulk magnitudes.
    for label in ("10K", "100K", "1M"):
        ranking = sorted(coverage, key=lambda n: coverage[n][label], reverse=True)
        assert ranking.index("crux") <= 2, label
