"""A TTL-honouring, capacity-bounded DNS cache.

Time is a logical clock (seconds as float) supplied by the caller, so
simulations control it deterministically.  Eviction is LRU when capacity is
exceeded; expiry is checked lazily on read.  The cache keeps hit/miss
statistics, which the event-level Umbrella pipeline reads to quantify
query suppression.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnslib.records import ResourceRecord

__all__ = ["CacheStats", "DnsCache"]


@dataclass
class CacheStats:
    """Cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 when empty)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    record: ResourceRecord
    expires_at: float


class DnsCache:
    """An LRU cache of resource records with TTL expiry.

    Args:
        capacity: maximum number of cached record sets.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, rtype: str, now: float) -> Optional[ResourceRecord]:
        """Look up a record at logical time ``now``.

        Expired entries are removed and counted; hits refresh LRU order.
        """
        key = (name.lower(), rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.expires_at <= now:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.record

    def put(self, record: ResourceRecord, now: float) -> None:
        """Insert a record, evicting the LRU entry if at capacity."""
        key = record.key
        self._entries[key] = _Entry(record=record, expires_at=now + record.ttl)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()
