"""DNS query logs and their aggregation into popularity counts.

What Umbrella publishes is, at heart, an aggregation of a query log:
unique client IPs per name per day.  :class:`QueryLog` stores query events
and computes exactly that, so the event-level pipeline can build a real
Umbrella-style ranking and the tests can compare it against the analytic
provider.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

__all__ = ["QueryLog"]


class QueryLog:
    """Accumulates (day, name, client) query events."""

    def __init__(self) -> None:
        self._events: Dict[int, List[Tuple[str, str]]] = defaultdict(list)

    def record(self, day: int, name: str, client_id: str) -> None:
        """Record one observed query."""
        self._events[day].append((name.lower(), client_id))

    def total_queries(self, day: int) -> int:
        """Number of queries observed on ``day``."""
        return len(self._events.get(day, ()))

    def unique_clients_per_name(self, day: int) -> Dict[str, int]:
        """Umbrella's aggregation: distinct clients per name for a day."""
        sets: Dict[str, Set[str]] = defaultdict(set)
        for name, client in self._events.get(day, ()):
            sets[name].add(client)
        return {name: len(clients) for name, clients in sets.items()}

    def query_volume_per_name(self, day: int) -> Dict[str, int]:
        """Raw query counts per name for a day."""
        counts: Dict[str, int] = defaultdict(int)
        for name, _client in self._events.get(day, ()):
            counts[name] += 1
        return dict(counts)

    def ranking(self, day: int) -> List[str]:
        """Names ranked by unique clients, ties alphabetical (the Umbrella
        tie-breaking artifact)."""
        counts = self.unique_clients_per_name(day)
        return sorted(counts, key=lambda name: (-counts[name], name))
