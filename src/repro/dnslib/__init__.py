"""A small DNS substrate: records, TTL caches, resolvers, query logs.

Two top lists in the study are DNS-derived (Umbrella, Secrank), and the
paper attributes Umbrella's rank inaccuracy to "caching, TTLs, and other
DNS complexities".  The vectorized providers model those effects
analytically; this package implements the actual machinery — authoritative
zones, a shared caching resolver with TTL expiry, per-client stubs, and a
query log — so the event-level pipeline can *measure* cache suppression
instead of assuming it, and the tests can check the analytic model against
it.
"""

from repro.dnslib.cache import CacheStats, DnsCache
from repro.dnslib.records import RRType, ResourceRecord
from repro.dnslib.resolver import AuthoritativeServer, CachingResolver, StubResolver
from repro.dnslib.querylog import QueryLog

__all__ = [
    "AuthoritativeServer",
    "CacheStats",
    "CachingResolver",
    "DnsCache",
    "QueryLog",
    "RRType",
    "ResourceRecord",
    "StubResolver",
]
