"""Resolvers: authoritative server, shared caching resolver, client stubs.

The resolution chain mirrors an enterprise deployment (the dominant
Umbrella topology):

    StubResolver (one per client)
        -> CachingResolver (shared per org/network, TTL cache)
            -> AuthoritativeServer (zone data from the world's name table)

The *upstream* of a caching resolver only sees queries its cache misses —
the mechanism that makes DNS-derived popularity counts organization-level
rather than device-level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.dnslib.cache import DnsCache
from repro.dnslib.querylog import QueryLog
from repro.dnslib.records import RRType, ResourceRecord

__all__ = ["AuthoritativeServer", "CachingResolver", "StubResolver", "NxDomain"]


class NxDomain(Exception):
    """The queried name does not exist."""


def _synthetic_address(name: str) -> str:
    """A stable, documentation-range IPv4 address for a name."""
    digest = abs(hash(name))
    return f"198.51.{(digest >> 8) % 256}.{digest % 256}"


class AuthoritativeServer:
    """Authoritative zone data: name -> A record with a per-name TTL.

    Args:
        ttls: mapping from name to TTL seconds; unknown names raise
          :class:`NxDomain` on query.
        default_ttl: TTL for names registered without an explicit TTL.
    """

    def __init__(self, ttls: Optional[Dict[str, int]] = None, default_ttl: int = 300) -> None:
        self._ttls: Dict[str, int] = {}
        self._default_ttl = default_ttl
        self.queries_served = 0
        if ttls:
            for name, ttl in ttls.items():
                self.register(name, ttl)

    def register(self, name: str, ttl: Optional[int] = None) -> None:
        """Add (or update) a name in the zone."""
        self._ttls[name.lower()] = ttl if ttl is not None else self._default_ttl

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._ttls

    def query(self, name: str, rtype: str = RRType.A) -> ResourceRecord:
        """Answer a query authoritatively.

        Raises:
            NxDomain: for unregistered names.
        """
        self.queries_served += 1
        ttl = self._ttls.get(name.lower())
        if ttl is None:
            raise NxDomain(name)
        return ResourceRecord(
            name=name, rtype=rtype, ttl=ttl, data=_synthetic_address(name)
        )


@dataclass
class CachingResolver:
    """A shared recursive resolver with a TTL cache and a query log.

    Attributes:
        resolver_id: identifier (e.g. the org or network it serves).
        upstream: the authoritative server to recurse to.
        cache: the TTL cache.
        log: optional query log; when set, *upstream* (cache-missing)
          queries are recorded — this is what a vantage point like
          Umbrella observes of a forwarding deployment.
        log_client_queries: when True the log instead records every client
          query (the Umbrella topology where devices query the service
          directly).
    """

    resolver_id: str
    upstream: AuthoritativeServer
    cache: DnsCache
    log: Optional[QueryLog] = None
    log_client_queries: bool = False

    def resolve(self, name: str, client_id: str, now: float, day: int = 0) -> ResourceRecord:
        """Resolve a name for a client at logical time ``now``.

        Raises:
            NxDomain: propagated from the authoritative server.
        """
        if self.log is not None and self.log_client_queries:
            self.log.record(day=day, name=name, client_id=client_id)
        cached = self.cache.get(name, RRType.A, now)
        if cached is not None:
            return cached
        record = self.upstream.query(name)
        self.cache.put(record, now)
        if self.log is not None and not self.log_client_queries:
            # A forwarder's upstream sees the org, not the device.
            self.log.record(day=day, name=name, client_id=self.resolver_id)
        return record


@dataclass
class StubResolver:
    """A client's stub resolver: no cache of its own, one upstream."""

    client_id: str
    resolver: CachingResolver

    def resolve(self, name: str, now: float, day: int = 0) -> ResourceRecord:
        """Resolve through the configured caching resolver."""
        return self.resolver.resolve(name, client_id=self.client_id, now=now, day=day)


def build_authoritative_from_names(
    names: "np.ndarray",
    strings: list,
    rng: np.random.Generator,
    ttl_choices: tuple = (60, 300, 300, 3600, 86400),
) -> AuthoritativeServer:
    """Build a zone covering every FQDN in a world name table.

    Args:
        names: row indices to register.
        strings: the name-table string list.
        rng: random stream for TTL assignment.
        ttl_choices: TTL population to draw from (weighted toward 300s,
          the web's modal TTL).
    """
    server = AuthoritativeServer()
    ttls = rng.choice(ttl_choices, size=len(names))
    for row, ttl in zip(names, ttls):
        server.register(strings[int(row)], int(ttl))
    return server
