"""DNS resource records.

Just enough of RFC 1035's data model for the simulation: A/AAAA/CNAME/NS
records with TTLs, name normalization, and record-set containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.weblib.domains import split_labels

__all__ = ["RRType", "ResourceRecord"]


class RRType:
    """Record type tags (string constants, as in zone files)."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    NS = "NS"

    ALL: Tuple[str, ...] = ("A", "AAAA", "CNAME", "NS")


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record.

    Attributes:
        name: owner name, normalized lowercase without trailing dot.
        rtype: one of :class:`RRType`.
        ttl: time-to-live in seconds.
        data: record data (an address or target name).
    """

    name: str
    rtype: str
    ttl: int
    data: str

    def __post_init__(self) -> None:
        if self.rtype not in RRType.ALL:
            raise ValueError(f"unsupported record type: {self.rtype!r}")
        if self.ttl < 0:
            raise ValueError("ttl must be non-negative")
        normalized = ".".join(split_labels(self.name))
        if normalized != self.name:
            object.__setattr__(self, "name", normalized)

    @property
    def key(self) -> Tuple[str, str]:
        """Cache key: (owner name, record type)."""
        return (self.name, self.rtype)
