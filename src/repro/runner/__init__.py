"""Parallel experiment runner with durable run manifests.

See :mod:`repro.runner.parallel` for execution and
:mod:`repro.runner.manifest` for the manifest format.
"""

from repro.runner.manifest import ExperimentOutcome, RunManifest
from repro.runner.parallel import run_experiments

__all__ = ["ExperimentOutcome", "RunManifest", "run_experiments"]
