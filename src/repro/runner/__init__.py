"""Parallel experiment runner with durable run manifests.

See :mod:`repro.runner.parallel` for execution,
:mod:`repro.runner.manifest` for the manifest format,
:mod:`repro.runner.retry` for backoff policies, and
:mod:`repro.runner.supervise` for deadline-enforced execution.
"""

from repro.runner.manifest import ExperimentOutcome, RunManifest
from repro.runner.parallel import run_experiments
from repro.runner.retry import NO_RETRY, RetryPolicy

__all__ = [
    "ExperimentOutcome",
    "NO_RETRY",
    "RetryPolicy",
    "RunManifest",
    "run_experiments",
]
