"""The parallel experiment runner.

Executes any subset of the :data:`~repro.core.experiments.SPECS` registry
across a ``ProcessPoolExecutor``.  Workers hydrate the shared experiment
context from the artifact store instead of rebuilding it, so a cold
``repro all`` pays for world construction once per machine, and warm runs
(and every worker after the first artifact lands) read tensors off disk.

Failure isolation: an experiment that raises is retried in-worker under a
configurable :class:`~repro.runner.retry.RetryPolicy` (exponential backoff
with deterministic jitter), then reported in the run manifest — one failure
never aborts the batch.  With ``timeout=`` the batch runs *supervised*: each
experiment gets its own worker process and deadline, a hung or crashed
worker is killed and resubmitted once, and the outcome records
``timed_out``/``worker_died`` instead of stalling the pool.

Resumability: ``resume_manifest=`` (CLI ``--resume``) skips experiments a
prior manifest marked ok whose cached ``results/<name>`` blob still
verifies, re-running only failures and missing entries.  A
``KeyboardInterrupt`` mid-batch still writes a (partial) manifest so the
next invocation can resume from it.

Fault injection: a :class:`~repro.faults.FaultPlan` threads through the
worker initializer and arms the :mod:`repro.faults` choke point inside
each worker; per-site fire counts flow back through the payloads into the
manifest ``faults`` block (``repro chaos`` is built on exactly this).

Tracing: with ``trace=True`` each experiment runs under its own
:class:`~repro.obs.Tracer`; span trees serialize through the result
payloads, so traces from ``--jobs N`` worker processes merge into one
``timings`` block on the run manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.experiments import SPECS, run_experiment
from repro.core.pipeline import experiment_context
from repro.faults import FaultPlan, inject
from repro.runner.manifest import ExperimentOutcome, RunManifest, build_timings
from repro.runner.retry import RetryPolicy
from repro.store.artifacts import (
    DEFAULT_MAX_BYTES,
    SCHEMA_VERSION,
    ArtifactStore,
    config_key,
)
from repro.worldgen.config import WorldConfig

__all__ = ["run_experiments"]

#: Per-worker state, populated by the pool initializer (or inline).
_WORKER: Dict[str, object] = {}

#: Arrays larger than this are summarized, not inlined, in result JSON.
_MAX_INLINE_ARRAY = 4096


def _init_worker(
    config_json: str,
    cache_dir: Optional[str],
    max_bytes: Optional[int],
    retry_json: Optional[str] = None,
    plan_json: Optional[str] = None,
    supervised: bool = False,
) -> None:
    _WORKER["config"] = WorldConfig.from_json(config_json)
    _WORKER["store"] = (
        ArtifactStore(cache_dir, max_bytes) if cache_dir is not None else None
    )
    _WORKER["retry"] = (
        RetryPolicy.from_json(retry_json) if retry_json else RetryPolicy()
    )
    plan = FaultPlan.from_json(plan_json) if plan_json else None
    _WORKER["plan"] = plan
    _WORKER["supervised"] = supervised
    inject.activate(plan)


def _jsonable(value: object, depth: int = 0) -> object:
    """Best-effort JSON projection of experiment result data."""
    if depth > 6:
        return repr(value)[:200]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        if value.size <= _MAX_INLINE_ARRAY:
            return value.tolist()
        return {"__array__": True, "shape": list(value.shape), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        return {
            "|".join(map(str, k)) if isinstance(k, tuple) else str(k): _jsonable(v, depth + 1)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v, depth + 1) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
        }
    return repr(value)[:200]


def _stats_snapshot(store: Optional[ArtifactStore]) -> Dict[str, Dict[str, int]]:
    return {} if store is None else store.stats.snapshot()


def _stats_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    delta: Dict[str, Dict[str, int]] = {}
    for kind, counts in after.items():
        prior = before.get(kind, {})
        changed = {
            key: value - prior.get(key, 0)
            for key, value in counts.items()
            if value - prior.get(key, 0)
        }
        if changed:
            delta[kind] = changed
    return delta


def _counts_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {
        key: value - before.get(key, 0)
        for key, value in after.items()
        if value - before.get(key, 0)
    }


def _execute(
    name: str,
    keep_result: bool = False,
    keep_data: bool = False,
    trace: bool = False,
    submission: int = 1,
) -> Dict[str, object]:
    """Run one experiment in the current worker; never raises.

    ``submission`` is the 1-based dispatch count for this experiment (the
    supervisor resubmits after crashes/timeouts); it indexes the
    ``worker.crash``/``worker.hang`` fault occurrence so one-shot rules
    fire on the first submission and let the resubmission run clean.
    """
    config: WorldConfig = _WORKER["config"]  # type: ignore[assignment]
    store: Optional[ArtifactStore] = _WORKER.get("store")  # type: ignore[assignment]
    retry: RetryPolicy = _WORKER.get("retry") or RetryPolicy()  # type: ignore[assignment]
    plan: Optional[FaultPlan] = _WORKER.get("plan")  # type: ignore[assignment]
    before = _stats_snapshot(store)
    fired_before = plan.fired_snapshot() if plan is not None else {}
    payload: Dict[str, object] = {"name": name, "pid": os.getpid(), "attempts": 0}
    # worker.* faults fire only inside disposable (supervised) processes;
    # honoring them inline would kill or stall the caller itself.
    if plan is not None and _WORKER.get("supervised"):
        rule = plan.fire("worker.crash", name, occurrence=submission - 1)
        if rule is not None:
            os._exit(rule.exit_code)
        rule = plan.fire("worker.hang", name, occurrence=submission - 1)
        if rule is not None:
            time.sleep(rule.delay_seconds if rule.delay_seconds is not None else 3600.0)
    started_total = time.perf_counter()
    per_attempt: List[float] = []
    error: Optional[str] = None
    succeeded = False
    for attempt in retry.attempts():
        payload["attempts"] = attempt
        if attempt > 1:
            time.sleep(retry.delay(attempt - 1, name))
        started = time.perf_counter()
        tracer = obs.Tracer(name) if trace else None
        try:
            with obs.tracing(tracer):
                inject.check_flaky(name, attempt)
                ctx = experiment_context(config=config, store=store)
                result = run_experiment(name, ctx)
        except (KeyboardInterrupt, SystemExit):
            # The retry loop continues after a failure; an interrupt or an
            # explicit shutdown must escape it, never become a "retryable
            # experiment error" in the manifest.
            raise
        except Exception:
            error = traceback.format_exc(limit=12)
            per_attempt.append(time.perf_counter() - started)
            continue
        finally:
            if tracer is not None:
                tracer.finish()
        per_attempt.append(time.perf_counter() - started)
        if tracer is not None:
            payload["trace"] = tracer.to_dict()
        payload.update(ok=True, title=result.title, text=result.text, error=None)
        if keep_result:
            payload["result"] = result
        if keep_data:
            # JSON projection of the structured rows: plain types only, so
            # it pickles back from pool workers (the golden harness diffs
            # exactly this form).
            payload["data"] = _jsonable(result.data)
        if store is not None:
            store.put_json(
                config_key(config),
                f"results/{name}",
                {
                    "name": result.name,
                    "title": result.title,
                    "text": result.text,
                    "schema_version": SCHEMA_VERSION,
                    "config": json.loads(config.to_json()),
                    "data": _jsonable(result.data),
                },
            )
        succeeded = True
        break
    if not succeeded:
        payload.update(ok=False, error=error)
    # Cumulative wall time (all attempts + backoff) plus the per-attempt
    # split, so a failed first attempt no longer vanishes from the manifest.
    payload["seconds"] = time.perf_counter() - started_total
    payload["per_attempt"] = per_attempt
    payload["cache"] = _stats_delta(before, _stats_snapshot(store))
    if plan is not None:
        fired = _counts_delta(fired_before, plan.fired_snapshot())
        if fired:
            payload["faults"] = fired
    return payload


def _outcome_from_payload(payload: Dict[str, object]) -> ExperimentOutcome:
    text = payload.get("text")
    return ExperimentOutcome(
        name=payload["name"],  # type: ignore[arg-type]
        ok=bool(payload.get("ok")),
        seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
        worker_pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
        attempts=int(payload.get("attempts", 1)),  # type: ignore[arg-type]
        error=payload.get("error"),  # type: ignore[arg-type]
        text_sha256=None if text is None else ExperimentOutcome.digest(text),  # type: ignore[arg-type]
        cache=payload.get("cache", {}),  # type: ignore[arg-type]
        per_attempt=[float(s) for s in payload.get("per_attempt", [])],  # type: ignore[union-attr]
        worker_died=bool(payload.get("worker_died")),
        timed_out=bool(payload.get("timed_out")),
        resumed=bool(payload.get("resumed")),
        submissions=int(payload.get("submission", 1)),  # type: ignore[arg-type]
        faults={str(k): int(v) for k, v in dict(payload.get("faults", {})).items()},
    )


def _interrupted_payload(name: str, seconds: float = 0.0) -> Dict[str, object]:
    return {
        "name": name,
        "ok": False,
        "seconds": seconds,
        "pid": 0,
        "attempts": 0,
        "error": "interrupted (KeyboardInterrupt)",
        "cache": {},
    }


def _resumable_payloads(
    names: Sequence[str],
    prior: RunManifest,
    config: WorldConfig,
    cache_dir: Optional[str],
    max_bytes: Optional[int],
    keep_data: bool,
) -> Dict[str, Dict[str, object]]:
    """Payloads for experiments the prior manifest proves are done.

    An experiment is skippable when its prior outcome is ok AND its cached
    ``results/<name>`` blob reads back (checksum-verified by the store),
    carries the current schema version, and its text digest matches the
    manifest.  Anything less re-runs — resume never trusts a claim it
    cannot verify against bytes on disk.
    """
    if cache_dir is None:
        return {}
    store = ArtifactStore(cache_dir, max_bytes)
    cfg_key = config_key(config)
    by_name = {outcome.name: outcome for outcome in prior.outcomes}
    skipped: Dict[str, Dict[str, object]] = {}
    for name in names:
        outcome = by_name.get(name)
        if outcome is None or not outcome.ok or outcome.text_sha256 is None:
            continue
        blob = store.get_json(cfg_key, f"results/{name}")
        if not isinstance(blob, dict):
            continue
        if blob.get("schema_version") != SCHEMA_VERSION:
            continue
        text = blob.get("text")
        if not isinstance(text, str):
            continue
        if ExperimentOutcome.digest(text) != outcome.text_sha256:
            continue
        payload: Dict[str, object] = {
            "name": name,
            "ok": True,
            "seconds": 0.0,
            "pid": 0,
            "attempts": 0,
            "resumed": True,
            "title": blob.get("title", ""),
            "text": text,
            "error": None,
            "cache": {},
        }
        if keep_data:
            payload["data"] = blob.get("data")
        skipped[name] = payload
    return skipped


def run_experiments(
    names: Sequence[str],
    config: WorldConfig,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    manifest_path: Optional[os.PathLike] = None,
    keep_results: bool = False,
    keep_data: bool = False,
    trace: bool = False,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    resume_manifest: Optional[os.PathLike] = None,
    resubmit_limit: int = 2,
) -> Tuple[List[Dict[str, object]], RunManifest, Optional[Path]]:
    """Run experiments, optionally in parallel, with failure isolation.

    Args:
        names: experiment ids, executed in the given order (results are
          returned in that order regardless of completion order).
        config: the world configuration shared by all experiments.
        jobs: worker processes; ``<= 1`` runs inline in this process
          (unless ``timeout`` forces supervised execution).
        cache_dir: artifact-store root; ``None`` disables caching.
        max_bytes: store size cap.
        manifest_path: where to write the run manifest; defaults to
          ``<cache_dir>/runs/run-<stamp>.json`` when caching is enabled.
        keep_results: inline mode only — attach the live
          :class:`~repro.core.experiments.ExperimentResult` objects to the
          returned payloads (used for SVG export); incompatible with
          ``timeout``.
        keep_data: attach each result's canonical JSON data projection to
          its payload (works across the pool; used by ``repro
          verify-goldens`` and ``repro chaos``).
        trace: run every experiment under a :class:`~repro.obs.Tracer`;
          span trees land on each payload (``payload["trace"]``) and the
          manifest gains a ``timings`` block merged across workers.
        retry: in-worker retry schedule (default :class:`RetryPolicy()` —
          two attempts with backoff).
        timeout: per-experiment deadline in seconds.  Switches execution
          to *supervised* mode: one disposable worker process per
          experiment, hung/crashed workers killed and resubmitted (up to
          ``resubmit_limit`` submissions), outcomes marked
          ``timed_out``/``worker_died`` instead of stalling.
        fault_plan: arm the :mod:`repro.faults` injection sites with this
          plan in every worker; fire counts land in the manifest
          ``faults`` block.  ``worker.crash``/``worker.hang`` rules only
          fire under supervised execution (set ``timeout``).
        resume_manifest: path to a prior run manifest; experiments it
          marks ok whose cached result blob verifies are skipped
          (``resumed=True`` outcomes) and only the rest run.
        resubmit_limit: max worker submissions per experiment in
          supervised mode.

    Returns:
        ``(payloads, manifest, manifest_file)``; ``manifest_file`` is None
        when there was nowhere to write it.

    Raises:
        KeyError: for unknown experiment names.
        ValueError: when ``resume_manifest`` was produced by a different
          world configuration, or ``timeout`` is combined with
          ``keep_results``.
    """
    unknown = [name for name in names if name not in SPECS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")
    if timeout is not None and keep_results:
        raise ValueError("timeout (supervised execution) cannot keep live results")

    cache_dir_text = None if cache_dir is None else os.fspath(cache_dir)
    retry = retry if retry is not None else RetryPolicy()
    init_args = (
        config.to_json(),
        cache_dir_text,
        max_bytes,
        retry.to_json(),
        fault_plan.to_json() if fault_plan is not None else None,
    )
    started_unix = time.time()
    started = time.perf_counter()

    payloads: Dict[str, Dict[str, object]] = {}
    if resume_manifest is not None:
        prior = RunManifest.from_dict(
            json.loads(Path(os.fspath(resume_manifest)).read_text())
        )
        if prior.config != json.loads(config.to_json()):
            raise ValueError(
                "resume manifest was produced by a different world config; "
                "rerun without --resume or match --sites/--days/--seed"
            )
        payloads.update(
            _resumable_payloads(
                names, prior, config, cache_dir_text, max_bytes, keep_data
            )
        )
    to_run = [name for name in names if name not in payloads]

    interrupted = False
    events = {"timeouts": 0, "worker_deaths": 0, "resubmissions": 0}
    if not to_run:
        pass
    elif timeout is not None:
        from repro.runner.supervise import run_supervised

        supervised, events, interrupted = run_supervised(
            to_run,
            init_args,
            jobs=jobs,
            timeout=timeout,
            keep_data=keep_data,
            trace=trace,
            resubmit_limit=resubmit_limit,
        )
        payloads.update(supervised)
    elif jobs <= 1 or len(to_run) <= 1:
        previous_plan = inject.active_plan()
        _init_worker(*init_args)
        try:
            for name in to_run:
                payloads[name] = _execute(
                    name, keep_result=keep_results, keep_data=keep_data, trace=trace
                )
        except KeyboardInterrupt:
            interrupted = True
        finally:
            # The inline path armed the process-wide plan; disarm it so
            # later store IO in this process runs fault-free.
            inject.activate(previous_plan)
            _WORKER["plan"] = None
    else:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(to_run)),
            initializer=_init_worker,
            initargs=init_args,
        )
        futures = {
            pool.submit(_execute, name, False, keep_data, trace): name
            for name in to_run
        }
        submitted_at = {name: time.perf_counter() for name in to_run}
        try:
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        name = futures[future]
                        try:
                            payloads[name] = future.result()
                        except (KeyboardInterrupt, SystemExit):
                            # Handled by the enclosing KeyboardInterrupt
                            # block / the caller — a worker-death payload
                            # would silently swallow the shutdown and keep
                            # draining the pool.
                            raise
                        except Exception:
                            # The worker died (e.g. OOM-killed) without
                            # reporting: the attempt count is unknown (0)
                            # and the elapsed time is measured from
                            # submission — never fabricated.
                            payloads[name] = {
                                "name": name,
                                "ok": False,
                                "seconds": time.perf_counter() - submitted_at[name],
                                "pid": 0,
                                "attempts": 0,
                                "worker_died": True,
                                "error": traceback.format_exc(limit=4),
                                "cache": {},
                            }
                            events["worker_deaths"] += 1
            except KeyboardInterrupt:
                interrupted = True
                for future in futures:
                    future.cancel()
                for proc in list(getattr(pool, "_processes", {}).values()):
                    try:
                        proc.terminate()
                    except OSError:
                        pass
        finally:
            pool.shutdown(wait=not interrupted, cancel_futures=True)

    if interrupted:
        for name in to_run:
            if name not in payloads:
                payloads[name] = _interrupted_payload(name)

    ordered = [payloads[name] for name in names]
    manifest = RunManifest(
        config=json.loads(config.to_json()),
        schema_version=SCHEMA_VERSION,
        jobs=max(1, jobs),
        cache_dir=cache_dir_text,
        started_unix=started_unix,
        wall_seconds=time.perf_counter() - started,
        outcomes=[_outcome_from_payload(payload) for payload in ordered],
        interrupted=interrupted,
    )
    injected: Dict[str, int] = {}
    for payload in ordered:
        for site, count in dict(payload.get("faults", {})).items():
            injected[site] = injected.get(site, 0) + int(count)
    if fault_plan is not None or injected or any(events.values()):
        manifest.faults = {
            "plan": None if fault_plan is None else fault_plan.to_dict(),
            "injected": injected,
            "timeouts": events["timeouts"],
            "worker_deaths": events["worker_deaths"],
            "resubmissions": events["resubmissions"],
            "recovered": [
                outcome.name
                for outcome in manifest.outcomes
                if outcome.ok
                and (outcome.faults or outcome.submissions > 1 or outcome.attempts > 1)
            ],
        }
    traces = {
        str(payload["name"]): payload["trace"]
        for payload in ordered
        if isinstance(payload.get("trace"), dict)
    }
    if traces:
        manifest.timings = build_timings(traces)

    target: Optional[Path] = None
    if manifest_path is not None:
        target = Path(os.fspath(manifest_path))
    elif cache_dir_text is not None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(started_unix))
        target = Path(cache_dir_text) / "runs" / f"run-{stamp}-{os.getpid()}.json"
    if target is not None:
        manifest.write(target)
    return ordered, manifest, target
