"""The parallel experiment runner.

Executes any subset of the :data:`~repro.core.experiments.SPECS` registry
across a ``ProcessPoolExecutor``.  Workers hydrate the shared experiment
context from the artifact store instead of rebuilding it, so a cold
``repro all`` pays for world construction once per machine, and warm runs
(and every worker after the first artifact lands) read tensors off disk.

Failure isolation: an experiment that raises is retried once in-worker,
then reported in the run manifest — one failure no longer aborts the batch.

Tracing: with ``trace=True`` each experiment runs under its own
:class:`~repro.obs.Tracer`; span trees serialize through the result
payloads, so traces from ``--jobs N`` worker processes merge into one
``timings`` block on the run manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.experiments import SPECS, run_experiment
from repro.core.pipeline import experiment_context
from repro.runner.manifest import ExperimentOutcome, RunManifest, build_timings
from repro.store.artifacts import (
    DEFAULT_MAX_BYTES,
    SCHEMA_VERSION,
    ArtifactStore,
    config_key,
)
from repro.worldgen.config import WorldConfig

__all__ = ["run_experiments"]

#: Per-worker state, populated by the pool initializer (or inline).
_WORKER: Dict[str, object] = {}

#: Arrays larger than this are summarized, not inlined, in result JSON.
_MAX_INLINE_ARRAY = 4096


def _init_worker(config_json: str, cache_dir: Optional[str], max_bytes: Optional[int]) -> None:
    _WORKER["config"] = WorldConfig.from_json(config_json)
    _WORKER["store"] = (
        ArtifactStore(cache_dir, max_bytes) if cache_dir is not None else None
    )


def _jsonable(value: object, depth: int = 0) -> object:
    """Best-effort JSON projection of experiment result data."""
    if depth > 6:
        return repr(value)[:200]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        if value.size <= _MAX_INLINE_ARRAY:
            return value.tolist()
        return {"__array__": True, "shape": list(value.shape), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        return {
            "|".join(map(str, k)) if isinstance(k, tuple) else str(k): _jsonable(v, depth + 1)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v, depth + 1) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
        }
    return repr(value)[:200]


def _stats_snapshot(store: Optional[ArtifactStore]) -> Dict[str, Dict[str, int]]:
    return {} if store is None else store.stats.snapshot()


def _stats_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    delta: Dict[str, Dict[str, int]] = {}
    for kind, counts in after.items():
        prior = before.get(kind, {})
        changed = {
            key: value - prior.get(key, 0)
            for key, value in counts.items()
            if value - prior.get(key, 0)
        }
        if changed:
            delta[kind] = changed
    return delta


def _execute(
    name: str, keep_result: bool = False, keep_data: bool = False, trace: bool = False
) -> Dict[str, object]:
    """Run one experiment in the current worker; never raises."""
    config: WorldConfig = _WORKER["config"]  # type: ignore[assignment]
    store: Optional[ArtifactStore] = _WORKER.get("store")  # type: ignore[assignment]
    before = _stats_snapshot(store)
    payload: Dict[str, object] = {"name": name, "pid": os.getpid(), "attempts": 0}
    started = time.perf_counter()
    error: Optional[str] = None
    for attempt in (1, 2):
        payload["attempts"] = attempt
        started = time.perf_counter()
        tracer = obs.Tracer(name) if trace else None
        try:
            with obs.tracing(tracer):
                ctx = experiment_context(config=config, store=store)
                result = run_experiment(name, ctx)
        except Exception:
            error = traceback.format_exc(limit=12)
            continue
        finally:
            if tracer is not None:
                tracer.finish()
        if tracer is not None:
            payload["trace"] = tracer.to_dict()
        payload.update(
            ok=True,
            seconds=time.perf_counter() - started,
            title=result.title,
            text=result.text,
            error=None,
        )
        if keep_result:
            payload["result"] = result
        if keep_data:
            # JSON projection of the structured rows: plain types only, so
            # it pickles back from pool workers (the golden harness diffs
            # exactly this form).
            payload["data"] = _jsonable(result.data)
        if store is not None:
            store.put_json(
                config_key(config),
                f"results/{name}",
                {
                    "name": result.name,
                    "title": result.title,
                    "text": result.text,
                    "schema_version": SCHEMA_VERSION,
                    "config": json.loads(config.to_json()),
                    "data": _jsonable(result.data),
                },
            )
        break
    else:
        payload.update(ok=False, seconds=time.perf_counter() - started, error=error)
    payload["cache"] = _stats_delta(before, _stats_snapshot(store))
    return payload


def _outcome_from_payload(payload: Dict[str, object]) -> ExperimentOutcome:
    text = payload.get("text")
    return ExperimentOutcome(
        name=payload["name"],  # type: ignore[arg-type]
        ok=bool(payload.get("ok")),
        seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
        worker_pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
        attempts=int(payload.get("attempts", 1)),  # type: ignore[arg-type]
        error=payload.get("error"),  # type: ignore[arg-type]
        text_sha256=None if text is None else ExperimentOutcome.digest(text),  # type: ignore[arg-type]
        cache=payload.get("cache", {}),  # type: ignore[arg-type]
    )


def run_experiments(
    names: Sequence[str],
    config: WorldConfig,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    manifest_path: Optional[os.PathLike] = None,
    keep_results: bool = False,
    keep_data: bool = False,
    trace: bool = False,
) -> Tuple[List[Dict[str, object]], RunManifest, Optional[Path]]:
    """Run experiments, optionally in parallel, with failure isolation.

    Args:
        names: experiment ids, executed in the given order (results are
          returned in that order regardless of completion order).
        config: the world configuration shared by all experiments.
        jobs: worker processes; ``<= 1`` runs inline in this process.
        cache_dir: artifact-store root; ``None`` disables caching.
        max_bytes: store size cap.
        manifest_path: where to write the run manifest; defaults to
          ``<cache_dir>/runs/run-<stamp>.json`` when caching is enabled.
        keep_results: inline mode only — attach the live
          :class:`~repro.core.experiments.ExperimentResult` objects to the
          returned payloads (used for SVG export).
        keep_data: attach each result's canonical JSON data projection to
          its payload (works across the pool; used by ``repro
          verify-goldens``).
        trace: run every experiment under a :class:`~repro.obs.Tracer`;
          span trees land on each payload (``payload["trace"]``) and the
          manifest gains a ``timings`` block merged across workers.

    Returns:
        ``(payloads, manifest, manifest_file)``; ``manifest_file`` is None
        when there was nowhere to write it.

    Raises:
        KeyError: for unknown experiment names.
    """
    unknown = [name for name in names if name not in SPECS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    cache_dir_text = None if cache_dir is None else os.fspath(cache_dir)
    init_args = (config.to_json(), cache_dir_text, max_bytes)
    started_unix = time.time()
    started = time.perf_counter()

    payloads: Dict[str, Dict[str, object]] = {}
    if jobs <= 1 or len(names) <= 1:
        _init_worker(*init_args)
        for name in names:
            payloads[name] = _execute(
                name, keep_result=keep_results, keep_data=keep_data, trace=trace
            )
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(names)), initializer=_init_worker, initargs=init_args
        ) as pool:
            futures = {
                pool.submit(_execute, name, False, keep_data, trace): name
                for name in names
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    name = futures[future]
                    try:
                        payloads[name] = future.result()
                    except Exception:
                        # A worker died (e.g. OOM-killed); report rather
                        # than abort the batch.
                        payloads[name] = {
                            "name": name,
                            "ok": False,
                            "seconds": 0.0,
                            "pid": 0,
                            "attempts": 1,
                            "error": traceback.format_exc(limit=4),
                            "cache": {},
                        }

    ordered = [payloads[name] for name in names]
    manifest = RunManifest(
        config=json.loads(config.to_json()),
        schema_version=SCHEMA_VERSION,
        jobs=max(1, jobs),
        cache_dir=cache_dir_text,
        started_unix=started_unix,
        wall_seconds=time.perf_counter() - started,
        outcomes=[_outcome_from_payload(payload) for payload in ordered],
    )
    traces = {
        str(payload["name"]): payload["trace"]
        for payload in ordered
        if isinstance(payload.get("trace"), dict)
    }
    if traces:
        manifest.timings = build_timings(traces)

    target: Optional[Path] = None
    if manifest_path is not None:
        target = Path(os.fspath(manifest_path))
    elif cache_dir_text is not None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(started_unix))
        target = Path(cache_dir_text) / "runs" / f"run-{stamp}-{os.getpid()}.json"
    if target is not None:
        manifest.write(target)
    return ordered, manifest, target
