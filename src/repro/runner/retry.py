"""Retry policies: bounded attempts with exponential backoff.

Replaces the runner's original hardcoded two-attempt loop.  The jitter is
*deterministic* — a hash of ``(experiment id, failure count)`` rather than
a live RNG draw — so retried runs remain bit-reproducible and never touch
any simulation seed stream (the same rule :mod:`repro.obs` lives by).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = ["RetryPolicy", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """In-worker retry schedule for one experiment execution.

    Attributes:
        max_attempts: total attempts (1 disables retrying).
        base_delay: sleep before the first retry, in seconds.
        multiplier: backoff growth factor per additional failure.
        max_delay: backoff ceiling, in seconds.
        jitter: +/- fraction applied to each delay, derived from a hash of
          the experiment id and failure count — deterministic, but spread
          across experiments so a pool of retrying workers desynchronizes.
    """

    max_attempts: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def attempts(self) -> Iterable[int]:
        """Attempt numbers, 1-based."""
        return range(1, self.max_attempts + 1)

    def delay(self, failures: int, key: str = "") -> float:
        """Backoff before the next attempt after ``failures`` failures.

        Args:
            failures: how many attempts have failed so far (>= 1).
            key: jitter discriminator (conventionally the experiment id).
        """
        raw = min(self.base_delay * self.multiplier ** (failures - 1), self.max_delay)
        if self.jitter and raw > 0:
            token = f"{key}:{failures}".encode("utf-8")
            unit = int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2**64
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return raw

    # ------------------------------------------------------------------
    # Serialization (policies cross process boundaries as JSON initargs).

    def to_dict(self) -> Dict[str, float]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RetryPolicy":
        return cls(
            max_attempts=int(payload.get("max_attempts", 2)),  # type: ignore[arg-type]
            base_delay=float(payload.get("base_delay", 0.05)),  # type: ignore[arg-type]
            multiplier=float(payload.get("multiplier", 2.0)),  # type: ignore[arg-type]
            max_delay=float(payload.get("max_delay", 2.0)),  # type: ignore[arg-type]
            jitter=float(payload.get("jitter", 0.25)),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "RetryPolicy":
        return cls.from_dict(json.loads(text))


#: Single-attempt policy (failure isolation without retrying).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
