"""Supervised execution: one disposable worker process per experiment.

``ProcessPoolExecutor`` cannot survive a worker death (the whole pool is
poisoned) and cannot cancel a hung task, so deadline enforcement gets its
own tiny supervisor: each experiment runs in a forked child that reports
its payload over a pipe, and the parent polls deadlines, kills laggards,
and resubmits crashed/hung experiments up to a submission limit.  This is
what ``run_experiments(..., timeout=...)`` — and therefore ``repro
chaos`` — executes on.

Fork start method only (the default on Linux): children inherit the
registry and any monkeypatched state, matching pool semantics.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["run_supervised"]

#: Seconds to wait for a terminated child before escalating to SIGKILL.
_REAP_GRACE = 5.0


def _child(conn, init_args, name: str, submission: int, keep_data: bool, trace: bool):
    """Child-process entry: run one experiment and pipe the payload back."""
    # Import inside the child on purpose: under fork it resolves to the
    # already-initialized parent module, keeping startup cheap.
    from repro.runner import parallel

    try:
        parallel._init_worker(*init_args, supervised=True)
        payload = parallel._execute(
            name, keep_result=False, keep_data=keep_data, trace=trace,
            submission=submission,
        )
        conn.send(payload)
    except BaseException as exc:  # noqa: BLE001 - last-resort report
        try:
            conn.send(
                {
                    "name": name,
                    "ok": False,
                    "seconds": 0.0,
                    "pid": multiprocessing.current_process().pid or 0,
                    "attempts": 0,
                    "error": f"{type(exc).__name__}: {exc}",
                    "cache": {},
                }
            )
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _Running:
    __slots__ = ("proc", "conn", "started", "submission")

    def __init__(self, proc, conn, submission: int) -> None:
        self.proc = proc
        self.conn = conn
        self.started = time.perf_counter()
        self.submission = submission


def run_supervised(
    names: List[str],
    init_args: Tuple,
    jobs: int,
    timeout: float,
    keep_data: bool = False,
    trace: bool = False,
    resubmit_limit: int = 2,
) -> Tuple[Dict[str, Dict[str, object]], Dict[str, int], bool]:
    """Run experiments with per-experiment deadlines and crash recovery.

    Args:
        names: experiment ids to run.
        init_args: positional args for ``parallel._init_worker``.
        jobs: max concurrently running worker processes.
        timeout: per-experiment deadline in seconds (per submission).
        keep_data: forward to ``_execute``.
        trace: forward to ``_execute``.
        resubmit_limit: max submissions per experiment; a crash or timeout
          before the limit triggers a resubmission, after it the failure
          is recorded.

    Returns:
        ``(payloads by name, event counters, interrupted)`` where event
        counters track ``timeouts``, ``worker_deaths``, ``resubmissions``.
    """
    ctx = multiprocessing.get_context("fork")
    queue = deque((name, 1) for name in names)
    running: Dict[str, _Running] = {}
    payloads: Dict[str, Dict[str, object]] = {}
    events = {"timeouts": 0, "worker_deaths": 0, "resubmissions": 0}
    interrupted = False
    jobs = max(1, jobs)

    def spawn(name: str, submission: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child,
            args=(child_conn, init_args, name, submission, keep_data, trace),
            name=f"repro-exp-{name}-s{submission}",
        )
        proc.start()
        child_conn.close()
        running[name] = _Running(proc, parent_conn, submission)

    def reap(slot: _Running) -> None:
        slot.proc.join(_REAP_GRACE)
        if slot.proc.is_alive():
            slot.proc.kill()
            slot.proc.join(_REAP_GRACE)
        slot.conn.close()

    def retire(name: str, slot: _Running, *, timed_out: bool) -> None:
        """Handle a dead-or-killed worker: resubmit or record the failure."""
        elapsed = time.perf_counter() - slot.started
        kind = "timeouts" if timed_out else "worker_deaths"
        events[kind] += 1
        if slot.submission < resubmit_limit:
            events["resubmissions"] += 1
            queue.appendleft((name, slot.submission + 1))
            return
        cause = (
            f"timeout after {timeout:.1f}s (submission {slot.submission})"
            if timed_out
            else f"worker died with exit code {slot.proc.exitcode} "
            f"(submission {slot.submission})"
        )
        payloads[name] = {
            "name": name,
            "ok": False,
            "seconds": elapsed,
            "pid": slot.proc.pid or 0,
            "attempts": 0,
            "timed_out": timed_out,
            "worker_died": not timed_out,
            "submission": slot.submission,
            "error": cause,
            "cache": {},
        }

    try:
        while queue or running:
            while queue and len(running) < jobs:
                name, submission = queue.popleft()
                spawn(name, submission)
            conns = [slot.conn for slot in running.values()]
            ready = multiprocessing.connection.wait(conns, timeout=0.05)
            for conn in ready:
                name = next(k for k, s in running.items() if s.conn is conn)
                slot = running.pop(name)
                try:
                    got = slot.conn.recv()
                except EOFError:
                    # Pipe closed without a payload: the child died before
                    # (or while) reporting.
                    reap(slot)
                    retire(name, slot, timed_out=False)
                    continue
                reap(slot)
                payloads[name] = {**got, "submission": slot.submission}
            now = time.perf_counter()
            for name in [
                n for n, s in running.items() if now - s.started > timeout
            ]:
                slot = running.pop(name)
                slot.proc.terminate()
                reap(slot)
                retire(name, slot, timed_out=True)
    except KeyboardInterrupt:
        interrupted = True
        for slot in running.values():
            try:
                slot.proc.terminate()
            except OSError:
                pass
        for slot in running.values():
            reap(slot)
    return payloads, events, interrupted
