"""Run manifests: the durable record of one experiment batch.

Every :func:`repro.runner.parallel.run_experiments` call produces a
:class:`RunManifest` — per-experiment wall time, worker id, attempts,
outcome, and artifact-store hit/miss counts — written as JSON next to the
cache (or wherever the caller asks).  The bench trajectory reads these to
track cold/warm behavior over time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.obs import Span, merge_stage_totals

__all__ = ["ExperimentOutcome", "RunManifest", "build_timings"]

#: ``{kind: {"hits": n, "misses": n, "puts": n}}`` — the store-stats shape.
CacheCounts = Dict[str, Dict[str, int]]


@dataclass
class ExperimentOutcome:
    """One experiment's execution record.

    Attributes:
        name: experiment id (``fig1``...).
        ok: whether the final attempt succeeded.
        seconds: *cumulative* wall time across every in-worker attempt,
          including retry backoff.  For a worker that died or timed out,
          this is the elapsed time since submission.
        worker_pid: process id that executed the final attempt (0 when the
          worker died before reporting).
        attempts: in-worker attempts actually executed under the retry
          policy; 0 when the worker died/timed out before reporting (the
          true count is unknown) or the experiment was skipped by resume.
        per_attempt: wall seconds of each in-worker attempt, in order
          (excludes backoff sleeps; sums to <= ``seconds``).
        error: the final error message (None on success).
        text_sha256: digest of the rendered text, for cheap cold-vs-warm
          identity checks without storing whole tables in the manifest.
        cache: artifact-store hit/miss/put deltas attributable to this
          experiment (empty when caching is disabled).
        golden_status: filled by ``repro verify-goldens`` / ``repro
          chaos`` — ``pass``, ``drift``, ``missing``, ``updated``, or
          ``error``; None outside golden-verification runs.
        worker_died: the worker process died (crash, OOM-kill) without
          reporting a result.
        timed_out: the experiment exceeded the per-experiment deadline and
          its worker was terminated.
        resumed: skipped by ``--resume`` because a prior manifest marked
          it ok and its cached result blob verified.
        submissions: how many worker processes were dispatched for this
          experiment (supervised runs resubmit after crashes/timeouts).
        faults: injected-fault fires (``{site: count}``) observed during
          this experiment's successful execution; empty without a plan.
    """

    name: str
    ok: bool
    seconds: float
    worker_pid: int
    attempts: int = 1
    error: Optional[str] = None
    text_sha256: Optional[str] = None
    cache: CacheCounts = field(default_factory=dict)
    golden_status: Optional[str] = None
    per_attempt: List[float] = field(default_factory=list)
    worker_died: bool = False
    timed_out: bool = False
    resumed: bool = False
    submissions: int = 1
    faults: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def digest(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """The full record of one ``repro`` run."""

    config: Dict[str, object]
    schema_version: int
    jobs: int
    cache_dir: Optional[str]
    started_unix: float
    wall_seconds: float = 0.0
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    #: Machine-readable golden-verification summary (``repro
    #: verify-goldens``); None for ordinary runs.
    qa: Optional[Dict[str, object]] = None
    #: Per-experiment span trees plus merged per-stage wall times (see
    #: :func:`build_timings`); None when the run was not traced.
    timings: Optional[Dict[str, object]] = None
    #: True when the run was cut short (KeyboardInterrupt); the manifest
    #: is still written so ``--resume`` can pick up from it.
    interrupted: bool = False
    #: Fault-injection accounting for chaos runs: the serialized plan,
    #: per-site injected counts, supervisor events (timeouts,
    #: worker deaths, resubmissions), and the experiments that recovered.
    #: None when no plan was active and nothing faulted.
    faults: Optional[Dict[str, object]] = None

    @property
    def failures(self) -> List[ExperimentOutcome]:
        """Outcomes that failed after retry."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def cache_totals(self) -> CacheCounts:
        """Hit/miss/put counts summed over all experiments, by kind."""
        totals: CacheCounts = {}
        for outcome in self.outcomes:
            for kind, counts in outcome.cache.items():
                slot = totals.setdefault(kind, {"hits": 0, "misses": 0, "puts": 0})
                for key, value in counts.items():
                    slot[key] = slot.get(key, 0) + value
        return totals

    def total_hits(self) -> int:
        """All artifact-store hits across the run."""
        return sum(counts.get("hits", 0) for counts in self.cache_totals().values())

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["cache_totals"] = self.cache_totals()
        return payload

    def write(self, path: os.PathLike) -> None:
        """Write the manifest as JSON (parents created, atomic replace)."""
        path = os.fspath(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        outcomes = [
            ExperimentOutcome(**outcome)  # type: ignore[arg-type]
            for outcome in payload.get("outcomes", [])
        ]
        return cls(
            config=payload["config"],  # type: ignore[arg-type]
            schema_version=int(payload["schema_version"]),  # type: ignore[arg-type]
            jobs=int(payload["jobs"]),  # type: ignore[arg-type]
            cache_dir=payload.get("cache_dir"),  # type: ignore[arg-type]
            started_unix=float(payload["started_unix"]),  # type: ignore[arg-type]
            wall_seconds=float(payload.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            outcomes=outcomes,
            qa=payload.get("qa"),  # type: ignore[arg-type]
            timings=payload.get("timings"),  # type: ignore[arg-type]
            interrupted=bool(payload.get("interrupted", False)),
            faults=payload.get("faults"),  # type: ignore[arg-type]
        )


def build_timings(traces: Mapping[str, Dict[str, object]]) -> Dict[str, object]:
    """Fold per-experiment trace dicts into a manifest ``timings`` block.

    Each value in ``traces`` is a serialized root :class:`~repro.obs.Span`
    (one per experiment, possibly produced in different worker processes).
    The block keeps the full span tree per experiment and adds a merged
    per-stage wall-time view across all of them, so ``--jobs N`` runs
    still yield one aggregate picture.

    Args:
        traces: ``{experiment name: span tree dict}``.

    Returns:
        ``{"experiments": {...}, "stages": {stage: seconds}}``.
    """
    roots = [Span.from_dict(trace) for trace in traces.values()]
    return {
        "experiments": dict(traces),
        "stages": merge_stage_totals(roots),
    }
