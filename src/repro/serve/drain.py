"""Graceful drain: signal handling and the stop/drain lifecycle.

A resilient service never dies mid-response.  On SIGTERM/SIGINT the
:class:`DrainController` records the reason and wakes whoever is blocked
in :meth:`wait`; the server then walks the drain sequence — flip
``/readyz`` to 503 (so load balancers stop routing), stop accepting,
shed the queue, finish in-flight requests up to the drain budget, write
the final log records — and the process exits 0.

Signal handlers are only installable from the main thread (a CPython
rule); :meth:`install` is therefore separate from construction so tests
and the in-process selftest can drive :meth:`request` directly, and
:meth:`restore` puts the previous handlers back when embedding callers
(pytest!) need their environment unchanged.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, Optional

__all__ = ["DrainController"]

#: Signals that trigger a graceful drain.
_DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class DrainController:
    """Single-shot drain trigger shared by signals and programmatic stops."""

    def __init__(self) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._reason: Optional[str] = None
        self._previous: Dict[int, object] = {}

    @property
    def requested(self) -> bool:
        """True once a drain was requested (signal or programmatic)."""
        return self._stop.is_set()

    @property
    def reason(self) -> Optional[str]:
        """What triggered the drain (``SIGTERM``, ``SIGINT``, or a
        caller-supplied reason); None while running."""
        with self._lock:
            return self._reason

    def request(self, reason: str) -> None:
        """Trigger the drain; only the first reason sticks."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._stop.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain is requested; True when it was."""
        return self._stop.wait(timeout)

    # ------------------------------------------------------------------
    # Signal wiring (main thread only).

    def install(self) -> None:
        """Route SIGTERM/SIGINT into :meth:`request` (previous handlers
        are remembered for :meth:`restore`)."""
        for signum in _DRAIN_SIGNALS:
            self._previous[signum] = signal.getsignal(signum)
            signal.signal(
                signum,
                lambda received, _frame: self.request(
                    signal.Signals(received).name
                ),
            )

    def restore(self) -> None:
        """Put back whatever handlers :meth:`install` replaced."""
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
        self._previous.clear()
