"""The resilient metrics service: ``repro serve``.

A stdlib-only (``ThreadingHTTPServer``) HTTP front end over the artifact
store, exposing the precomputed reproduction results the ROADMAP's
serving workload demands:

* ``GET /v1/experiments`` — the registry, with per-experiment availability.
* ``GET /v1/experiments/<name>`` — one experiment's stored result
  (title, text, structured data), golden-verified before it is ever
  served.
* ``GET /v1/lists`` — the lists index: available providers, the
  simulated day window, and the ``k`` bounds, so clients (the loadgen
  personas foremost) discover valid targets instead of hardcoding them.
* ``GET /v1/lists/<provider>/<day>?k=N`` — the top-``k`` slice of a
  provider's simulated ranked list for a day, as a *versioned snapshot*:
  the body carries the snapshot version (the store checksum of the full
  persisted snapshot) and the response a strong ``ETag``.
* ``GET /v1/lists/<provider>/diff?from=&to=&k=`` — rank deltas between
  two days' top-``k``: entrants, dropouts, moved, unchanged.
* ``GET /v1/lists/<provider>/stability?k=`` — the Scheitle-style
  stability surfaces for a provider (daily churn, top-k intersection
  decay, weekday periodicity), computed by :mod:`repro.ranking`.
* ``GET /healthz`` — liveness (200 while the process runs).
* ``GET /readyz`` — readiness (503 before warmup and while draining, so
  load balancers stop routing before the listener goes away).
* ``GET /metricz`` — counters: requests, sheds, deadlines, breaker
  state, last-known-good cache, store stats.

Hardening, in one place per concern:

* **deadlines** — every ``/v1`` request gets ``deadline_ms``; budget
  spent queueing is budget unavailable for work, and a request that
  would *start* expensive work past its deadline answers 504 instead.
* **load shedding** — admission through a bounded
  :class:`~repro.serve.shed.AdmissionGate`; beyond ``capacity`` +
  ``queue_depth`` the server answers 503 with ``Retry-After`` instead
  of queueing without bound.  ``Retry-After`` is *derived*, not fixed:
  :func:`dynamic_retry_after` folds the current queue backlog and any
  open-breaker cooldown into an integer-seconds estimate of when a
  retry will actually find capacity.
* **circuit breaking** — store reads run behind a
  :class:`~repro.serve.breaker.CircuitBreaker` (corrupt, vanished,
  slow, or golden-drifted reads count as dependency failures); while
  open, responses come from the bounded
  :class:`~repro.serve.breaker.LastKnownGood` cache, and a failed read
  with a last-known-good copy triggers a store *repair* write so the
  dependency heals instead of staying quarantined.
* **graceful drain** — SIGTERM/SIGINT stops accepting, sheds the queue,
  finishes in-flight requests up to ``drain_seconds``, writes a
  complete structured log, and exits 0.
* **conditional GET** — every 200 from the ``/v1`` read surfaces
  carries a strong ``ETag`` (sha256 of the canonical body; for stored
  experiment results this equals the artifact store's recorded
  checksum), and ``If-None-Match`` answers 304 with an empty body
  *without touching the store or recomputing the list* — the ETag cache
  is consulted before any expensive work.
* **canonical errors** — every 4xx/5xx body is the one envelope
  ``{"error": <token>, "detail": <human text>, "retry_after": <s>?}``
  (the DESIGN.md API rule); ``retry_after`` appears exactly when the
  response carries a ``Retry-After`` header, and both come from the
  same :func:`dynamic_retry_after` estimate.
* **persistent connections** — HTTP/1.1 with ``Content-Length`` framing
  on every response, so keep-alive clients (the loadgen connection
  pool) reuse sockets across requests; idle connections are reaped
  after a handler timeout, and responses sent while draining carry
  ``Connection: close`` so clients retire them promptly.

Observability: every request and lifecycle transition is one logfmt
record in the :class:`~repro.serve.logfmt.AccessLog`, and service
counters thread through the existing :class:`repro.obs.Tracer` via its
thread-safe root-span counters (``/metricz`` exposes them).
"""

from __future__ import annotations

import hashlib
import json
import math
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.core.experiments import SPECS
from repro.core.pipeline import ExperimentContext, experiment_context
from repro.faults import inject as faults
from repro.faults.plan import DATA_SITES
from repro.ranking.ingest import DegradedFeed, ProviderStream
from repro.ranking.snapshots import diff_ranked, snapshot_doc
from repro.ranking.stability import StabilityTracker
from repro.serve.breaker import BreakerState, CircuitBreaker, LastKnownGood
from repro.serve.drain import DrainController
from repro.serve.logfmt import AccessLog
from repro.serve.shed import AdmissionGate
from repro.store.artifacts import SCHEMA_VERSION, ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

__all__ = [
    "ServeSettings",
    "MetricsService",
    "DEFAULT_PORT",
    "RETRY_AFTER_CAP",
    "dynamic_retry_after",
]

#: Default TCP port for ``repro serve``.
DEFAULT_PORT = 8321

#: Upper clamp for derived ``Retry-After`` values, in seconds.  Past this
#: the estimate is guesswork and a client should just poll.
RETRY_AFTER_CAP = 30


def dynamic_retry_after(
    base_seconds: int,
    waiting: int,
    capacity: int,
    deadline_ms: float,
    breaker_remaining: float = 0.0,
    cap_seconds: int = RETRY_AFTER_CAP,
) -> int:
    """Integer-seconds ``Retry-After`` derived from current load.

    The estimate is the worst of three clocks: the configured floor, the
    time for the queue backlog ahead of a new arrival to drain (``waiting``
    requests served ``capacity`` at a time, each worth up to one request
    deadline), and the open circuit breaker's remaining cooldown (while
    the breaker is open a retry cannot reach the store anyway).  Always
    >= 1 (RFC 9110 wants a non-negative integer; 0 invites a busy loop)
    and clamped to ``cap_seconds``.
    """
    queue_eta = (max(0, waiting) / max(1, capacity)) * (deadline_ms / 1000.0)
    eta = max(float(base_seconds), queue_eta, breaker_remaining)
    return max(1, min(int(cap_seconds), math.ceil(eta)))


@dataclass(frozen=True)
class ServeSettings:
    """Tunable service behavior — every knob the CLI exposes.

    Attributes:
        host: bind address.
        port: bind port (0 picks an ephemeral port; tests use this).
        max_inflight: concurrent ``/v1`` requests (CLI ``--jobs``).
        queue_depth: requests allowed to wait for a slot before shedding.
        deadline_ms: per-request budget for ``/v1`` endpoints.
        drain_seconds: budget for finishing in-flight requests on drain.
        retry_after_seconds: *floor* for ``Retry-After`` on 503/504
          responses; the served value grows with queue backlog and open
          breaker cooldown (:func:`dynamic_retry_after`).
        breaker_threshold: consecutive store-read failures that open the
          circuit.
        breaker_cooldown_seconds: open time before a half-open probe.
        slow_read_seconds: store reads slower than this count as breaker
          failures (the read still serves if its payload is valid).
        lkg_capacity: bounded last-known-good cache entries.
        list_cache_capacity: bounded (provider, day) ranked-list cache.
        default_k: ``/v1/lists`` slice size when ``?k=`` is absent.
        max_k: upper clamp for ``?k=`` (bounds response size).
        idle_timeout_seconds: per-recv read deadline on every connection
          socket; a keep-alive connection idle past this is reaped.
        connection_lifetime_seconds: hard cap on a connection's *total*
          age, enforced by a background reaper.  The idle timeout alone
          cannot defeat a slowloris that trickles a byte per timeout
          window — the lifetime bound can.
        max_header_count: request header lines accepted before the
          service answers 431 in the canonical error envelope.
        max_header_bytes: total request header bytes accepted before a
          431 (the per-line cap is the stdlib's 64 KiB).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    max_inflight: int = 8
    queue_depth: int = 16
    deadline_ms: float = 1000.0
    drain_seconds: float = 5.0
    retry_after_seconds: int = 1
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 0.5
    slow_read_seconds: float = 0.1
    lkg_capacity: int = 64
    list_cache_capacity: int = 64
    default_k: int = 100
    max_k: int = 1000
    idle_timeout_seconds: float = 30.0
    connection_lifetime_seconds: float = 120.0
    max_header_count: int = 64
    max_header_bytes: int = 16384


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin shim: all request logic lives on the service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # Keep-alive hygiene for pooled loadgen clients: reap connections
    # idle past this (each parked socket pins a ThreadingHTTPServer
    # thread), and disable Nagle so small content-length-framed replies
    # aren't held hostage to delayed ACKs.  ``timeout`` is a default;
    # ``setup`` overrides it from the live settings.
    timeout = 30.0
    disable_nagle_algorithm = True

    def setup(self) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        self.timeout = service.settings.idle_timeout_seconds
        super().setup()
        service.register_connection(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            service = self.server.service  # type: ignore[attr-defined]
            service.unregister_connection(self.connection)

    def handle(self) -> None:
        try:
            super().handle()
        except (ConnectionResetError, BrokenPipeError):
            self.close_connection = True
        except (OSError, ValueError):
            # The lifetime reaper closed this socket under us (or the
            # peer reset mid-parse); not a server error worth a
            # traceback from handle_error.
            self.close_connection = True

    def send_error(self, code, message=None, explain=None):  # noqa: ANN001
        """Protocol-level failures answer in the canonical envelope.

        The stdlib parser calls this *before* ``do_GET`` for oversized
        request lines (414), header floods past its own limits (431),
        bad syntax (400), and unsupported methods (501) — by default
        with an HTML error page, which would be the one non-envelope
        error shape in the service.
        """
        status = int(code)
        token = "bad_request" if status < 500 else "internal"
        if status == 431:
            token = "headers_too_large"
        body = _error_body(token, str(message or explain or code))
        service = getattr(self.server, "service", None)
        if service is not None:
            service.count_protocol_error(getattr(self, "path", "?"), status)
        self.close_connection = True
        if self.request_version == "HTTP/0.9":
            # The request line never parsed, so the stdlib still holds
            # its 0.9 default — under which send_response_only and
            # send_header write *nothing* and the peer would get a bare
            # body with no framing.  Answer as framed HTTP/1.1 instead.
            self.request_version = "HTTP/1.1"
        try:
            self.send_response_only(status)
            self.send_header("Server", self.version_string())
            self.send_header("Date", self.date_time_string())
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if getattr(self, "command", "GET") != "HEAD":
                self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # The structured access log replaces the default stderr lines.
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self.server.service.handle(self)  # type: ignore[attr-defined]

    def do_HEAD(self) -> None:  # noqa: N802
        self.server.service.handle(self, head_only=True)  # type: ignore[attr-defined]


class MetricsService:
    """The metrics service: construct, :meth:`warm`, :meth:`start`.

    Args:
        config: the world configuration whose cached results are served.
        store: the artifact store to read from (the service installs its
          ``read_observer`` — share the instance with nothing else that
          needs the hook).
        settings: behavior knobs (:class:`ServeSettings`).
        names: experiment ids to expose (default: the whole registry).
        golden_dir: when given and the goldens match ``config``, warmup
          verifies every stored result against its golden snapshot and
          refuses to serve drifted bodies.
        access_log: structured log sink (default: in-memory only).
        tracer: the :class:`repro.obs.Tracer` carrying service counters.
    """

    def __init__(
        self,
        config: WorldConfig,
        store: ArtifactStore,
        settings: ServeSettings = ServeSettings(),
        names: Optional[Sequence[str]] = None,
        golden_dir: Optional[Path] = None,
        access_log: Optional[AccessLog] = None,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.settings = settings
        self.names: List[str] = list(names if names is not None else SPECS)
        self.golden_dir = golden_dir
        self.log = access_log if access_log is not None else AccessLog()
        self.tracer = tracer if tracer is not None else obs.Tracer("serve")
        self.gate = AdmissionGate(settings.max_inflight, settings.queue_depth)
        self.breaker = CircuitBreaker(
            failure_threshold=settings.breaker_threshold,
            cooldown_seconds=settings.breaker_cooldown_seconds,
            on_transition=self._on_breaker_transition,
        )
        self.lkg = LastKnownGood(settings.lkg_capacity)
        self.drain_ctl = DrainController()
        self._cfg_key = config_key(config)
        self._reference: Dict[str, str] = {}  # name -> sha256 of golden body
        self._not_golden: Dict[str, str] = {}  # name -> why warmup refused it
        self._read_status = threading.local()
        self._counters_lock = threading.Lock()
        self._by_status: Dict[int, int] = {}
        self._by_route: Dict[str, int] = {}
        self.requests_total = 0
        self.deadline_timeouts = 0
        self.repairs = 0
        self.non_golden_blocked = 0
        self.not_modified = 0
        self.client_gone = 0
        self.protocol_errors = 0
        self.connections_reaped = 0
        # Live connection registry for the lifetime reaper: socket id ->
        # (socket, hard deadline).  Guarded by its own lock — reaping
        # must never contend with the request-path counters.
        self._conn_lock = threading.Lock()
        self._connections: Dict[int, Tuple[object, float]] = {}
        self._reaper_stop = threading.Event()
        self._reaper_thread: Optional[threading.Thread] = None
        self._ctx: Optional[ExperimentContext] = None
        self._ctx_lock = threading.Lock()
        self._lists_lock = threading.Lock()
        self._lists: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        # Degraded-ingestion state (active only when the armed fault plan
        # contains data.* rules): one shared feed so the fault log and
        # its digest span providers, one sequential stream per provider.
        # All resolution happens under one lock — the streams resolve
        # days strictly in order, which is what keeps every data.* fault
        # decision independent of request interleaving.
        self._data_lock = threading.Lock()
        self._data_feed: Optional[DegradedFeed] = None
        self._data_streams: Dict[str, ProviderStream] = {}
        # Conditional-GET state: response ETags by cache key (checked
        # before any store read or list computation — the 304 fast path),
        # snapshot versions by (provider, day), and finished stability
        # bodies.  All guarded by one lock; all bounded.
        self._etag_lock = threading.Lock()
        self._response_etags: "OrderedDict[str, str]" = OrderedDict()
        self._list_versions: Dict[Tuple[str, int], str] = {}
        self._stability_cache: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self._ready = False
        self._draining = False
        self._started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        store.read_observer = self._observe_read

    # ------------------------------------------------------------------
    # Store read path (observer + classification).

    def _observe_read(self, name: str, status: str, seconds: float) -> None:
        self._read_status.last = (status, seconds)

    def _read_fresh(self, name: str) -> Tuple[Optional[bytes], Optional[str]]:
        """One breaker-protected read attempt for ``results/<name>``.

        Returns ``(body, failure)``: a canonical JSON body (or None) and
        the failure classification (None when the read is healthy —
        which includes a clean miss for a result that never existed).
        """
        self._read_status.last = ("miss", 0.0)
        blob = self.store.get_json(self._cfg_key, f"results/{name}")
        status, seconds = self._read_status.last
        if status == "corrupt":
            return None, "corrupt"
        if blob is None:
            # A result we once verified has vanished (quarantined by a
            # corrupt read, or evicted): that is a dependency failure.  A
            # result that never existed is an honest 404.
            return None, ("lost" if name in self._reference else None)
        if not isinstance(blob, dict) or blob.get("schema_version") != SCHEMA_VERSION:
            return None, "invalid"
        body = json.dumps(blob, sort_keys=True).encode("utf-8")
        reference = self._reference.get(name)
        if reference is not None and _digest(body) != reference:
            # Never serve a body that drifted from the golden-verified
            # reference — answer from last-known-good instead.
            with self._counters_lock:
                self.non_golden_blocked += 1
            return None, "drift"
        if seconds > self.settings.slow_read_seconds:
            return body, "slow"
        return body, None

    def _repair(self, name: str, body: bytes) -> None:
        """Write a last-known-good body back to the store (self-healing:
        a quarantined or lost blob becomes a hit again)."""
        self.store.put_json(self._cfg_key, f"results/{name}", json.loads(body))
        with self._counters_lock:
            self.repairs += 1
        self.tracer.count_root("serve.repairs")
        self.log.write("store.repair", name=name, bytes=len(body))

    def _on_breaker_transition(self, old: str, new: str, reason: str) -> None:
        self.log.write("breaker." + ("open" if new == BreakerState.OPEN else
                                     "close" if new == BreakerState.CLOSED else
                                     "half_open"),
                       from_state=old, to_state=new, reason=reason)
        self.tracer.count_root(f"serve.breaker.{new}")

    # ------------------------------------------------------------------
    # Warmup.

    def warm(self, build_lists: bool = True) -> Dict[str, str]:
        """Prime references and the LKG cache; optionally build the world.

        Reads every exposed experiment's stored result, golden-verifies
        it where goldens for this configuration exist, and records its
        canonical digest as the *reference* every later live read must
        match.  Returns ``{name: status}`` with status ``ok`` /
        ``missing`` / ``not-golden``.
        """
        statuses: Dict[str, str] = {}
        for name in self.names:
            body, failure = self._read_fresh(name)
            if body is None or failure not in (None, "slow"):
                statuses[name] = "missing"
                continue
            drift = self._golden_drift(name, json.loads(body))
            if drift is not None:
                self._not_golden[name] = drift
                statuses[name] = "not-golden"
                continue
            self._reference[name] = _digest(body)
            self.lkg.put(name, body)
            statuses[name] = "ok"
        if build_lists:
            self._context()
        self._ready = True
        available = sum(1 for status in statuses.values() if status == "ok")
        self.log.write(
            "serve.ready",
            available=available,
            exposed=len(self.names),
            lists=build_lists,
            config_key=self._cfg_key,
        )
        return statuses

    def _golden_drift(self, name: str, blob: Dict[str, object]) -> Optional[str]:
        """Why ``blob`` fails golden verification, or None when it passes
        (or no matching golden exists for this configuration)."""
        if self.golden_dir is None:
            return None
        golden_file = Path(self.golden_dir) / f"{name}.json"
        if not golden_file.exists():
            return None
        from repro.qa.goldens import TOLERANCES, Tolerance, diff_payloads, golden_payload

        try:
            golden = json.loads(golden_file.read_text())
        except (OSError, json.JSONDecodeError) as error:
            return f"unreadable golden: {error}"
        document = golden_payload(
            name,
            str(blob.get("title", "")),
            self.config,
            blob.get("data"),
            str(blob.get("text", "")),
        )
        if golden.get("config") != document.get("config"):
            # Goldens are pinned to one configuration; a service at any
            # other scale serves reference-digest-verified bodies instead.
            return None
        cells = diff_payloads(golden, document, TOLERANCES.get(name, Tolerance()))
        if cells:
            return f"{len(cells)} drifted cell(s), first: {cells[0].render()}"
        return None

    # ------------------------------------------------------------------
    # The lists surface.

    def _context(self) -> ExperimentContext:
        with self._ctx_lock:
            if self._ctx is None:
                with obs.span("serve/context"):
                    self._ctx = experiment_context(config=self.config, store=self.store)
                    # Materialize world + providers up front: requests
                    # must never pay (or race) world construction.
                    self._ctx.artifact("world")
                    self._ctx.artifact("providers")
            return self._ctx

    def _data_chaos_armed(self) -> bool:
        """True when the active fault plan carries ``data.*`` rules (or a
        degraded feed has already been built for this service)."""
        if self._data_feed is not None:
            return True
        plan = faults.active_plan()
        return plan is not None and any(
            rule.site in DATA_SITES for rule in plan.rules
        )

    def _data_resolve(self, provider: str, day: int):
        """``(ranked, data_health)`` through the degraded-ingestion
        layer, or None when no data chaos is armed.

        Streams resolve days sequentially with memoization, so request
        order never changes which ``data.*`` keys are consulted — only
        when.  The degraded path replaces the ranked LRU entirely: its
        memoization is per-stream and already bounded by ``n_days``.
        """
        if not self._data_chaos_armed():
            return None
        ctx = self._context()
        with self._data_lock:
            if self._data_feed is None:
                self._data_feed = DegradedFeed(
                    dict(ctx.providers), faults.active_plan()
                )
            stream = self._data_streams.get(provider)
            if stream is None:
                stream = ProviderStream(
                    ctx.providers[provider], ctx.world, self._data_feed
                )
                self._data_streams[provider] = stream
            return stream.resolve(day)

    def _data_health(self, provider: str, day: int) -> Optional[Dict]:
        resolved = self._data_resolve(provider, day)
        return None if resolved is None else resolved[1]

    def _ranked(self, provider: str, day: int):
        resolved = self._data_resolve(provider, day)
        if resolved is not None:
            return resolved[0]
        key = (provider, day)
        with self._lists_lock:
            cached = self._lists.get(key)
            if cached is not None:
                self._lists.move_to_end(key)
                return cached
        ctx = self._context()
        with self._lists_lock:
            cached = self._lists.get(key)
            if cached is None:
                # Compute under the lock: providers share one traffic
                # model, which is not guaranteed re-entrant.
                cached = ctx.providers[provider].daily_list(day)
                self._lists[key] = cached
                while len(self._lists) > self.settings.list_cache_capacity:
                    self._lists.popitem(last=False)
            else:
                self._lists.move_to_end(key)
            return cached

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> None:
        """Bind and serve on a background thread (returns immediately)."""
        httpd = ThreadingHTTPServer(
            (self.settings.host, self.settings.port), _RequestHandler
        )
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._serve_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._serve_thread.start()
        self._reaper_stop.clear()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-serve-reaper", daemon=True
        )
        self._reaper_thread.start()
        self.log.write(
            "serve.start",
            host=self.host,
            port=self.port,
            max_inflight=self.settings.max_inflight,
            queue_depth=self.settings.queue_depth,
            deadline_ms=self.settings.deadline_ms,
            fault_plan=faults.active_plan() is not None,
        )

    @property
    def host(self) -> str:
        return self.settings.host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after :meth:`start`)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self.settings.port

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, budget: Optional[float] = None, reason: str = "stop") -> bool:
        """Graceful shutdown: stop accepting, shed the queue, finish
        in-flight work up to ``budget`` seconds, close, log.

        Returns True when every in-flight request finished inside the
        budget (the process should exit 0 either way — a drain that runs
        out of budget is logged, not escalated).
        """
        if self._draining:
            return True
        self._draining = True
        self._reaper_stop.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=2.0)
        budget = self.settings.drain_seconds if budget is None else budget
        started = time.perf_counter()
        self.log.write(
            "drain.start",
            reason=reason,
            inflight=self.gate.inflight,
            waiting=self.gate.waiting,
            budget_seconds=budget,
        )
        self.gate.drain()
        if self._httpd is not None:
            self._httpd.shutdown()
        drained = self.gate.wait_idle(budget)
        if self._httpd is not None:
            self._httpd.server_close()
        self.log.write(
            "drain.complete",
            drained=drained,
            inflight=self.gate.inflight,
            seconds=time.perf_counter() - started,
        )
        self.log.write(
            "serve.exit",
            code=0,
            requests=self.requests_total,
            shed=self.gate.shed_total,
            repairs=self.repairs,
            breaker_opens=self.breaker.opens,
        )
        self.tracer.finish()
        self.log.close()
        return drained

    def run_forever(self) -> int:
        """CLI loop: serve until SIGTERM/SIGINT, drain, return exit 0."""
        self.drain_ctl.install()
        try:
            self.start()
            self.drain_ctl.wait()
        finally:
            self.drain(reason=self.drain_ctl.reason or "stop")
            self.drain_ctl.restore()
        return 0

    # ------------------------------------------------------------------
    # Connection lifetime (the slowloris bound).

    def register_connection(self, sock: object) -> None:
        """Track a connection socket with a hard lifetime deadline.

        Called from the handler's ``setup``.  The per-recv idle timeout
        reaps *silent* connections; a slowloris that trickles one byte
        per window resets that clock forever — the total-lifetime
        deadline enforced by :meth:`_reap_loop` is what ends it.
        """
        deadline = (
            time.monotonic() + self.settings.connection_lifetime_seconds
        )
        with self._conn_lock:
            self._connections[id(sock)] = (sock, deadline)

    def unregister_connection(self, sock: object) -> None:
        with self._conn_lock:
            self._connections.pop(id(sock), None)

    @property
    def active_connections(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def _reap_loop(self) -> None:
        interval = max(
            0.05, min(1.0, self.settings.connection_lifetime_seconds / 4.0)
        )
        while not self._reaper_stop.wait(interval):
            now = time.monotonic()
            with self._conn_lock:
                overdue = [
                    (conn_id, sock)
                    for conn_id, (sock, deadline) in self._connections.items()
                    if now >= deadline
                ]
                for conn_id, _sock in overdue:
                    self._connections.pop(conn_id, None)
            for _conn_id, sock in overdue:
                with self._counters_lock:
                    self.connections_reaped += 1
                self.tracer.count_root("serve.connections_reaped")
                self.log.write(
                    "connection.reaped",
                    lifetime_seconds=self.settings.connection_lifetime_seconds,
                )
                # Closing under the handler thread makes its blocked
                # recv/send raise; the handler unregisters in finish().
                try:
                    sock.shutdown(socket.SHUT_RDWR)  # type: ignore[attr-defined]
                except OSError:
                    pass
                try:
                    sock.close()  # type: ignore[attr-defined]
                except OSError:
                    pass

    def count_protocol_error(self, path: str, status: int) -> None:
        """Accounting for parse-level rejects answered by ``send_error``."""
        with self._counters_lock:
            self.protocol_errors += 1
            self._by_status[status] = self._by_status.get(status, 0) + 1
        self.tracer.count_root("serve.protocol_errors")
        self.log.write("request.protocol_error", path=path, status=status)

    def _header_limit_violation(
        self, handler: _RequestHandler
    ) -> Optional[Tuple[int, str, str]]:
        """Service-level header limits (stricter than the stdlib's).

        Returns ``(status, error token, detail)`` or None.  The stdlib
        parser enforces its own looser caps (100 lines, 64 KiB each)
        and answers through ``send_error``; these bounds are the ones
        operators tune.
        """
        headers = handler.headers
        count = len(headers.keys())
        if count > self.settings.max_header_count:
            return (
                431, "headers_too_large",
                f"{count} header lines exceed the limit of "
                f"{self.settings.max_header_count}",
            )
        total = sum(len(k) + len(v) + 4 for k, v in headers.items())
        if total > self.settings.max_header_bytes:
            return (
                431, "headers_too_large",
                f"{total} header bytes exceed the limit of "
                f"{self.settings.max_header_bytes}",
            )
        return None

    # ------------------------------------------------------------------
    # Request handling.

    def handle(self, handler: _RequestHandler, head_only: bool = False) -> None:
        """Entry point for every HTTP request (called on its thread)."""
        started = time.perf_counter()
        path = urlsplit(handler.path).path
        route = self._route_of(path)
        inm = handler.headers.get("If-None-Match")
        try:
            violation = self._header_limit_violation(handler)
            if violation is not None:
                status, token, detail = violation
                handler.close_connection = True
                self.tracer.count_root("serve.header_limited")
                self._respond(
                    handler, status, _error_body(token, detail),
                    {"Connection": "close"}, head_only,
                )
                self._account(handler, path, route, status, started, "limit")
                return
            if route in ("healthz", "readyz", "metricz"):
                # Health surfaces bypass admission: they must answer
                # cheaply even (especially) when the service is saturated.
                status, body, headers = self._handle_control(route)
                self._respond(handler, status, body, headers, head_only)
                self._account(handler, path, route, status, started, "control")
                return
            self._handle_v1(handler, path, route, started, head_only, inm)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response: a client_gone outcome,
            # never a server failure — the circuit breaker only ever
            # sees store reads, and a flood of disappearing clients must
            # not masquerade as service errors.
            with self._counters_lock:
                self.client_gone += 1
            self.tracer.count_root("serve.client_gone")
            self.log.write("request.client_gone", path=path)
        except Exception as error:  # one request never kills the server
            self.tracer.count_root("serve.handler_errors")
            self.log.write(
                "request.error", path=path, error=f"{type(error).__name__}: {error}"
            )
            try:
                self._respond(
                    handler, 500, _error_body("internal", "internal error"),
                    {}, head_only,
                )
                self._account(handler, path, route, 500, started, "error")
            except OSError:
                pass

    def _route_of(self, path: str) -> str:
        if path in ("/healthz", "/readyz", "/metricz"):
            return path.strip("/")
        if path == "/v1/experiments":
            return "experiments"
        if path.startswith("/v1/experiments/"):
            return "experiment"
        if path in ("/v1/lists", "/v1/lists/"):
            return "lists-index"
        if path.startswith("/v1/lists/"):
            parts = path[len("/v1/lists/"):].split("/")
            if len(parts) == 2 and parts[1] == "diff":
                return "lists-diff"
            if len(parts) == 2 and parts[1] == "stability":
                return "lists-stability"
            return "lists"
        return "unknown"

    def _handle_control(self, route: str) -> Tuple[int, bytes, Dict[str, str]]:
        if route == "healthz":
            return 200, _json_body({"status": "alive"}), {}
        if route == "readyz":
            # Not-ready is an error the canonical envelope covers like any
            # other 5xx; the "error" token tells load balancers why.
            if self._draining:
                body, headers = self._retry_error("not_ready", "draining")
                return 503, body, headers
            if not self._ready:
                body, headers = self._retry_error("not_ready", "warming")
                return 503, body, headers
            return 200, _json_body({"status": "ready"}), {}
        return 200, _json_body(self.metrics()), {}

    def _handle_v1(
        self,
        handler: _RequestHandler,
        path: str,
        route: str,
        started: float,
        head_only: bool,
        inm: Optional[str] = None,
    ) -> None:
        budget = self.settings.deadline_ms / 1000.0
        deadline = started + budget
        # A request may spend at most half its budget queueing; the rest
        # is reserved for doing the work.
        shed = self.gate.try_acquire(timeout=budget / 2.0)
        if shed is not None:
            self.tracer.count_root("serve.shed")
            body, headers = self._retry_error("shed", "admission rejected: " + shed)
            self._respond(handler, 503, body, headers, head_only)
            self._account(handler, path, route, 503, started, "shed", shed=shed)
            return
        try:
            rule = faults.fire("serve.request.error", path)
            if rule is not None:
                self.tracer.count_root("serve.injected_errors")
                self._respond(
                    handler, 500,
                    _error_body("injected", "injected serve.request.error"),
                    {}, head_only,
                )
                self._account(handler, path, route, 500, started, "injected")
                return
            if time.perf_counter() >= deadline:
                self._deadline_response(handler, path, route, started, head_only)
                return
            if route == "experiments":
                status, body, headers, source = self._get_index(inm)
            elif route == "experiment":
                name = path[len("/v1/experiments/"):]
                status, body, headers, source = self._get_experiment(
                    name, deadline, inm
                )
            elif route == "lists-index":
                status, body, headers, source = self._get_lists_index(deadline)
            elif route == "lists":
                status, body, headers, source = self._get_list(
                    handler.path, path, deadline, inm
                )
            elif route == "lists-diff":
                status, body, headers, source = self._get_diff(
                    handler.path, path, deadline, inm
                )
            elif route == "lists-stability":
                status, body, headers, source = self._get_stability(
                    handler.path, path, deadline, inm
                )
            else:
                status, body, headers, source = (
                    404, _error_body("not_found", "no such route"), {}, "router"
                )
            self._respond(handler, status, body, headers, head_only)
            self._account(handler, path, route, status, started, source)
        finally:
            self.gate.release()

    def _deadline_response(
        self, handler: _RequestHandler, path: str, route: str,
        started: float, head_only: bool,
    ) -> None:
        with self._counters_lock:
            self.deadline_timeouts += 1
        self.tracer.count_root("serve.deadline_timeouts")
        body, headers = self._retry_error("deadline", "deadline exceeded")
        self._respond(handler, 504, body, headers, head_only)
        self._account(handler, path, route, 504, started, "deadline")

    # ------------------------------------------------------------------
    # Endpoint bodies.

    def _get_index(
        self, inm: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        rows = []
        for name in self.names:
            spec = SPECS.get(name)
            status = (
                "available" if name in self._reference
                else "not-golden" if name in self._not_golden
                else "missing"
            )
            rows.append({
                "id": name,
                "title": spec.title if spec is not None else "",
                "status": status,
                "path": f"/v1/experiments/{name}",
            })
        body = _json_body({"experiments": rows, "config_key": self._cfg_key})
        etag = _etag_of(body)
        if _etag_matches(inm, etag):
            return self._not_modified(etag, "index")
        return 200, body, {"ETag": etag}, "index"

    def _get_experiment(
        self, name: str, deadline: float, inm: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        if name not in self.names or name not in SPECS:
            return 404, _error_body(
                "not_found", f"unknown experiment {name!r}"
            ), {}, "router"
        if name in self._not_golden:
            body, headers = self._retry_error(
                "not_golden",
                f"result for {name!r} failed golden verification: "
                + self._not_golden[name],
            )
            return 503, body, headers, "not-golden"
        reference = self._reference.get(name)
        if reference is not None:
            # The warmup-pinned reference digest doubles as the strong
            # ETag (it equals the artifact store's recorded checksum for
            # results/<name> — canonical payloads hash identically), so a
            # conditional hit answers before the breaker, the store, or
            # any read budget is touched: zero store reads.
            etag = '"%s"' % reference
            if _etag_matches(inm, etag):
                return self._not_modified(etag, "experiment")
        if not self.breaker.allow():
            body = self.lkg.get(name)
            if body is not None:
                return 200, body, self._body_headers(
                    body, {"X-Repro-Source": "last-known-good"}
                ), "lkg-open"
            body, headers = self._retry_error("unavailable", "store circuit open")
            return 503, body, headers, "breaker-open"
        if time.perf_counter() >= deadline:
            # Don't start a store read we have no budget left to use; the
            # breaker probe slot (if any) is returned via record_success.
            self.breaker.record_success()
            body, headers = self._retry_error("deadline", "deadline exceeded")
            return 504, body, headers, "deadline"
        body, failure = self._read_fresh(name)
        if failure is None:
            if body is None:
                self.breaker.record_success()
                return 404, _error_body(
                    "not_found",
                    f"no cached result for {name!r}; run `repro all` first",
                ), {}, "miss"
            self.breaker.record_success()
            self.lkg.put(name, body)
            return 200, body, self._body_headers(
                body, {"X-Repro-Source": "store"}
            ), "store"
        self.breaker.record_failure(failure)
        self.tracer.count_root(f"serve.read_failures.{failure}")
        if failure == "slow" and body is not None:
            # Slow but valid: serve it (it passed the digest check) while
            # the breaker accounts for the latency.
            self.lkg.put(name, body)
            return 200, body, self._body_headers(
                body, {"X-Repro-Source": "store-slow"}
            ), "store-slow"
        fallback = self.lkg.get(name)
        if fallback is not None:
            if failure in ("corrupt", "lost", "invalid"):
                self._repair(name, fallback)
            return 200, fallback, self._body_headers(
                fallback, {"X-Repro-Source": "last-known-good"}
            ), "lkg"
        body, headers = self._retry_error(
            "unavailable",
            f"store read failed ({failure}) and no last-known-good copy",
        )
        return 503, body, headers, "unavailable"

    def _get_lists_index(
        self, deadline: float
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        """``GET /v1/lists`` — discoverable targets for list clients.

        Serving behavior (per the DESIGN.md serving rule): deadline-
        budgeted and admission-gated like every ``/v1`` endpoint; the
        body is computed from the warm context, so after warmup it is a
        cheap, constant-shape read.
        """
        ctx = self._context()
        if time.perf_counter() >= deadline:
            body, headers = self._retry_error("deadline", "deadline exceeded")
            return 504, body, headers, "deadline"
        providers = [
            {
                "id": name,
                "days": int(self.config.n_days),
                "path": f"/v1/lists/{name}/<day>?k=<k>",
            }
            for name in sorted(ctx.providers)
        ]
        body = _json_body({
            "providers": providers,
            "days": int(self.config.n_days),
            "default_k": self.settings.default_k,
            "max_k": self.settings.max_k,
            "config_key": self._cfg_key,
            "data_chaos": self._data_chaos_armed(),
        })
        return 200, body, self._body_headers(body, {}), "lists-index"

    def _parse_k(self, raw_path: str) -> Tuple[Optional[int], Optional[bytes]]:
        """The validated, clamped ``?k=`` value, or an error body."""
        query = parse_qs(urlsplit(raw_path).query)
        try:
            k = int(query.get("k", [self.settings.default_k])[0])
        except ValueError:
            return None, _error_body("bad_request", "k must be an integer")
        if k < 1:
            return None, _error_body("bad_request", "k must be >= 1")
        return min(k, self.settings.max_k), None

    def _valid_day(self, day_text: str) -> Tuple[Optional[int], Optional[bytes]]:
        """A day index inside the simulated window, or an error body."""
        try:
            day = int(day_text)
        except ValueError:
            return None, _error_body(
                "not_found", f"day must be an integer, got {day_text!r}"
            )
        if not 0 <= day < self.config.n_days:
            return None, _error_body(
                "not_found",
                f"day {day} outside simulated window [0, {self.config.n_days})",
            )
        return day, None

    def _get_list(
        self, raw_path: str, path: str, deadline: float, inm: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        parts = path[len("/v1/lists/"):].split("/")
        if len(parts) != 2 or not parts[0]:
            return 404, _error_body(
                "not_found", "use /v1/lists/<provider>/<day>"
            ), {}, "router"
        provider, day_text = parts
        day, error = self._valid_day(day_text)
        if error is not None:
            return 404, error, {}, "router"
        k, error = self._parse_k(raw_path)
        if error is not None:
            return 400, error, {}, "router"
        # Conditional fast path: a cached ETag means this exact
        # representation was served before, and list bodies are pure
        # functions of the config — a match answers without touching the
        # list cache, the providers, or the store.
        cache_key = f"lists:{provider}:{day}:{k}"
        etag = self._cached_etag(cache_key)
        if etag is not None and _etag_matches(inm, etag):
            return self._not_modified(etag, "lists")
        ctx = self._context()
        if provider not in ctx.providers:
            return 404, _error_body(
                "not_found",
                f"unknown provider {provider!r}; choose from "
                + ", ".join(ctx.providers),
            ), {}, "router"
        if time.perf_counter() >= deadline:
            body, headers = self._retry_error("deadline", "deadline exceeded")
            return 504, body, headers, "deadline"
        resolved = self._data_resolve(provider, day)
        if resolved is not None:
            ranked, data_health = resolved
        else:
            ranked, data_health = self._ranked(provider, day), None
        version = self._list_version(provider, day, ranked,
                                     data_health=data_health)
        head = ranked.head(k)
        doc = {
            "provider": provider,
            "day": day,
            "k": k,
            "version": version,
            "granularity": head.granularity,
            "bucketed": head.is_bucketed,
            "bucket_bounds": (
                None if head.bucket_bounds is None
                else [int(bound) for bound in head.bucket_bounds]
            ),
            "count": len(head),
            "names": head.strings(ctx.world),
        }
        if data_health is not None:
            # A degraded day must never share bytes (or an ETag) with a
            # clean serving of the same list: the marking is part of the
            # representation, not response decoration.
            doc["data_health"] = data_health
        body = _json_body(doc)
        etag = _etag_of(body)
        self._remember_etag(cache_key, etag)
        return 200, body, {"ETag": etag}, "lists"

    def _get_diff(
        self, raw_path: str, path: str, deadline: float, inm: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        """``GET /v1/lists/<provider>/diff?from=&to=&k=`` — rank deltas
        between two days' top-``k`` prefixes: entrants, dropouts, moved
        (with signed delta), unchanged count.

        Serving behavior (DESIGN.md serving rule): admission-gated and
        deadline-budgeted; both days' lists come from the bounded ranked
        cache, and repeat requests answer 304 from the ETag cache alone.
        """
        provider = path[len("/v1/lists/"):].split("/")[0]
        query = parse_qs(urlsplit(raw_path).query)
        try:
            from_day_text = query["from"][0]
            to_day_text = query["to"][0]
        except (KeyError, IndexError):
            return 400, _error_body(
                "bad_request", "diff needs from=<day> and to=<day> query parameters"
            ), {}, "router"
        from_day, error = self._valid_day(from_day_text)
        if error is not None:
            return 404, error, {}, "router"
        to_day, error = self._valid_day(to_day_text)
        if error is not None:
            return 404, error, {}, "router"
        k, error = self._parse_k(raw_path)
        if error is not None:
            return 400, error, {}, "router"
        cache_key = f"diff:{provider}:{from_day}:{to_day}:{k}"
        etag = self._cached_etag(cache_key)
        if etag is not None and _etag_matches(inm, etag):
            return self._not_modified(etag, "lists-diff")
        ctx = self._context()
        if provider not in ctx.providers:
            return 404, _error_body(
                "not_found",
                f"unknown provider {provider!r}; choose from "
                + ", ".join(ctx.providers),
            ), {}, "router"
        if time.perf_counter() >= deadline:
            body, headers = self._retry_error("deadline", "deadline exceeded")
            return 504, body, headers, "deadline"
        from_names = self._ranked(provider, from_day).head(k).strings(ctx.world)
        if time.perf_counter() >= deadline:
            body, headers = self._retry_error("deadline", "deadline exceeded")
            return 504, body, headers, "deadline"
        to_names = self._ranked(provider, to_day).head(k).strings(ctx.world)
        doc = {"provider": provider, "from": from_day, "to": to_day, "k": k}
        doc.update(diff_ranked(from_names, to_names))
        body = _json_body(doc)
        etag = _etag_of(body)
        self._remember_etag(cache_key, etag)
        return 200, body, {"ETag": etag}, "lists-diff"

    def _get_stability(
        self, raw_path: str, path: str, deadline: float, inm: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        """``GET /v1/lists/<provider>/stability?k=`` — the incremental
        stability surfaces (daily churn, intersection decay, weekday
        periodicity) over the provider's full simulated day range.

        Serving behavior (DESIGN.md serving rule): the first request per
        (provider, k) walks every day's list with the deadline re-checked
        between days (504 rather than a blown budget); the finished body
        is cached, so later requests — and 304s — are O(1).
        """
        provider = path[len("/v1/lists/"):].split("/")[0]
        k, error = self._parse_k(raw_path)
        if error is not None:
            return 400, error, {}, "router"
        cache_key = f"stability:{provider}:{k}"
        etag = self._cached_etag(cache_key)
        if etag is not None and _etag_matches(inm, etag):
            return self._not_modified(etag, "lists-stability")
        ctx = self._context()
        if provider not in ctx.providers:
            return 404, _error_body(
                "not_found",
                f"unknown provider {provider!r}; choose from "
                + ", ".join(ctx.providers),
            ), {}, "router"
        with self._etag_lock:
            cached = self._stability_cache.get(cache_key)
        if cached is not None:
            body, etag = cached
            return 200, body, {"ETag": etag}, "lists-stability"
        tracker = StabilityTracker(k)
        degraded_statuses: Dict[str, int] = {}
        for day in range(self.config.n_days):
            if time.perf_counter() >= deadline:
                body, headers = self._retry_error("deadline", "deadline exceeded")
                return 504, body, headers, "deadline"
            resolved = self._data_resolve(provider, day)
            if resolved is not None:
                ranked, health = resolved
                degraded = bool(health.get("degraded"))
                if degraded:
                    status = str(health.get("status"))
                    degraded_statuses[status] = (
                        degraded_statuses.get(status, 0) + 1
                    )
            else:
                ranked, degraded = self._ranked(provider, day), False
            # Degraded days (carried-forward repeats especially) would
            # read as zero churn; the tracker records them flagged and
            # keeps them out of the churn aggregates.
            tracker.observe(ranked.head(k).strings(ctx.world),
                            degraded=degraded)
        doc = {"provider": provider, "start_weekday": self.config.start_weekday}
        doc.update(tracker.summary(self.config.start_weekday))
        if self._data_chaos_armed():
            doc["data_health"] = {
                "degraded_days": len(doc.get("degraded_days", [])),
                "by_status": dict(sorted(degraded_statuses.items())),
            }
        body = _json_body(doc)
        etag = _etag_of(body)
        with self._etag_lock:
            self._stability_cache[cache_key] = (body, etag)
            while len(self._stability_cache) > 16:
                self._stability_cache.popitem(last=False)
        self._remember_etag(cache_key, etag)
        return 200, body, {"ETag": etag}, "lists-stability"

    # ------------------------------------------------------------------
    # Conditional-GET plumbing.

    def _list_version(self, provider: str, day: int, ranked: object,
                      data_health: Optional[Dict] = None) -> str:
        """The snapshot version for (provider, day): the store checksum
        of the full persisted snapshot document.

        The first request for a (provider, day) persists the full list
        snapshot as a store artifact (``lists/<provider>/day-<d>``); the
        checksum the store records for it — identical to the sha256 of
        the canonical payload — becomes the version every ``?k=`` slice
        of that snapshot reports.  Under data chaos the ``data_health``
        block is part of the persisted snapshot, so a degraded day's
        version can never collide with its clean twin.
        """
        key = (provider, day)
        with self._etag_lock:
            version = self._list_versions.get(key)
        if version is not None:
            return version
        doc = snapshot_doc(ranked, self._context().world,  # type: ignore[arg-type]
                           data_health=data_health)
        payload = _json_body(doc)
        artifact = f"lists/{provider}/day-{day}"
        self.store.put_json(self._cfg_key, artifact, doc)
        version = self.store.checksum(self._cfg_key, artifact) or _digest(payload)
        with self._etag_lock:
            self._list_versions[key] = version
        return version

    def _cached_etag(self, cache_key: str) -> Optional[str]:
        with self._etag_lock:
            return self._response_etags.get(cache_key)

    def _remember_etag(self, cache_key: str, etag: str) -> None:
        with self._etag_lock:
            self._response_etags[cache_key] = etag
            self._response_etags.move_to_end(cache_key)
            capacity = max(16, self.settings.list_cache_capacity * 4)
            while len(self._response_etags) > capacity:
                self._response_etags.popitem(last=False)

    def _not_modified(
        self, etag: str, source: str
    ) -> Tuple[int, bytes, Dict[str, str], str]:
        """A 304: empty body, the current ETag restated, one counter."""
        with self._counters_lock:
            self.not_modified += 1
        self.tracer.count_root("serve.not_modified")
        return 304, b"", {"ETag": etag}, f"{source}-304"

    def _body_headers(
        self, body: bytes, headers: Dict[str, str]
    ) -> Dict[str, str]:
        """Headers for a 200 with a content-addressed body: strong ETag."""
        merged = dict(headers)
        merged["ETag"] = _etag_of(body)
        return merged

    # ------------------------------------------------------------------
    # Metrics.

    def metrics(self) -> Dict[str, object]:
        """The ``/metricz`` document."""
        with self._counters_lock:
            by_status = {str(code): count for code, count in sorted(self._by_status.items())}
            by_route = dict(sorted(self._by_route.items()))
            requests_total = self.requests_total
            deadline_timeouts = self.deadline_timeouts
            repairs = self.repairs
            non_golden_blocked = self.non_golden_blocked
            not_modified = self.not_modified
            client_gone = self.client_gone
            protocol_errors = self.protocol_errors
            connections_reaped = self.connections_reaped
        stats = self.store.stats
        with self.tracer._root_lock:
            counters = dict(self.tracer.root.counters)
        return {
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "ready": self._ready,
            "draining": self._draining,
            "config_key": self._cfg_key,
            "requests": {
                "total": requests_total,
                "by_status": by_status,
                "by_route": by_route,
                "client_gone": client_gone,
                "protocol_errors": protocol_errors,
            },
            "connections": {
                "active": self.active_connections,
                "reaped": connections_reaped,
                "idle_timeout_seconds": self.settings.idle_timeout_seconds,
                "lifetime_seconds": self.settings.connection_lifetime_seconds,
                "max_header_count": self.settings.max_header_count,
                "max_header_bytes": self.settings.max_header_bytes,
            },
            "shed": {
                "shed_total": self.gate.shed_total,
                "admitted_total": self.gate.admitted_total,
                "inflight": self.gate.inflight,
                "waiting": self.gate.waiting,
                "max_inflight": self.gate.capacity,
                "queue_depth": self.gate.queue_depth,
            },
            "deadline": {
                "deadline_ms": self.settings.deadline_ms,
                "timeouts": deadline_timeouts,
            },
            "retry_after": {
                "floor_seconds": self.settings.retry_after_seconds,
                "current_seconds": self._retry_after_seconds(),
                "cap_seconds": RETRY_AFTER_CAP,
            },
            "conditional": {
                "not_modified_total": not_modified,
                "etags_cached": len(self._response_etags),
                "snapshot_versions": len(self._list_versions),
            },
            "breaker": self.breaker.snapshot(),
            "last_known_good": {
                "size": len(self.lkg),
                "capacity": self.lkg.capacity,
                "serves": self.lkg.serves,
                "repairs": repairs,
                "non_golden_blocked": non_golden_blocked,
            },
            "store": {
                "snapshot": stats.snapshot(),
                "corrupt": stats.corrupt,
                "quarantined": stats.quarantined,
                "read_only": self.store.read_only,
            },
            "data": self._data_metrics(),
            "counters": counters,
        }

    def _data_metrics(self) -> Dict[str, object]:
        """The ``/metricz`` data-plane block: armed state, per-provider
        ingest ledger counts, fired sites, and the fault-sequence digest
        with its in-run replay (equality is the purity proof)."""
        armed = self._data_chaos_armed()
        if not armed or self._data_feed is None:
            return {"armed": armed, "providers": {}, "fired": {},
                    "digest": None, "replay_digest": None}
        with self._data_lock:
            providers = {
                name: stream.counts()
                for name, stream in sorted(self._data_streams.items())
            }
            fired = self._data_feed.fired_sites()
            digest = self._data_feed.fault_digest()
            replay = self._data_feed.replay_digest()
        return {
            "armed": True,
            "providers": providers,
            "fired": dict(sorted(fired.items())),
            "digest": digest,
            "replay_digest": replay,
        }

    # ------------------------------------------------------------------
    # Response plumbing.

    def _retry_after_seconds(self) -> int:
        """The derived ``Retry-After`` value for this instant's load."""
        return dynamic_retry_after(
            self.settings.retry_after_seconds,
            self.gate.waiting,
            self.gate.capacity,
            self.settings.deadline_ms,
            self.breaker.cooldown_remaining(),
        )

    def _retry_headers(self) -> Dict[str, str]:
        return {"Retry-After": str(self._retry_after_seconds())}

    def _retry_error(self, error: str, detail: str) -> Tuple[bytes, Dict[str, str]]:
        """An envelope body + headers pair for retryable errors: the
        ``Retry-After`` header and the body's ``retry_after`` key carry
        the same derived estimate."""
        seconds = self._retry_after_seconds()
        body = _error_body(error, detail, retry_after=seconds)
        return body, {"Retry-After": str(seconds)}

    def _respond(
        self,
        handler: _RequestHandler,
        status: int,
        body: bytes,
        headers: Dict[str, str],
        head_only: bool,
    ) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        for key, value in headers.items():
            handler.send_header(key, value)
        if self._draining and "Connection" not in headers:
            handler.send_header("Connection", "close")
            handler.close_connection = True
        handler.end_headers()
        if not head_only:
            handler.wfile.write(body)

    def _account(
        self,
        handler: _RequestHandler,
        path: str,
        route: str,
        status: int,
        started: float,
        source: str,
        shed: Optional[str] = None,
    ) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._counters_lock:
            self.requests_total += 1
            self._by_status[status] = self._by_status.get(status, 0) + 1
            self._by_route[route] = self._by_route.get(route, 0) + 1
        self.tracer.count_root("serve.requests")
        self.tracer.count_root(f"serve.status.{status // 100}xx")
        self.log.write(
            "request",
            method=handler.command,
            path=path,
            status=status,
            ms=elapsed_ms,
            source=source,
            breaker=self.breaker.state,
            inflight=self.gate.inflight,
            shed=shed if shed is not None else False,
        )


def _digest(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


def _json_body(value: object) -> bytes:
    return json.dumps(value, sort_keys=True).encode("utf-8")


def _error_body(
    error: str, detail: str = "", retry_after: Optional[int] = None
) -> bytes:
    """The canonical error envelope (the DESIGN.md API rule).

    Every 4xx/5xx body is ``{"error": <machine-readable token>,
    "detail": <human text>, "retry_after": <seconds>?}`` — the last key
    present exactly when the response carries a ``Retry-After`` header,
    with the same value.
    """
    doc: Dict[str, object] = {"error": error, "detail": detail}
    if retry_after is not None:
        doc["retry_after"] = retry_after
    return _json_body(doc)


def _etag_of(body: bytes) -> str:
    """Strong ETag for a content-addressed body: quoted sha256 hex."""
    return '"%s"' % _digest(body)


def _etag_matches(header: Optional[str], etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation against one entity tag.

    The header is a comma-separated list of entity tags or ``*``; a
    ``W/`` prefix is ignored for comparison (If-None-Match is defined to
    use weak comparison).
    """
    if not header:
        return False
    if header.strip() == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False
