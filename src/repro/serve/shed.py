"""Load shedding: a bounded admission gate for request handler threads.

``ThreadingHTTPServer`` happily spawns one thread per connection, which
under overload means unbounded concurrency, cache thrash, and every
request finishing late — the classic congestion-collapse shape.  The
:class:`AdmissionGate` turns that into explicit back-pressure:

* at most ``capacity`` requests execute concurrently;
* at most ``queue_depth`` more may *wait* for a slot (bounded, so queue
  time — and therefore worst-case latency — is bounded too);
* everything beyond that is shed immediately, and the server answers
  ``503`` with ``Retry-After`` instead of silently queueing forever.

A waiter also gives up when its share of the request deadline runs out
(better to shed than to serve a response nobody is waiting for), and a
draining gate refuses all new admissions while in-flight work finishes.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

__all__ = ["AdmissionGate", "ShedDecision"]


class ShedDecision:
    """Why an admission attempt did not get a slot."""

    #: Queue is already full — shed without waiting.
    QUEUE_FULL = "queue_full"
    #: Waited, but the caller's deadline budget ran out first.
    TIMEOUT = "queue_timeout"
    #: The gate is draining; no new work is admitted.
    DRAINING = "draining"


class AdmissionGate:
    """Bounded concurrency + bounded waiting; everything else is shed.

    Args:
        capacity: concurrent admissions (the service's ``--jobs``).
        queue_depth: admissions allowed to wait for a slot.
    """

    def __init__(self, capacity: int, queue_depth: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.capacity = capacity
        self.queue_depth = queue_depth
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self.shed_total = 0
        self.admitted_total = 0

    # ------------------------------------------------------------------
    # Introspection (for /metricz and drain progress).

    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        with self._lock:
            return self._inflight

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._lock:
            return self._waiting

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` was called; no new admissions."""
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # Admission.

    def try_acquire(self, timeout: float = 0.0) -> Optional[str]:
        """Try to take a slot; returns None on admission, else the
        :class:`ShedDecision` explaining the shed.

        Args:
            timeout: seconds this caller is willing to queue (its share
              of the request deadline).  ``0`` sheds unless a slot is
              immediately free.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            if self._draining:
                self.shed_total += 1
                return ShedDecision.DRAINING
            if self._inflight < self.capacity:
                self._inflight += 1
                self.admitted_total += 1
                return None
            if self._waiting >= self.queue_depth or timeout <= 0.0:
                self.shed_total += 1
                return ShedDecision.QUEUE_FULL
            self._waiting += 1
            try:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        self.shed_total += 1
                        return ShedDecision.TIMEOUT
                    self._slot_freed.wait(remaining)
                    if self._draining:
                        self.shed_total += 1
                        return ShedDecision.DRAINING
                    if self._inflight < self.capacity:
                        self._inflight += 1
                        self.admitted_total += 1
                        return None
            finally:
                self._waiting -= 1

    def release(self) -> None:
        """Give a slot back (exactly once per successful admission)."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching admission")
            self._inflight -= 1
            self._slot_freed.notify_all()

    # ------------------------------------------------------------------
    # Drain.

    def drain(self) -> None:
        """Stop admitting; queued waiters wake and are shed immediately."""
        with self._lock:
            self._draining = True
            self._slot_freed.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until every in-flight request finished, up to ``timeout``.

        Returns True when the gate went idle inside the budget.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    return False
                self._slot_freed.wait(remaining)
            return True
