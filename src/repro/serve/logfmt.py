"""Structured access logging in logfmt.

Every line the metrics service emits — request outcomes, breaker
transitions, shed decisions, drain progress — is one logfmt record:
space-separated ``key=value`` pairs, values quoted only when they need
to be.  logfmt keeps the log greppable by humans (``grep
'event=breaker.open'``) and trivially parseable by machines
(:func:`parse_logfmt` round-trips every line :func:`logfmt` produces),
which is what the selftest and the CI smoke job rely on.

:class:`AccessLog` is the thread-safe writer: request handler threads,
the breaker, and the drain controller all append through one lock, so a
log line is never interleaved mid-record even under concurrent load.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, TextIO, Union

__all__ = ["logfmt", "parse_logfmt", "AccessLog"]

#: Characters that force a value into double quotes.
_NEEDS_QUOTING = (" ", '"', "=", "\n", "\t")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = f"{value:.3f}"
    elif value is None:
        text = "-"
    else:
        text = str(value)
    if text == "" or any(ch in text for ch in _NEEDS_QUOTING):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    return text


def logfmt(fields: Mapping[str, object]) -> str:
    """One logfmt record from a mapping, keys in the given order."""
    return " ".join(f"{key}={_format_value(value)}" for key, value in fields.items())


def parse_logfmt(line: str) -> Dict[str, str]:
    """Parse one logfmt line back into a string dict.

    Inverse of :func:`logfmt` up to value stringification (every value
    comes back as text; booleans as ``"true"``/``"false"``).
    """
    fields: Dict[str, str] = {}
    i, n = 0, len(line)
    while i < n:
        while i < n and line[i] == " ":
            i += 1
        eq = line.find("=", i)
        if eq < 0:
            break
        key = line[i:eq]
        i = eq + 1
        if i < n and line[i] == '"':
            i += 1
            out: List[str] = []
            while i < n and line[i] != '"':
                if line[i] == "\\" and i + 1 < n:
                    nxt = line[i + 1]
                    out.append({"n": "\n", "t": "\t"}.get(nxt, nxt))
                    i += 2
                else:
                    out.append(line[i])
                    i += 1
            i += 1  # closing quote
            fields[key] = "".join(out)
        else:
            end = line.find(" ", i)
            end = n if end < 0 else end
            fields[key] = line[i:end]
            i = end
    return fields


class AccessLog:
    """Thread-safe logfmt sink for the metrics service.

    Args:
        target: a path (appended to, parents created) or an open text
          stream; ``None`` buffers in memory only (tests read
          :meth:`lines` back).

    Every record is stamped with ``ts`` (unix seconds, milliseconds kept)
    before the caller's fields; writes flush immediately so a killed
    process leaves a complete log up to its last event.
    """

    def __init__(self, target: Union[None, str, Path, TextIO] = None) -> None:
        self._lock = threading.Lock()
        self._memory: List[str] = []
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        self.path: Optional[Path] = None
        if isinstance(target, (str, Path)):
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        elif target is not None:
            self._stream = target

    def write(self, event: str, **fields: object) -> None:
        """Append one record: ``ts=... event=<event> <fields...>``."""
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = logfmt(record)
        with self._lock:
            self._memory.append(line)
            if self._stream is not None:
                self._stream.write(line + "\n")
                self._stream.flush()

    def lines(self) -> List[str]:
        """Every record written so far (the in-memory copy)."""
        with self._lock:
            return list(self._memory)

    def events(self, name: str) -> List[Dict[str, str]]:
        """Parsed records whose ``event`` field equals ``name``."""
        return [
            fields
            for fields in (parse_logfmt(line) for line in self.lines())
            if fields.get("event") == name
        ]

    def close(self) -> None:
        """Close the underlying file when this log opened it."""
        with self._lock:
            if self._stream is not None and self._owns_stream:
                self._stream.close()
                self._stream = None
