"""Circuit breaking around the artifact-store read path.

The metrics service's one real dependency is the artifact store, and a
store can misbehave three ways under load: corrupt blobs (checksum
failures → quarantine), vanished blobs (quarantined or evicted), and
slow reads (cold disk, injected latency).  Hammering a sick dependency
makes every request slow; the :class:`CircuitBreaker` stops that:

* **closed** — reads flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: reads are skipped entirely and requests answer from
  the bounded :class:`LastKnownGood` cache (every body in it was
  golden-verified when it was cached, so availability never costs
  correctness).
* **half-open** — after ``cooldown_seconds`` one probe request is let
  through; success closes the breaker, failure re-opens it and restarts
  the cooldown.

The breaker is deliberately tiny and clock-injectable so its state
machine is exhaustively unit-testable; transitions are reported through
an optional callback, which the server wires to the access log
(``event=breaker.open`` / ``breaker.close`` lines are what the selftest
asserts on).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

__all__ = ["BreakerState", "CircuitBreaker", "LastKnownGood"]


class BreakerState:
    """The three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        cooldown_seconds: time the breaker stays open before allowing a
          half-open probe.
        on_transition: optional ``(old_state, new_state, reason)``
          callback, invoked outside the lock.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 1.0,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self.failures_total = 0

    @property
    def state(self) -> str:
        """Current state (open flips to half-open lazily on inquiry)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False

    def _transition(self, new_state: str, reason: str) -> Optional[Tuple[str, str, str]]:
        old = self._state
        self._state = new_state
        return None if old == new_state else (old, new_state, reason)

    def _notify(self, event: Optional[Tuple[str, str, str]]) -> None:
        if event is not None and self.on_transition is not None:
            self.on_transition(*event)

    # ------------------------------------------------------------------
    # The protocol: allow() → do the read → record_success()/failure().

    def allow(self) -> bool:
        """Whether the caller may attempt the protected read now.

        Closed: always.  Open: never (serve last-known-good).  Half-open:
        exactly one caller gets to probe; everyone else is treated as
        open until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == BreakerState.CLOSED:
                return True
            if self._state == BreakerState.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        """The protected read worked; close from half-open, reset counts."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            event = None
            if self._state != BreakerState.CLOSED:
                self.closes += 1
                event = self._transition(BreakerState.CLOSED, "probe_succeeded")
        self._notify(event)

    def record_failure(self, reason: str = "failure") -> None:
        """The protected read failed; trip on threshold or failed probe."""
        with self._lock:
            self.failures_total += 1
            self._consecutive_failures += 1
            self._probe_inflight = False
            event = None
            if self._state == BreakerState.HALF_OPEN:
                self._opened_at = self._clock()
                self.opens += 1
                event = self._transition(BreakerState.OPEN, f"probe_failed:{reason}")
            elif (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self.opens += 1
                event = self._transition(BreakerState.OPEN, reason)
        self._notify(event)

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker allows its half-open probe.

        0.0 while closed or half-open — which is what makes it directly
        usable as the breaker term of a ``Retry-After`` estimate: a
        client told to come back in ``cooldown_remaining()`` seconds
        arrives just as the probe slot opens.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state != BreakerState.OPEN:
                return 0.0
            return max(
                0.0, self.cooldown_seconds - (self._clock() - self._opened_at)
            )

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for ``/metricz``."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "opens": self.opens,
                "closes": self.closes,
                "probes": self.probes,
                "failures_total": self.failures_total,
            }


class LastKnownGood:
    """Bounded LRU of the last good (golden-verified) response bodies.

    While the breaker is open — or a read comes back corrupt mid-flight —
    requests answer from here instead of failing.  Bodies are stored as
    encoded bytes, exactly as they go on the wire, so a cache hit is
    byte-identical to the fresh response it replaces.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.serves = 0

    def put(self, key: str, body: bytes) -> None:
        """Insert or refresh an entry, evicting the least recently used."""
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def get(self, key: str) -> Optional[bytes]:
        """The cached body (refreshes recency), or None."""
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
                self.serves += 1
            return body

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
