"""The resilient metrics service (``repro serve``).

Layers, one module per concern:

* :mod:`repro.serve.server` — the HTTP service itself (routes, deadlines,
  warmup, golden verification, metrics).
* :mod:`repro.serve.shed` — bounded admission (load shedding).
* :mod:`repro.serve.breaker` — circuit breaking around store reads, plus
  the last-known-good response cache.
* :mod:`repro.serve.drain` — SIGTERM/SIGINT graceful-drain lifecycle.
* :mod:`repro.serve.logfmt` — structured (logfmt) access logging.
* :mod:`repro.serve.selftest` — ``repro serve --selftest``: the service
  proving its own resilience under a deterministic fault plan.
"""

from repro.serve.breaker import BreakerState, CircuitBreaker, LastKnownGood
from repro.serve.drain import DrainController
from repro.serve.logfmt import AccessLog, logfmt, parse_logfmt
from repro.serve.selftest import SelftestReport, run_selftest
from repro.serve.server import (
    DEFAULT_PORT,
    RETRY_AFTER_CAP,
    MetricsService,
    ServeSettings,
    dynamic_retry_after,
)
from repro.serve.shed import AdmissionGate, ShedDecision

__all__ = [
    "AccessLog",
    "AdmissionGate",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "DrainController",
    "LastKnownGood",
    "MetricsService",
    "RETRY_AFTER_CAP",
    "SelftestReport",
    "ServeSettings",
    "ShedDecision",
    "dynamic_retry_after",
    "logfmt",
    "parse_logfmt",
    "run_selftest",
]
