"""``repro serve --selftest``: the service proves its own resilience.

The selftest boots a real :class:`~repro.serve.server.MetricsService` on
an ephemeral port, replays a deterministic request mix against it over
real sockets, and walks every hardening path on purpose:

A. **baseline** — with fault injection disarmed, fetch every exposed
   endpoint once and pin the expected (golden-verified) bodies; then
   prove the conditional-GET contract (repeat with ``If-None-Match``
   answers 304, empty body, **zero store reads**) and that the diff
   endpoint serves rank deltas.
B. **breaker** — arm the fault plan and trip the circuit deterministically:
   the plan makes each result's first live read slow *and* corrupt, so
   ``failure_threshold`` sequential requests open the breaker while every
   response still answers 200 from last-known-good; after the cooldown a
   half-open probe hits the repaired store and the breaker closes again.
C. **chaos mix** — concurrent clients sweep every endpoint (including the
   plan's injected request errors) and the report requires ≥ the
   availability threshold of non-shed requests to answer 200 with bodies
   byte-identical to the baseline.
D. **shedding** — with every worker slot held (a simulated saturated
   pool), a burst beyond the queue bound must shed: every shed response
   is 503 and carries ``Retry-After``.
E. **drain** — SIGTERM lands mid-traffic; in-flight requests finish (no
   truncated response bodies), the access log ends with
   ``drain.complete`` and ``serve.exit code=0``.

Everything is deterministic: the fault plan is seeded, the mix is a
fixed rotation, and the breaker is tripped by construction rather than
by racing threads.
"""

from __future__ import annotations

import http.client
import json
import math
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults import inject as faults
from repro.faults.plan import FaultPlan, default_serve_plan
from repro.serve.logfmt import AccessLog
from repro.serve.server import MetricsService, ServeSettings
from repro.store.artifacts import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

__all__ = ["SelftestReport", "run_selftest", "DEFAULT_SELFTEST_NAMES"]

#: The cheap experiment subset the selftest serves (mirrors the CI
#: chaos smoke: fast to compute at golden scale, covers both tables and
#: figures).
DEFAULT_SELFTEST_NAMES: Tuple[str, ...] = ("fig1", "table1", "table2", "fig6", "survey")


@dataclass
class Check:
    """One selftest assertion outcome."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class SelftestReport:
    """Everything ``repro serve --selftest`` asserts, with evidence."""

    checks: List[Check] = field(default_factory=list)
    requests_total: int = 0
    availability: float = 0.0
    shed_observed: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    log_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(Check(name, bool(ok), detail))

    def render(self) -> str:
        lines = []
        for check in self.checks:
            mark = "ok " if check.ok else "FAIL"
            suffix = f": {check.detail}" if check.detail else ""
            lines.append(f"[{mark}] {check.name}{suffix}")
        passed = sum(1 for check in self.checks if check.ok)
        lines.append(
            f"\n{passed}/{len(self.checks)} checks passed; "
            f"{self.requests_total} requests, "
            f"availability {self.availability:.4f}, "
            f"{self.shed_observed} shed, "
            f"breaker opened x{self.breaker_opens} closed x{self.breaker_closes}"
        )
        return "\n".join(lines)


@dataclass
class _Response:
    status: int
    headers: Dict[str, str]
    body: bytes
    truncated: bool = False


def _fetch(
    host: str,
    port: int,
    path: str,
    timeout: float = 10.0,
    headers: Optional[Dict[str, str]] = None,
) -> Optional[_Response]:
    """One GET over a fresh connection; None when no status line arrived
    (connection refused/reset before the response started — the one
    outcome the drain phase legitimately excludes)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        headers = {key.lower(): value for key, value in response.getheaders()}
        try:
            body = response.read()
        except (http.client.IncompleteRead, ConnectionError, OSError):
            return _Response(response.status, headers, b"", truncated=True)
        return _Response(response.status, headers, body)
    except (ConnectionError, OSError, http.client.HTTPException):
        return None
    finally:
        conn.close()


def _ensure_results(
    names: Sequence[str], config: WorldConfig, cache_dir: str, jobs: int
) -> List[str]:
    """Compute any missing ``results/<name>`` blobs; returns failures."""
    probe = ArtifactStore(cache_dir)
    cfg_key = config_key(config)
    missing = [
        name for name in names
        if probe.get_json(cfg_key, f"results/{name}") is None
    ]
    if not missing:
        return []
    from repro.runner import run_experiments

    _payloads, manifest, _path = run_experiments(
        missing, config, jobs=max(1, jobs), cache_dir=cache_dir
    )
    return [outcome.name for outcome in manifest.failures]


def run_selftest(
    config: WorldConfig,
    cache_dir: str,
    names: Optional[Sequence[str]] = None,
    plan: Optional[FaultPlan] = None,
    seed: int = 1337,
    clients: int = 3,
    settings: Optional[ServeSettings] = None,
    golden_dir: Optional[object] = None,
    access_log: Optional[AccessLog] = None,
    jobs: int = 1,
    min_requests: int = 400,
    availability_threshold: float = 0.99,
    use_signals: bool = True,
) -> SelftestReport:
    """Run the full resilience selftest; see the module docstring.

    Args:
        config: world configuration whose cached results are served
          (missing results are computed first).
        cache_dir: artifact-store root.
        names: experiments to exercise (default
          :data:`DEFAULT_SELFTEST_NAMES`); needs at least
          ``breaker_threshold`` entries to trip the circuit.
        plan: fault plan for the chaos phases (default
          :func:`~repro.faults.plan.default_serve_plan` with ``seed``).
        seed: seed for the default plan.
        clients: concurrent client threads in the chaos mix (kept below
          ``max_inflight`` so the mix itself never sheds).
        settings: service knobs; the default uses an ephemeral port and a
          short breaker cooldown so the selftest stays fast.
        golden_dir: optional golden snapshot directory for warmup
          verification.
        access_log: structured log sink (e.g. a file for CI artifacts).
        jobs: worker processes for computing missing results.
        min_requests: minimum chaos-mix request volume.
        availability_threshold: required 200-rate over non-shed requests.
        use_signals: deliver a real SIGTERM for the drain phase (requires
          the main thread); False drives the drain programmatically.
    """
    report = SelftestReport()
    names = list(names if names is not None else DEFAULT_SELFTEST_NAMES)
    if settings is None:
        settings = ServeSettings(port=0, breaker_cooldown_seconds=0.4)
    if len(names) < settings.breaker_threshold:
        report.record(
            "setup", False,
            f"need >= {settings.breaker_threshold} experiments to trip the "
            f"breaker, got {len(names)}",
        )
        return report

    failures = _ensure_results(names, config, cache_dir, jobs)
    report.record(
        "results cached", not failures,
        "all present" if not failures else f"failed: {', '.join(failures)}",
    )
    if failures:
        return report

    store = ArtifactStore(cache_dir)
    service = MetricsService(
        config,
        store,
        settings=settings,
        names=names,
        golden_dir=golden_dir,
        access_log=access_log,
    )
    statuses = service.warm()
    bad = {name: status for name, status in statuses.items() if status != "ok"}
    report.record(
        "warmup golden-verified", not bad,
        f"{len(statuses)} result(s) primed" if not bad else str(bad),
    )
    if bad:
        return report

    service.start()
    host, port = service.host, service.port
    responses: List[Tuple[str, _Response]] = []
    installed_signals = False
    try:
        # ----------------------------------------------------------- A
        providers = list(service._context().providers)
        list_paths = [f"/v1/lists/{providers[0]}/0?k=25"]
        if config.n_days > 1:
            list_paths.append(f"/v1/lists/{providers[0]}/1?k=25")
        experiment_paths = [f"/v1/experiments/{name}" for name in names]
        meta_paths = ["/v1/experiments", "/metricz"]
        expected: Dict[str, bytes] = {}
        baseline_ok = True
        for path in experiment_paths + list_paths + meta_paths:
            response = _fetch(host, port, path)
            if response is None or response.status != 200:
                baseline_ok = False
                report.record("baseline", False, f"{path} did not answer 200")
                break
            responses.append((path, response))
            if path.startswith("/v1/experiments/"):
                expected[path] = response.body
        if baseline_ok:
            report.record(
                "baseline", True,
                f"{len(experiment_paths + list_paths + meta_paths)} endpoints answered 200",
            )
        else:
            return report

        # ---------------------------------------------------- A (cont.)
        # Conditional revalidation: a repeated GET with If-None-Match
        # must answer 304 with an empty body and — the acceptance bar —
        # zero store reads.  Checked for both the list surface and a
        # stored experiment result, against live store read counters.
        conditional_targets = [list_paths[0], experiment_paths[0]]
        conditional_ok = True
        conditional_detail = []
        for path in conditional_targets:
            first = _fetch(host, port, path)
            etag = (first.headers.get("etag") if first is not None else None)
            if first is None or first.status != 200 or not etag:
                conditional_ok = False
                conditional_detail.append(f"{path}: no ETag on 200")
                continue
            stats = service.store.stats
            reads_before = stats.total_hits + stats.total_misses
            revalidated = _fetch(
                host, port, path, headers={"If-None-Match": etag}
            )
            reads_after = stats.total_hits + stats.total_misses
            if (
                revalidated is None
                or revalidated.status != 304
                or revalidated.body != b""
                or revalidated.headers.get("etag") != etag
            ):
                conditional_ok = False
                status = revalidated.status if revalidated else None
                conditional_detail.append(f"{path}: expected 304, got {status}")
            elif reads_after != reads_before:
                conditional_ok = False
                conditional_detail.append(
                    f"{path}: 304 touched the store "
                    f"({reads_after - reads_before} read(s))"
                )
        report.record(
            "conditional GET answers 304 with zero store reads",
            conditional_ok,
            "; ".join(conditional_detail) if conditional_detail
            else f"{len(conditional_targets)} endpoints revalidated",
        )

        if config.n_days > 1:
            diff_path = f"/v1/lists/{providers[0]}/diff?from=0&to=1&k=25"
            diff_response = _fetch(host, port, diff_path)
            diff_ok = diff_response is not None and diff_response.status == 200
            diff_detail = "no response"
            if diff_ok:
                import json as _json

                diff_doc = _json.loads(diff_response.body)
                diff_ok = all(
                    key in diff_doc
                    for key in ("entrants", "dropouts", "moved", "unchanged")
                )
                diff_detail = (
                    f"{len(diff_doc.get('entrants', []))} entrants, "
                    f"{len(diff_doc.get('dropouts', []))} dropouts, "
                    f"{len(diff_doc.get('moved', []))} moved"
                )
            report.record("diff endpoint serves rank deltas", diff_ok, diff_detail)

        # ---------------------------------------------------- A (cont.)
        # Header-limit hardening: a request flooding more header lines
        # than the service allows must answer 431 in the canonical JSON
        # envelope and close the connection — never the stdlib HTML
        # error page, and never an unbounded parse.
        limit_ok = False
        limit_detail = "no response"
        try:
            with socket.create_connection((host, port), timeout=5.0) as raw:
                raw.settimeout(5.0)
                flood = "".join(
                    f"X-Pad-{i}: {i}\r\n"
                    for i in range(settings.max_header_count + 8)
                )
                raw.sendall(
                    (
                        "GET /healthz HTTP/1.1\r\nHost: selftest\r\n"
                        f"{flood}Connection: close\r\n\r\n"
                    ).encode("ascii")
                )
                blob = b""
                while True:
                    chunk = raw.recv(65536)
                    if not chunk:
                        break
                    blob += chunk
            head, _, body = blob.partition(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1]) if head else 0
            doc = json.loads(body) if body else {}
            limit_ok = (
                status == 431 and doc.get("error") == "headers_too_large"
            )
            limit_detail = f"status {status}, error {doc.get('error')!r}"
        except (OSError, ValueError):
            limit_detail = "malformed header-limit response"
        report.record(
            "header floods answer 431 in the envelope", limit_ok, limit_detail
        )

        # ----------------------------------------------------------- B
        faults.activate(plan if plan is not None else default_serve_plan(seed))
        trip_paths = experiment_paths[: settings.breaker_threshold]
        trip_ok = True
        for path in trip_paths:
            response = _fetch(host, port, path)
            if response is None:
                trip_ok = False
                break
            responses.append((path, response))
            trip_ok = trip_ok and response.status == 200 and response.body == expected[path]
        report.record(
            "corrupt reads answered from last-known-good",
            trip_ok and service.breaker.opens >= 1,
            f"breaker opened after {settings.breaker_threshold} poisoned reads"
            if service.breaker.opens >= 1 else
            f"breaker never opened (opens={service.breaker.opens})",
        )
        open_response = _fetch(host, port, trip_paths[0])
        if open_response is not None:
            responses.append((trip_paths[0], open_response))
        report.record(
            "open breaker serves cached bodies",
            open_response is not None
            and open_response.status == 200
            and open_response.body == expected[trip_paths[0]],
        )
        time.sleep(settings.breaker_cooldown_seconds + 0.1)
        probe_response = _fetch(host, port, trip_paths[0])
        if probe_response is not None:
            responses.append((trip_paths[0], probe_response))
        report.record(
            "half-open probe re-closed the breaker",
            probe_response is not None
            and probe_response.status == 200
            and service.breaker.closes >= 1,
            f"closes={service.breaker.closes} after repaired store probe",
        )

        # ----------------------------------------------------------- C
        mix = experiment_paths + list_paths + meta_paths
        per_round = max(1, clients) * len(mix)
        rounds = max(1, math.ceil(min_requests / per_round))
        mix_results: List[List[Tuple[str, Optional[_Response]]]] = [
            [] for _ in range(max(1, clients))
        ]

        def _client(index: int) -> None:
            for round_no in range(rounds):
                for offset in range(len(mix)):
                    path = mix[(index + round_no + offset) % len(mix)]
                    mix_results[index].append((path, _fetch(host, port, path)))

        threads = [
            threading.Thread(target=_client, args=(index,), daemon=True)
            for index in range(max(1, clients))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        dropped = 0
        for bucket in mix_results:
            for path, response in bucket:
                if response is None:
                    dropped += 1
                else:
                    responses.append((path, response))
        report.record("chaos mix connections", dropped == 0,
                      f"{dropped} request(s) got no response" if dropped
                      else f"{rounds * per_round} requests completed")

        non_shed = [
            (path, response) for path, response in responses
            if not (response.status == 503 and "retry-after" in response.headers)
        ]
        ok_count = sum(1 for _path, response in non_shed if response.status == 200)
        availability = ok_count / len(non_shed) if non_shed else 0.0
        report.requests_total = len(responses)
        report.availability = availability
        report.record(
            "availability under chaos",
            availability >= availability_threshold,
            f"{ok_count}/{len(non_shed)} non-shed requests answered 200 "
            f"({availability:.4f} >= {availability_threshold})",
        )
        non_golden = [
            path for path, response in responses
            if response.status == 200
            and path in expected
            and response.body != expected[path]
        ]
        report.record(
            "zero non-golden bodies served", not non_golden,
            "every 200 body byte-identical to baseline" if not non_golden
            else f"drifted: {sorted(set(non_golden))}",
        )

        # ----------------------------------------------------------- D
        # Handler threads release their slots *after* the client has read
        # the response body; let the stragglers from the mix finish before
        # counting slots.
        service.gate.wait_idle(5.0)
        held = 0
        shed_responses: List[Optional[_Response]] = []
        try:
            while service.gate.try_acquire() is None:
                held += 1  # simulate a fully saturated worker pool
            burst = settings.queue_depth + 4
            burst_results: List[Optional[_Response]] = [None] * burst

            def _burst(index: int) -> None:
                burst_results[index] = _fetch(host, port, experiment_paths[0])

            burst_threads = [
                threading.Thread(target=_burst, args=(index,), daemon=True)
                for index in range(burst)
            ]
            for thread in burst_threads:
                thread.start()
            for thread in burst_threads:
                thread.join()
            shed_responses = burst_results
        finally:
            for _ in range(held):
                service.gate.release()
        all_shed = all(
            response is not None
            and response.status == 503
            and "retry-after" in response.headers
            for response in shed_responses
        )
        report.shed_observed = service.gate.shed_total
        report.record(
            "saturated pool sheds with Retry-After", all_shed,
            f"{len(shed_responses)} burst requests shed 503, all with Retry-After"
            if all_shed else "a burst request was not shed correctly",
        )

        # ----------------------------------------------------------- E
        stop = threading.Event()
        drain_results: List[Tuple[str, Optional[_Response]]] = []
        drain_lock = threading.Lock()

        def _drain_client(index: int) -> None:
            while not stop.is_set():
                path = mix[index % len(mix)]
                response = _fetch(host, port, path, timeout=5.0)
                with drain_lock:
                    drain_results.append((path, response))
                if response is None:
                    return  # listener is gone

        drain_threads = [
            threading.Thread(target=_drain_client, args=(index,), daemon=True)
            for index in range(max(1, clients))
        ]
        for thread in drain_threads:
            thread.start()
        time.sleep(0.2)  # let traffic get in flight
        if use_signals:
            service.drain_ctl.install()
            installed_signals = True
            signal.raise_signal(signal.SIGTERM)
        else:
            service.drain_ctl.request("SIGTERM")
        signalled = service.drain_ctl.wait(5.0)
        drained = service.drain(reason=service.drain_ctl.reason or "selftest")
        stop.set()
        for thread in drain_threads:
            thread.join(timeout=5.0)
        report.record(
            "SIGTERM requested drain",
            signalled and service.drain_ctl.reason == "SIGTERM",
            f"reason={service.drain_ctl.reason}",
        )
        truncated = [
            path for path, response in drain_results
            if response is not None and response.truncated
        ]
        completed = sum(
            1 for _path, response in drain_results if response is not None
        )
        report.record(
            "in-flight requests completed during drain",
            drained and not truncated,
            f"{completed} responses completed, 0 truncated" if not truncated
            else f"truncated responses on: {sorted(set(truncated))}",
        )
        exit_events = service.log.events("serve.exit")
        report.record(
            "structured log complete with exit 0",
            bool(service.log.events("drain.start"))
            and bool(service.log.events("drain.complete"))
            and len(exit_events) == 1
            and exit_events[0].get("code") == "0",
            "drain.start, drain.complete, serve.exit code=0 all present",
        )
        open_events = service.log.events("breaker.open")
        close_events = service.log.events("breaker.close")
        report.breaker_opens = len(open_events)
        report.breaker_closes = len(close_events)
        report.record(
            "breaker cycle visible in access log",
            bool(open_events) and bool(close_events),
            f"breaker.open x{len(open_events)}, breaker.close x{len(close_events)}",
        )
    finally:
        faults.activate(None)
        if installed_signals:
            service.drain_ctl.restore()
        if not service.draining:
            service.drain(reason="selftest-cleanup")
    report.log_lines = service.log.lines()
    return report
