"""Traffic simulation.

Two engines over the same world:

* :mod:`repro.traffic.fastpath` — a vectorized expectation-plus-noise model
  producing per-(site, day) pageloads, visit-session intensities, and
  country/platform splits.  Every bench-scale experiment runs on this.
* :mod:`repro.traffic.eventsim` — a record-level browsing simulator that
  emits individual HTTP requests (as :mod:`repro.netsim` messages) and DNS
  queries for small worlds, used by examples, tests, and the log-pipeline
  validation bench that checks the two engines agree.

:mod:`repro.traffic.calendar` holds the shared day-of-week and black-swan
temporal modulation (Section 5.4's weekday/weekend effects).
"""

from repro.traffic.calendar import TrafficCalendar
from repro.traffic.fastpath import TrafficModel

__all__ = ["TrafficCalendar", "TrafficModel"]
