"""Browsing-session records for the event-level simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BrowsingSession"]


@dataclass(frozen=True)
class BrowsingSession:
    """One client's visit to one site.

    Attributes:
        day: simulated day index.
        site: visited site index.
        country: client country index.
        platform: 0 = desktop, 1 = mobile.
        browser: user-agent family name.
        client_ip: the client's address for the day.
        pages: pageloads in the session.
        entered_at_root: whether the first pageload was ``GET /``.
        private: whether the session ran in a private browsing window.
        enterprise: whether the client sits on an enterprise network.
        start_second: session start, seconds from the day's midnight.
    """

    day: int
    site: int
    country: int
    platform: int
    browser: str
    client_ip: str
    pages: int
    entered_at_root: bool
    private: bool
    enterprise: bool
    start_second: float
