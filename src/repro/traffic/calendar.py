"""Temporal modulation: weekdays, weekends, and black-swan events.

The paper's Figure 3 finds weekly periodicity in list accuracy — Umbrella's
Jaccard index and Alexa's Spearman correlation both move with the work week —
and attributes it to *who browses when*: enterprise clients (Umbrella's
base) browse on weekdays; home desktop users (where Alexa's extensions
live) and mobile users browse relatively more on weekends.

This module turns a simulated day index into per-country, per-population
activity multipliers that every vantage point shares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.weblib.categories import CATEGORIES, category_index
from repro.worldgen.config import WorldConfig
from repro.worldgen.countries import COUNTRIES

__all__ = ["TrafficCalendar"]

# Activity multipliers by (population, is_weekend).
_ENTERPRISE_DESKTOP = (1.32, 0.30)
_HOME_DESKTOP = (0.90, 1.26)
_MOBILE = (0.95, 1.22)


@dataclass
class TrafficCalendar:
    """Day-level activity factors for a configuration.

    All factor methods are deterministic functions of the day index; noise
    is applied downstream by the traffic model.
    """

    config: WorldConfig

    def is_weekend(self, day: int) -> bool:
        """Whether simulated ``day`` is a Saturday or Sunday."""
        return self.config.is_weekend(day)

    def weekday_name(self, day: int) -> str:
        """Human-readable weekday name of ``day``."""
        names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
        return names[self.config.weekday_of(day)]

    def enterprise_desktop_factor(self, day: int) -> float:
        """Activity of enterprise desktop clients on ``day``."""
        return _ENTERPRISE_DESKTOP[1 if self.is_weekend(day) else 0]

    def home_desktop_factor(self, day: int) -> float:
        """Activity of non-enterprise desktop clients on ``day``."""
        return _HOME_DESKTOP[1 if self.is_weekend(day) else 0]

    def mobile_factor(self, day: int) -> float:
        """Activity of mobile clients on ``day``."""
        return _MOBILE[1 if self.is_weekend(day) else 0]

    def desktop_country_factors(self, day: int) -> np.ndarray:
        """Per-country desktop activity, mixing enterprise and home bases."""
        ent = np.array([c.enterprise_share for c in COUNTRIES])
        return ent * self.enterprise_desktop_factor(day) + (1.0 - ent) * self.home_desktop_factor(day)

    def mobile_country_factors(self, day: int) -> np.ndarray:
        """Per-country mobile activity (uniform across countries today)."""
        return np.full(len(COUNTRIES), self.mobile_factor(day))

    def category_event_factors(self, day: int) -> np.ndarray:
        """Per-category popularity multipliers for black-swan events.

        From ``news_event_day`` onward, news traffic surges (the paper's
        study window covered the start of a major international news
        event).
        """
        factors = np.ones(len(CATEGORIES))
        if day >= self.config.news_event_day:
            factors[category_index("news")] = self.config.news_event_boost
        return factors

    def alexa_panel_boost(self, day: int) -> float:
        """Alexa's unexplained late-month panel change (Figure 3)."""
        if day >= self.config.alexa_change_day:
            return self.config.alexa_change_boost
        return 1.0
