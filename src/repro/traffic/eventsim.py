"""The record-level browsing simulator.

Where :mod:`repro.traffic.fastpath` produces expected counts, this module
produces *events*: browsing sessions that emit individual HTTP request
records (for the Cloudflare log pipeline) and DNS resolutions (through the
:mod:`repro.dnslib` stack).  It exists for three reasons:

* integration testing — the fast path's analytic formulas are validated
  against literal counting over the same world;
* the examples — inspecting concrete request logs is how a reader convinces
  themself the pipeline is real;
* the DNS ablation bench — measuring cache suppression instead of assuming
  it.

It is a small-world tool: a few thousand sites, tens of thousands of
sessions.  Bench-scale experiments use the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cdn.logstore import LogRecord, LogStore
from repro.dnslib.cache import DnsCache
from repro.dnslib.querylog import QueryLog
from repro.dnslib.resolver import (
    AuthoritativeServer,
    CachingResolver,
    build_authoritative_from_names,
)
from repro.traffic.fastpath import TrafficModel
from repro.traffic.sessions import BrowsingSession
from repro.weblib.useragents import BROWSERS, UserAgent
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World

__all__ = ["DayEvents", "EventSimulator"]

_SECONDS_PER_DAY = 86_400.0

# Browser families by platform (weights renormalized at build time).
_DESKTOP_BROWSERS = ("chrome", "edge", "firefox", "safari", "opera")
_MOBILE_BROWSERS = ("chrome", "safari", "samsung-internet", "opera")
_BOT_BROWSERS = ("googlebot", "bingbot", "curl", "python-requests", "scrapybot")


@dataclass
class DayEvents:
    """Everything one simulated day of events produced.

    Attributes:
        day: the day index.
        sessions: all browsing sessions (bot crawls included).
        logs: the Cloudflare-side log store (only CF-served sites appear).
        dns_log: query log of the enterprise resolver tier (None when DNS
          simulation was disabled).
        dns_caches: the per-org caches, for suppression statistics.
    """

    day: int
    sessions: List[BrowsingSession]
    logs: LogStore
    dns_log: Optional[QueryLog] = None
    dns_caches: List[DnsCache] = field(default_factory=list)


class EventSimulator:
    """Samples concrete browsing sessions and their request/DNS records.

    Args:
        world: the simulated world (keep it small; this is Python loops).
        traffic: shared traffic model.
        n_orgs: enterprise organizations per country for the DNS tier.
    """

    def __init__(
        self,
        world: World,
        traffic: Optional[TrafficModel] = None,
        n_orgs: int = 8,
    ) -> None:
        self._world = world
        self._traffic = traffic if traffic is not None else TrafficModel(world)
        self._n_orgs = n_orgs
        self._browser_weights = self._build_browser_weights()
        # Per-site FQDN rows for DNS resolution.
        names = world.names
        fqdn_rows = names.rows_of_kind(NameKind.FQDN)
        owned = names.site[fqdn_rows] >= 0
        self._fqdn_rows = fqdn_rows[owned]
        self._fqdn_by_site: Dict[int, List[Tuple[str, float]]] = {}
        for row in self._fqdn_rows:
            site = int(names.site[row])
            self._fqdn_by_site.setdefault(site, []).append(
                (names.strings[row], float(names.share[row]))
            )
        self._authoritative: Optional[AuthoritativeServer] = None

    @property
    def world(self) -> World:
        """The simulated world."""
        return self._world

    def _build_browser_weights(self) -> Dict[str, Tuple[List[str], np.ndarray]]:
        by_name = {b.name: b for b in BROWSERS}

        def weights(names: Tuple[str, ...]) -> Tuple[List[str], np.ndarray]:
            shares = np.array([by_name[n].global_share for n in names])
            return list(names), shares / shares.sum()

        return {
            "desktop": weights(_DESKTOP_BROWSERS),
            "mobile": weights(_MOBILE_BROWSERS),
            "bot": weights(_BOT_BROWSERS),
        }

    def _authoritative_server(self) -> AuthoritativeServer:
        if self._authoritative is None:
            rng = self._world.rng("dns")
            self._authoritative = build_authoritative_from_names(
                self._fqdn_rows, self._world.names.strings, rng
            )
        return self._authoritative

    def _client_ip(self, country: int, index: int) -> str:
        return f"10.{country}.{(index >> 8) % 256}.{index % 256}"

    def simulate_day(
        self,
        day: int,
        n_sessions: int,
        with_dns: bool = False,
        include_bots: bool = True,
    ) -> DayEvents:
        """Simulate ``n_sessions`` browsing sessions plus bot crawls.

        Records for Cloudflare-served sites land in the returned
        :class:`~repro.cdn.logstore.LogStore`; with ``with_dns`` every
        session also resolves the site's names through a per-org caching
        resolver tier whose upstream queries land in ``dns_log``.
        """
        world = self._world
        sites = world.sites
        rng = world.day_rng("eventsim", day)
        tensors = self._traffic.day(day)
        weights = tensors.pageloads / tensors.pageloads.sum()

        logs = LogStore()
        sessions: List[BrowsingSession] = []

        dns_log: Optional[QueryLog] = None
        resolvers: Dict[Tuple[int, int], CachingResolver] = {}
        caches: List[DnsCache] = []
        if with_dns:
            dns_log = QueryLog()
            upstream = self._authoritative_server()
            for country in range(world.clients.n_countries):
                for org in range(self._n_orgs):
                    cache = DnsCache(capacity=50_000)
                    caches.append(cache)
                    resolvers[(country, org)] = CachingResolver(
                        resolver_id=f"org-{country}-{org}",
                        upstream=upstream,
                        cache=cache,
                        log=dns_log,
                    )

        # Sample the visited site for every session at once.
        visited = rng.choice(world.n_sites, size=n_sessions, p=weights)
        start_seconds = rng.uniform(0, _SECONDS_PER_DAY, size=n_sessions)
        order = np.argsort(start_seconds)  # DNS caches need time order.
        visited = visited[order]
        start_seconds = start_seconds[order]

        client_pool = max(64, n_sessions // 4)

        for i in range(n_sessions):
            site = int(visited[i])
            start = float(start_seconds[i])
            country = int(rng.choice(len(sites.country_share[site]), p=sites.country_share[site]))
            platform = 1 if rng.random() < sites.mobile_share[site] else 0
            names, probs = self._browser_weights["mobile" if platform else "desktop"]
            browser = str(rng.choice(names, p=probs))
            pages = 1 + rng.poisson(max(0.0, self._traffic.pages_per_visit[site] - 1.0))
            private = rng.random() < sites.private_rate[site]
            enterprise = platform == 0 and rng.random() < world.clients.enterprise_frac[country]
            client_index = int(rng.integers(client_pool))
            client_ip = self._client_ip(country, client_index)
            entered_root = rng.random() < sites.root_frac[site]
            session = BrowsingSession(
                day=day,
                site=site,
                country=country,
                platform=platform,
                browser=browser,
                client_ip=client_ip,
                pages=int(pages),
                entered_at_root=bool(entered_root),
                private=private,
                enterprise=enterprise,
                start_second=start,
            )
            sessions.append(session)
            self._emit_http(session, rng, logs)
            if with_dns:
                org = client_index % self._n_orgs
                resolver = resolvers[(country, org)]
                self._emit_dns(session, resolver, rng, start)

        if include_bots:
            self._emit_bot_crawls(day, rng, logs, n_sessions)

        return DayEvents(
            day=day, sessions=sessions, logs=logs, dns_log=dns_log, dns_caches=caches
        )

    def _emit_http(
        self, session: BrowsingSession, rng: np.random.Generator, logs: LogStore
    ) -> None:
        """Turn a session into Cloudflare-side request log records."""
        world = self._world
        sites = world.sites
        site = session.site
        if not sites.cf_served[site]:
            return  # The CDN never sees non-customer traffic.

        host = sites.names[site]
        ua = UserAgent(family=session.browser, version="98.0")
        ua_string = ua.header_value()
        is_top5 = ua.is_top_five_browser
        tls_budget = sites.tls_per_pageload[site] * session.pages
        handshakes_left = max(1, int(round(tls_budget)))

        for page in range(session.pages):
            is_root = session.entered_at_root if page == 0 else (
                rng.random() < sites.root_frac[site]
            )
            path = "/" if is_root else f"/page/{int(rng.integers(1, 500))}"
            has_referer = page > 0 or rng.random() > sites.referer_null_frac[site]
            subresources = rng.poisson(max(0.0, sites.subres_mult[site] - 1.0))
            requests = [(path, "text/html", has_referer)]
            for s in range(int(subresources)):
                kind = "text/css" if s % 3 == 0 else ("image/png" if s % 3 == 1 else "application/javascript")
                requests.append((f"/assets/{int(rng.integers(1, 2000))}", kind, True))
            for req_path, content_type, referer in requests:
                status = 200 if rng.random() < sites.success_rate[site] else int(
                    rng.choice((301, 304, 404, 500))
                )
                new_tls = handshakes_left > 0 and rng.random() < (
                    handshakes_left / max(1, len(requests) * (session.pages - page))
                )
                if new_tls:
                    handshakes_left -= 1
                logs.add(
                    LogRecord(
                        day=session.day,
                        site=site,
                        host=host,
                        path=req_path,
                        status=status,
                        content_type=content_type,
                        has_referer=referer,
                        browser_family=session.browser,
                        is_top5_browser=is_top5,
                        client_ip=session.client_ip,
                        user_agent=ua_string,
                        new_tls_session=new_tls,
                    )
                )

    def _emit_dns(
        self,
        session: BrowsingSession,
        resolver: CachingResolver,
        rng: np.random.Generator,
        now: float,
    ) -> None:
        """Resolve the names a visit touches through the org resolver."""
        fqdns = self._fqdn_by_site.get(session.site, ())
        for host, share in fqdns:
            # The primary name is always resolved; service names with the
            # probability their share implies.
            if share >= 0.5 or rng.random() < share + 0.2:
                resolver.resolve(host, client_id=session.client_ip, now=now, day=session.day)

    def _emit_bot_crawls(
        self, day: int, rng: np.random.Generator, logs: LogStore, n_sessions: int
    ) -> None:
        """Crawler traffic: root-heavy, non-browser, few distinct IPs."""
        world = self._world
        sites = world.sites
        n_crawls = max(1, n_sessions // 10)
        bot_weight = world.sites.weight * sites.bot_share
        bot_weight = bot_weight / bot_weight.sum()
        crawled = rng.choice(world.n_sites, size=n_crawls, p=bot_weight)
        names, probs = self._browser_weights["bot"]
        for site in crawled:
            site = int(site)
            if not sites.cf_served[site]:
                continue
            family = str(rng.choice(names, p=probs))
            ua = UserAgent(family=family, version="2.1")
            fetches = 1 + int(rng.poisson(2.0))
            bot_ip = self._client_ip(0, int(rng.integers(32)))
            for f in range(fetches):
                path = "/" if f == 0 else f"/page/{int(rng.integers(1, 200))}"
                logs.add(
                    LogRecord(
                        day=day,
                        site=site,
                        host=sites.names[site],
                        path=path,
                        status=200 if rng.random() < 0.9 else 404,
                        content_type="text/html",
                        has_referer=False,
                        browser_family=family,
                        is_top5_browser=False,
                        client_ip=bot_ip,
                        user_agent=ua.header_value(),
                        new_tls_session=(f == 0),
                    )
                )
