"""The vectorized traffic model.

For each simulated day this model produces, per site:

* expected intentional pageloads (globally and split by country/platform),
* browsing-session intensities per country (for unique-visitor occupancy
  math), and
* daily multiplicative jitter,

all as numpy arrays.  Every vantage point — the CDN metric engine, the DNS
resolvers, the browser panels — consumes the *same* day tensors, so their
disagreements are entirely due to their own observation mechanisms, which is
the property the paper's evaluation leans on.

Unique-visitor counts use the standard occupancy approximation: if a country
has ``N`` clients and the site receives ``V`` visit-sessions from it, the
expected number of distinct clients is ``N * (1 - exp(-V / N))``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro import obs
from repro.traffic.calendar import TrafficCalendar
from repro.worldgen.world import World

__all__ = ["TrafficModel", "DayTraffic"]


class DayTraffic:
    """Per-day traffic tensors for all sites.

    Attributes:
        pageloads: expected intentional pageloads per site.
        country_pageloads: ``[n_sites, n_countries]`` expected pageloads.
        sessions: ``[n_sites, n_countries]`` expected visit-sessions.
        unique_visitors: ``[n_sites, n_countries]`` expected distinct
          clients, from the occupancy approximation.
        jitter: per-site day-level multiplicative noise already applied to
          the tensors above.
    """

    __slots__ = ("pageloads", "country_pageloads", "sessions", "unique_visitors", "jitter")

    def __init__(
        self,
        pageloads: np.ndarray,
        country_pageloads: np.ndarray,
        sessions: np.ndarray,
        unique_visitors: np.ndarray,
        jitter: np.ndarray,
    ) -> None:
        self.pageloads = pageloads
        self.country_pageloads = country_pageloads
        self.sessions = sessions
        self.unique_visitors = unique_visitors
        self.jitter = jitter

    def total_unique_visitors(self) -> np.ndarray:
        """Expected distinct clients per site, summed over countries.

        Clients are country-local, so cross-country double counting is not
        a concern.
        """
        return self.unique_visitors.sum(axis=1)

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The day tensors as a flat array mapping (for the artifact store)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "DayTraffic":
        """Rebuild day tensors from :meth:`to_arrays` output."""
        return cls(**{slot: np.asarray(arrays[slot]) for slot in cls.__slots__})


class TrafficModel:
    """Vectorized per-day traffic for a world.

    Args:
        world: the world to simulate.

    Day tensors are cached (the month fits comfortably in memory at bench
    scale) and deterministic per (world seed, day).
    """

    def __init__(self, world: World) -> None:
        self._world = world
        self._calendar = TrafficCalendar(world.config)
        static_rng = world.rng("traffic")
        n = world.n_sites
        #: Pageloads per visit-session; heavy-tailed across sites.
        self.pages_per_visit = np.clip(
            np.exp(static_rng.normal(np.log(2.3), 0.55, size=n)), 1.0, 25.0
        )
        #: Per-site multiplier on unique-(IP, UA) counts over unique-IP
        #: counts (several devices/browsers can share a NAT'd address).
        self.ip_ua_spread = static_rng.uniform(1.01, 1.09, size=n)
        self._day_cache: Dict[int, DayTraffic] = {}
        #: Optional artifact-store hooks (see :mod:`repro.store.serialize`):
        #: consulted before computing a day, and after computing one.
        self.day_loader: Optional[Callable[[int], Optional[DayTraffic]]] = None
        self.day_saver: Optional[Callable[[int, DayTraffic], None]] = None

    @property
    def world(self) -> World:
        """The simulated world."""
        return self._world

    @property
    def calendar(self) -> TrafficCalendar:
        """The shared temporal modulation."""
        return self._calendar

    def day(self, day: int) -> DayTraffic:
        """Traffic tensors for simulated ``day`` (cached).

        Raises:
            ValueError: if ``day`` is outside the configured window.
        """
        if not 0 <= day < self._world.config.n_days:
            raise ValueError(f"day {day} outside configured window")
        cached = self._day_cache.get(day)
        if cached is None and self.day_loader is not None:
            cached = self.day_loader(day)
            if cached is not None:
                self._day_cache[day] = cached
        if cached is None:
            with obs.span("traffic/compute-day"):
                cached = self._compute_day(day)
                obs.count("traffic.rows", self._world.n_sites)
            self._day_cache[day] = cached
            if self.day_saver is not None:
                self.day_saver(day, cached)
        return cached

    def _compute_day(self, day: int) -> DayTraffic:
        world = self._world
        sites = world.sites
        config = world.config
        cal = self._calendar
        rng = world.day_rng("traffic", day)

        # Per-site day modulation from platform mix x country activity.
        desktop_f = cal.desktop_country_factors(day)
        mobile_f = cal.mobile_country_factors(day)
        desktop_mod = sites.country_share @ desktop_f
        mobile_mod = sites.country_share @ mobile_f
        day_mod = (
            (1.0 - sites.mobile_share) * desktop_mod + sites.mobile_share * mobile_mod
        )

        # Work-hours shaping: office-audience sites dip on weekends,
        # leisure sites rise (Figure 3's weekly periodicity).
        centered = sites.work_affinity - 0.5
        if cal.is_weekend(day):
            day_mod = day_mod * (1.0 - 1.1 * centered)
        else:
            day_mod = day_mod * (1.0 + 0.4 * centered)

        event_mod = cal.category_event_factors(day)[sites.category]
        jitter = rng.lognormal(0.0, config.daily_noise_sigma, size=world.n_sites)

        weights = sites.weight * day_mod * event_mod * jitter
        pageloads = config.daily_pageloads * weights / weights.sum()

        country_pageloads = pageloads[:, None] * sites.country_share
        sessions = country_pageloads / self.pages_per_visit[:, None]

        country_clients = world.clients.country_clients()[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(country_clients > 0, sessions / country_clients, 0.0)
        unique_visitors = country_clients * -np.expm1(-rates)

        return DayTraffic(
            pageloads=pageloads,
            country_pageloads=country_pageloads,
            sessions=sessions,
            unique_visitors=unique_visitors,
            jitter=jitter,
        )

    def platform_country_pageloads(self, day: int, platform: int) -> np.ndarray:
        """``[n_sites, n_countries]`` pageloads on one platform.

        Args:
            day: simulated day.
            platform: 0 for desktop (Windows), 1 for mobile (Android), per
              :data:`repro.worldgen.clients.PLATFORMS`.
        """
        tensors = self.day(day)
        sites = self._world.sites
        share = sites.mobile_share if platform == 1 else 1.0 - sites.mobile_share
        return tensors.country_pageloads * share[:, None]

    def monthly_pageloads(self) -> np.ndarray:
        """Expected pageloads per site summed over the whole window."""
        total = np.zeros(self._world.n_sites)
        for day in range(self._world.config.n_days):
            total += self.day(day).pageloads
        return total
