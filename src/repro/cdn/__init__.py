"""The Cloudflare vantage point.

Cloudflare acts as authoritative DNS and reverse proxy for its customers, so
its server-side logs are ground truth *for the sites it serves* — about a
quarter of top sites (Table 1), and none of the global top ten.  This
package implements:

* :mod:`repro.cdn.adoption` — which sites are served, and the virtual
  servers the cf-ray probe hits;
* :mod:`repro.cdn.filters` — the 7 filters x 3 aggregations of Section 3.1;
* :mod:`repro.cdn.metrics` — the metric engine producing per-day popularity
  rankings under each filter-aggregation combination;
* :mod:`repro.cdn.logstore` — a record-level log store for the event-path
  pipeline, aggregating raw HTTP requests into the same metrics.
"""

from repro.cdn.adoption import build_virtual_network, cloudflare_site_indices
from repro.cdn.filters import (
    AGGREGATIONS,
    ALL_COMBINATIONS,
    FINAL_SEVEN,
    FILTERS,
    Aggregation,
    Filter,
    combo_key,
    describe_combo,
    split_combo,
)
from repro.cdn.logstore import LogStore
from repro.cdn.metrics import CdnMetricEngine

__all__ = [
    "AGGREGATIONS",
    "ALL_COMBINATIONS",
    "Aggregation",
    "CdnMetricEngine",
    "FILTERS",
    "FINAL_SEVEN",
    "Filter",
    "LogStore",
    "build_virtual_network",
    "cloudflare_site_indices",
    "combo_key",
    "describe_combo",
    "split_combo",
]
