"""Record-level server log aggregation.

The vectorized engine (:mod:`repro.cdn.metrics`) computes metric counts
analytically.  This module is its record-level twin: it ingests individual
HTTP request records — as a real log pipeline would — and derives the same
21 filter-aggregation counts by literal counting and deduplication.  The
integration tests run both over the same small world and require agreement,
which is what justifies trusting the fast path at bench scale.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cdn.filters import ALL_COMBINATIONS, split_combo

__all__ = ["LogRecord", "LogStore"]


@dataclass(frozen=True)
class LogRecord:
    """One server-side request log line.

    Attributes:
        day: simulated day index.
        site: owning site index (the reverse proxy knows its customer).
        host: requested hostname.
        path: request path.
        status: response status code.
        content_type: response media type (without parameters).
        has_referer: whether the request carried a non-null Referer.
        browser_family: user-agent family name.
        is_top5_browser: whether the family is a top-five browser.
        client_ip: requesting client address.
        user_agent: full User-Agent string.
        new_tls_session: whether this request began a new TLS session
          (i.e. a handshake was performed).
    """

    day: int
    site: int
    host: str
    path: str
    status: int
    content_type: str
    has_referer: bool
    browser_family: str
    is_top5_browser: bool
    client_ip: str
    user_agent: str
    new_tls_session: bool


def _passes(record: LogRecord, filter_key: str) -> bool:
    if filter_key == "all":
        return True
    if filter_key == "html":
        return record.content_type == "text/html"
    if filter_key == "200":
        return record.status == 200
    if filter_key == "referer":
        return record.has_referer
    if filter_key == "browsers":
        return record.is_top5_browser
    if filter_key == "tls":
        return record.new_tls_session
    if filter_key == "root":
        return record.path == "/"
    raise KeyError(f"unknown filter: {filter_key!r}")


class LogStore:
    """Accumulates request records and aggregates them into metric counts."""

    def __init__(self) -> None:
        self._records: Dict[int, List[LogRecord]] = defaultdict(list)

    def add(self, record: LogRecord) -> None:
        """Ingest one record."""
        self._records[record.day].append(record)

    def extend(self, records: Iterable[LogRecord]) -> None:
        """Ingest many records."""
        for record in records:
            self.add(record)

    def days(self) -> Sequence[int]:
        """Days with at least one record, ascending."""
        return sorted(self._records)

    def record_count(self, day: Optional[int] = None) -> int:
        """Number of stored records (for a day, or in total)."""
        if day is not None:
            return len(self._records.get(day, ()))
        return sum(len(records) for records in self._records.values())

    def day_counts(
        self, day: int, combos: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[int, float]]:
        """Aggregate one day's records into per-site metric counts.

        Args:
            day: simulated day index.
            combos: combination keys to compute (default: all 21).

        Returns:
            ``{combo: {site: count}}``; sites with zero passing records are
            absent.
        """
        wanted = tuple(combos) if combos is not None else ALL_COMBINATIONS
        records = self._records.get(day, ())

        raw: Dict[str, Dict[int, float]] = {key: defaultdict(float) for key in wanted}
        ip_sets: Dict[Tuple[str, int], Set[str]] = defaultdict(set)
        ip_ua_sets: Dict[Tuple[str, int], Set[Tuple[str, str]]] = defaultdict(set)

        filter_keys = {split_combo(key)[0] for key in wanted}
        for record in records:
            for filter_key in filter_keys:
                if not _passes(record, filter_key):
                    continue
                requests_key = f"{filter_key}:requests"
                if requests_key in raw:
                    raw[requests_key][record.site] += 1.0
                if f"{filter_key}:ips" in raw:
                    ip_sets[(filter_key, record.site)].add(record.client_ip)
                if f"{filter_key}:ip_ua" in raw:
                    ip_ua_sets[(filter_key, record.site)].add(
                        (record.client_ip, record.user_agent)
                    )

        for (filter_key, site), ips in ip_sets.items():
            key = f"{filter_key}:ips"
            if key in raw:
                raw[key][site] = float(len(ips))
        for (filter_key, site), pairs in ip_ua_sets.items():
            key = f"{filter_key}:ip_ua"
            if key in raw:
                raw[key][site] = float(len(pairs))

        return {key: dict(values) for key, values in raw.items()}

    def day_count_arrays(
        self, day: int, n_sites: int, combos: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        """Like :meth:`day_counts`, but as dense per-site arrays."""
        sparse = self.day_counts(day, combos=combos)
        out: Dict[str, np.ndarray] = {}
        for key, values in sparse.items():
            dense = np.zeros(n_sites)
            for site, count in values.items():
                if 0 <= site < n_sites:
                    dense[site] = count
            out[key] = dense
        return out

    def ranking(self, day: int, combo: str, n_sites: int) -> np.ndarray:
        """Site indices ranked by a metric, best first, zeros excluded."""
        counts = self.day_count_arrays(day, n_sites, combos=(combo,))[combo]
        nonzero = np.flatnonzero(counts > 0)
        order = np.argsort(-counts[nonzero], kind="stable")
        return nonzero[order]
