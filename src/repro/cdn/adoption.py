"""Cloudflare adoption surface: which sites answer with ``cf-ray``.

The site universe already carries the adoption decision (``cf_served``,
drawn in :mod:`repro.worldgen.sites` from a rank-, country-, and
category-dependent curve).  This module exposes it two ways:

* as raw index arrays for the vectorized pipeline, and
* as a :class:`~repro.netsim.http.VirtualNetwork` of virtual servers, so
  the paper's HEAD-probe methodology (Section 4.3) can be executed over
  simulated HTTP for real, which the integration tests do to check the two
  paths agree exactly.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.netsim.http import VirtualNetwork, VirtualServer
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World

__all__ = ["cloudflare_site_indices", "build_virtual_network", "coverage_of_sites"]

# Cloudflare colos, for flavour in cf-ray suffixes.
_COLOS = ("SFO", "IAD", "FRA", "NRT", "SIN", "GRU", "JNB", "BOM", "LHR", "AMS")


def cloudflare_site_indices(world: World) -> np.ndarray:
    """Indices of Cloudflare-served sites, most popular first."""
    return world.sites.cf_indices()


def coverage_of_sites(world: World, site_indices: np.ndarray) -> float:
    """Fraction of the given sites that Cloudflare serves.

    Args:
        world: the simulated world.
        site_indices: site indices (negative entries — names that resolve
          to no site — count as not served, as a real probe would find).

    Returns:
        Coverage in [0, 1]; 0 for an empty selection.
    """
    if len(site_indices) == 0:
        return 0.0
    valid = site_indices >= 0
    served = np.zeros(len(site_indices), dtype=bool)
    served[valid] = world.sites.cf_served[site_indices[valid]]
    return float(served.mean())


def build_virtual_network(
    world: World,
    site_indices: Optional[Iterable[int]] = None,
) -> VirtualNetwork:
    """Build a virtual HTTP network answering for (a subset of) the world.

    Every FQDN and apex of each included site gets a virtual server;
    servers of Cloudflare-served sites stamp ``cf-ray`` on their responses.

    Args:
        world: the simulated world.
        site_indices: sites to include; None includes all (fine up to a few
          tens of thousands of sites).
    """
    network = VirtualNetwork()
    sites = world.sites
    names = world.names
    include: Optional[set] = None
    if site_indices is not None:
        include = {int(i) for i in site_indices}

    fqdn_rows = names.rows_of_kind(NameKind.FQDN)
    for row in fqdn_rows:
        site = int(names.site[row])
        if site < 0:
            continue  # Infrastructure names host no web servers.
        if include is not None and site not in include:
            continue
        behind_cf = bool(sites.cf_served[site])
        network.register(
            VirtualServer(
                host=names.strings[row],
                behind_cloudflare=behind_cf,
                colo=_COLOS[site % len(_COLOS)],
            )
        )
    # Apex domains answer too (they are FQDNs in their own right; the name
    # table stores them as FQDN rows already, but guard against sites whose
    # apex never got a row).
    for site, domain in enumerate(sites.names):
        if include is not None and site not in include:
            continue
        if domain not in network:
            network.register(
                VirtualServer(
                    host=domain,
                    behind_cloudflare=bool(sites.cf_served[site]),
                    colo=_COLOS[site % len(_COLOS)],
                )
            )
    return network
