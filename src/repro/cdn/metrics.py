"""The Cloudflare metric engine.

Computes, for each simulated day, the observed count of every
filter-aggregation combination for every Cloudflare-served site, and turns
those counts into popularity rankings.  Non-served sites are invisible:
their counts are zero and they never appear in rankings, exactly as in the
paper's vantage point.

Counting model (per site, per day), driven by the shared traffic tensors:

* raw request counts start from intentional pageloads times the site's
  subresource multiplier, plus bot traffic;
* each filter keeps an expected fraction of requests derived from the
  site's ground-truth request-shape parameters;
* unique-IP aggregations apply the filter's *visitor* pass-probability to
  the per-country unique-visitor occupancy estimates, plus a small bot-IP
  population for filters that don't exclude bots;
* measurement noise (lognormal) and counting statistics (Poisson /
  normal-approximated Poisson) are applied last.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cdn.filters import ALL_COMBINATIONS, FINAL_SEVEN, split_combo
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World
from repro.worldgen.zipf import sample_counts

__all__ = ["CdnMetricEngine"]


class CdnMetricEngine:
    """Per-day popularity metrics from the Cloudflare vantage point.

    Args:
        world: the simulated world.
        traffic: a shared traffic model; one is built if not provided
          (sharing matters — all vantage points should see the same days).
        apply_sampling_noise: disable to get exact expectations (useful in
          tests asserting analytic relationships).
    """

    FINAL_SEVEN: Tuple[str, ...] = FINAL_SEVEN
    ALL_COMBINATIONS: Tuple[str, ...] = ALL_COMBINATIONS

    def __init__(
        self,
        world: World,
        traffic: Optional[TrafficModel] = None,
        apply_sampling_noise: bool = True,
    ) -> None:
        self._world = world
        self._traffic = traffic if traffic is not None else TrafficModel(world)
        self._noise = apply_sampling_noise
        self._cf_mask = world.sites.cf_served
        self._cf_sites = world.sites.cf_indices()
        self._day_cache: Dict[int, Dict[str, np.ndarray]] = {}
        #: Optional artifact-store hooks (see :mod:`repro.store.serialize`):
        #: a loader returning all 21 combination arrays for a day, and a
        #: saver invoked after a day is computed.
        self.day_loader: Optional[Callable[[int], Optional[Dict[str, np.ndarray]]]] = None
        self.day_saver: Optional[Callable[[int, Dict[str, np.ndarray]], None]] = None

    @property
    def world(self) -> World:
        """The simulated world."""
        return self._world

    @property
    def traffic(self) -> TrafficModel:
        """The shared traffic model."""
        return self._traffic

    @property
    def cf_sites(self) -> np.ndarray:
        """Indices of Cloudflare-served sites, most popular first."""
        return self._cf_sites

    @property
    def n_cf_sites(self) -> int:
        """Number of Cloudflare-served sites."""
        return len(self._cf_sites)

    # ------------------------------------------------------------------
    # Expected values (before noise).

    def _expected_requests(self, day: int) -> Dict[str, np.ndarray]:
        """Expected request counts per filter, all sites."""
        sites = self._world.sites
        tensors = self._traffic.day(day)
        pl = tensors.pageloads

        human_requests = pl * sites.subres_mult
        bot_requests = human_requests * sites.bot_share / (1.0 - sites.bot_share)
        all_requests = human_requests + bot_requests

        return {
            "all": all_requests,
            "html": all_requests * sites.html_frac,
            "200": all_requests * sites.success_rate,
            "referer": human_requests * (1.0 - sites.referer_null_frac),
            "browsers": all_requests * sites.browser5_frac,
            # Bots inflate handshakes and root fetches roughly per *visit*
            # (crawl scheduling), not per subresource, so the bot terms
            # scale with pageloads rather than with request counts.
            "tls": pl * sites.tls_per_pageload * (1.0 + 0.6 * sites.bot_share),
            "root": pl * sites.root_frac * (1.0 + 0.3 * sites.bot_share),
        }

    def _visitor_pass_probability(self) -> Dict[str, np.ndarray]:
        """Probability a human visitor produces >= 1 request passing each
        filter (drives unique-IP aggregations)."""
        sites = self._world.sites
        n = self._world.n_sites
        pages = self._traffic.pages_per_visit
        root_hit = 1.0 - np.power(1.0 - sites.root_frac, pages)
        browser_human = np.clip(sites.browser5_frac / (1.0 - sites.bot_share), 0.0, 1.0)
        return {
            "all": np.ones(n),
            "html": np.full(n, 0.995),
            "200": np.minimum(1.0, sites.success_rate + 0.04),
            "referer": 1.0 - np.power(sites.referer_null_frac, pages),
            "browsers": browser_human,
            "tls": np.ones(n),
            "root": root_hit,
        }

    def _bot_ip_counts(self, bot_requests: np.ndarray) -> np.ndarray:
        """Distinct bot IPs hitting a site in a day (crawlers reuse IPs)."""
        return np.minimum(np.sqrt(bot_requests) * 0.8, 5000.0)

    # Filters whose definition excludes bot traffic entirely.
    _BOTLESS_FILTERS = frozenset({"referer", "browsers"})

    def expected_day_counts(self, day: int) -> Dict[str, np.ndarray]:
        """Noise-free expected counts for all 21 combinations, all sites.

        Non-Cloudflare sites are *not* masked here; this is the analytic
        layer that tests use to check metric relationships (e.g. root page
        loads never exceed total requests).
        """
        sites = self._world.sites
        tensors = self._traffic.day(day)
        requests = self._expected_requests(day)
        pass_prob = self._visitor_pass_probability()
        visitors = tensors.total_unique_visitors()
        bot_requests = requests["all"] - requests["all"] / (
            1.0 + sites.bot_share / (1.0 - sites.bot_share)
        )
        bot_ips = self._bot_ip_counts(bot_requests)

        out: Dict[str, np.ndarray] = {}
        for key in ALL_COMBINATIONS:
            filter_key, agg_key = split_combo(key)
            if agg_key == "requests":
                out[key] = requests[filter_key]
            else:
                ips = visitors * pass_prob[filter_key]
                if filter_key not in self._BOTLESS_FILTERS:
                    ips = ips + bot_ips
                if agg_key == "ip_ua":
                    ips = ips * self._traffic.ip_ua_spread
                out[key] = ips
        return out

    # ------------------------------------------------------------------
    # Observed (noisy, Cloudflare-masked) counts.

    def day_counts(self, day: int, combos: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
        """Observed counts for ``day`` (cached), masked to Cloudflare sites.

        Args:
            day: simulated day index.
            combos: combination keys to return; defaults to the final seven.
              All 21 are computed and cached on first access.

        Returns:
            Mapping from combination key to a full-length array of counts,
            zero outside Cloudflare-served sites.
        """
        wanted = tuple(combos) if combos is not None else FINAL_SEVEN
        cached = self._day_cache.get(day)
        if cached is None and self.day_loader is not None:
            cached = self.day_loader(day)
            if cached is not None:
                self._day_cache[day] = cached
        if cached is None:
            with obs.span("cdn/compute-day"):
                cached = self._compute_observed(day)
                obs.count("cdn.rows", self._world.n_sites)
                obs.count(
                    "cdn.requests_simulated", float(cached["all:requests"].sum())
                )
            self._day_cache[day] = cached
            if self.day_saver is not None:
                self.day_saver(day, cached)
        return {key: cached[key] for key in wanted}

    def _compute_observed(self, day: int) -> Dict[str, np.ndarray]:
        expected = self.expected_day_counts(day)
        rng = self._world.day_rng("cdn", day)
        sigma = self._world.config.metric_noise_sigma
        mask = self._cf_mask.astype(np.float64)
        observed: Dict[str, np.ndarray] = {}
        for key in ALL_COMBINATIONS:
            values = expected[key] * mask
            if self._noise:
                noise = rng.lognormal(0.0, sigma, size=len(values))
                values = sample_counts(rng, values * noise)
            observed[key] = values
        return observed

    # ------------------------------------------------------------------
    # Rankings.

    def ranking(self, day: int, combo: str) -> np.ndarray:
        """Cloudflare-served site indices ranked by the metric, best first.

        Ties break toward the truly more popular site (lower index), the
        tie-break a real log pipeline's stable sort would produce when keys
        collide.
        """
        counts = self.day_counts(day, combos=(combo,))[combo]
        cf_counts = counts[self._cf_sites]
        order = np.argsort(-cf_counts, kind="stable")
        return self._cf_sites[order]

    def top(self, day: int, combo: str, k: int) -> np.ndarray:
        """The top-``k`` Cloudflare sites under a metric on ``day``."""
        return self.ranking(day, combo)[:k]

    def month_average_counts(self, combos: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
        """Counts averaged over every configured day (masked like
        :meth:`day_counts`)."""
        wanted = tuple(combos) if combos is not None else FINAL_SEVEN
        totals = {key: np.zeros(self._world.n_sites) for key in wanted}
        n_days = self._world.config.n_days
        for day in range(n_days):
            day_values = self.day_counts(day, combos=wanted)
            for key in wanted:
                totals[key] += day_values[key]
        return {key: value / n_days for key, value in totals.items()}

    def monthly_ranking(self, combo: str) -> np.ndarray:
        """Cloudflare sites ranked by month-averaged counts."""
        counts = self.month_average_counts(combos=(combo,))[combo]
        cf_counts = counts[self._cf_sites]
        order = np.argsort(-cf_counts, kind="stable")
        return self._cf_sites[order]

    def drop_cache(self, days: Optional[Iterable[int]] = None) -> None:
        """Evict cached day tensors (memory control for long sweeps)."""
        if days is None:
            self._day_cache.clear()
        else:
            for day in days:
                self._day_cache.pop(day, None)
