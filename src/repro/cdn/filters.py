"""The server-side filters and aggregations of Section 3.1.

A *filter* selects a portion of the request stream; an *aggregation* counts
what remains.  The paper considers seven filters and three aggregations (21
combinations, Figure 8), then selects seven final combinations that capture
the most diversity (Figure 1):

1. all HTTP(S) requests,
2. HTTP(S) requests from the top five browsers,
3. HTTP(S) requests for the root page,
4. TLS handshakes,
5. unique client IPs per day,
6. unique client IPs requesting the root page,
7. unique client IPs from the top five browsers.

Combination keys are ``"<filter>:<aggregation>"`` strings, e.g.
``"root:ips"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Filter",
    "Aggregation",
    "FILTERS",
    "AGGREGATIONS",
    "ALL_COMBINATIONS",
    "FINAL_SEVEN",
    "combo_key",
    "split_combo",
    "describe_combo",
]


@dataclass(frozen=True)
class Filter:
    """A request-stream filter.

    Attributes:
        key: short identifier used in combination keys.
        description: the paper's wording for the filter.
    """

    key: str
    description: str


@dataclass(frozen=True)
class Aggregation:
    """A way of counting filtered request logs."""

    key: str
    description: str


FILTERS: Tuple[Filter, ...] = (
    Filter("all", "All HTTP(S) requests"),
    Filter("html", "Requests for text/html resources"),
    Filter("200", "Requests with response code 200"),
    Filter("referer", "Requests with a non-null Referer header"),
    Filter("browsers", "Requests from the top 5 most popular browsers"),
    Filter("tls", "TLS handshakes"),
    Filter("root", "Root page loads (GET /)"),
)

AGGREGATIONS: Tuple[Aggregation, ...] = (
    Aggregation("requests", "Raw count"),
    Aggregation("ips", "Unique client IPs (per day)"),
    Aggregation("ip_ua", "Unique (client IP, User-Agent) tuples"),
)

_FILTER_KEYS = {f.key: f for f in FILTERS}
_AGG_KEYS = {a.key: a for a in AGGREGATIONS}


def combo_key(filter_key: str, agg_key: str) -> str:
    """Build a combination key, validating both parts.

    Raises:
        KeyError: for unknown filter or aggregation keys.
    """
    if filter_key not in _FILTER_KEYS:
        raise KeyError(f"unknown filter: {filter_key!r}")
    if agg_key not in _AGG_KEYS:
        raise KeyError(f"unknown aggregation: {agg_key!r}")
    return f"{filter_key}:{agg_key}"


def split_combo(key: str) -> Tuple[str, str]:
    """Split a combination key into (filter, aggregation), validating it."""
    filter_key, sep, agg_key = key.partition(":")
    if not sep:
        raise KeyError(f"malformed combination key: {key!r}")
    combo_key(filter_key, agg_key)  # Validates both halves.
    return filter_key, agg_key


#: All 21 filter-aggregation combinations of Figure 8, filters major.
ALL_COMBINATIONS: Tuple[str, ...] = tuple(
    combo_key(f.key, a.key) for f in FILTERS for a in AGGREGATIONS
)

#: The paper's seven final metrics (Section 3.3), in Figure 1 order.
FINAL_SEVEN: Tuple[str, ...] = (
    "all:requests",
    "tls:requests",
    "root:requests",
    "browsers:requests",
    "all:ips",
    "root:ips",
    "browsers:ips",
)

_DESCRIPTIONS: Dict[str, str] = {
    "all:requests": "All HTTP Requests",
    "tls:requests": "TLS Handshakes",
    "root:requests": "HTTP Requests for Root Page",
    "browsers:requests": "HTTP Requests from Top 5 Browsers",
    "all:ips": "Unique IPs",
    "root:ips": "Unique IPs Accessing Root Page",
    "browsers:ips": "Unique IPs from Top 5 Browsers",
}


def describe_combo(key: str) -> str:
    """A human-readable name for a combination key (Figure 1 labels for the
    final seven; synthesized labels otherwise)."""
    label = _DESCRIPTIONS.get(key)
    if label is not None:
        return label
    filter_key, agg_key = split_combo(key)
    return f"{_FILTER_KEYS[filter_key].description} / {_AGG_KEYS[agg_key].description}"
