"""HTTP message types, virtual servers, and a simulated network.

This is an in-memory stand-in for the slice of HTTP semantics the paper's
methodology touches: methods, status codes, case-insensitive headers, and a
reverse-proxy header (``cf-ray``).  There are no sockets; a
:class:`VirtualNetwork` routes a request to the :class:`VirtualServer`
registered for its hostname, modelling DNS + TCP + TLS as a single lookup
with configurable failure modes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "HeaderMap",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "VirtualNetwork",
    "VirtualServer",
    "reason_phrase",
]

_REASON_PHRASES: Dict[int, str] = {
    200: "OK",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    521: "Web Server Is Down",  # Cloudflare-specific.
    522: "Connection Timed Out",  # Cloudflare-specific.
}

METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH")


def reason_phrase(status: int) -> str:
    """The reason phrase for a status code (``"Unknown"`` if unregistered)."""
    return _REASON_PHRASES.get(status, "Unknown")


class HttpError(Exception):
    """A transport-level failure: the host does not resolve or respond."""


class HeaderMap:
    """A case-insensitive, order-preserving HTTP header map.

    Field names are compared case-insensitively per RFC 9110; the original
    casing of the first insertion is preserved for serialization.
    """

    def __init__(self, items: Optional[Mapping[str, str]] = None) -> None:
        self._entries: Dict[str, Tuple[str, str]] = {}
        if items:
            for name, value in items.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set a header, replacing any existing value."""
        self._entries[name.lower()] = (name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Get a header value by case-insensitive name."""
        entry = self._entries.get(name.lower())
        return entry[1] if entry is not None else default

    def remove(self, name: str) -> None:
        """Remove a header if present."""
        self._entries.pop(name.lower(), None)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate ``(original_name, value)`` pairs in insertion order."""
        return iter(self._entries.values())

    def copy(self) -> "HeaderMap":
        """A shallow copy of the map."""
        clone = HeaderMap()
        clone._entries = dict(self._entries)
        return clone

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"HeaderMap({{{inner}}})"


@dataclass
class HttpRequest:
    """An HTTP request message.

    Attributes:
        method: request method (``GET``, ``HEAD``...).
        host: target hostname.
        path: request target path (``/`` for root page loads).
        scheme: ``http`` or ``https``.
        headers: request headers (User-Agent, Referer...).
        client_ip: the requesting client's IP, as the server would log it.
    """

    method: str
    host: str
    path: str = "/"
    scheme: str = "https"
    headers: HeaderMap = field(default_factory=HeaderMap)
    client_ip: str = "198.51.100.1"

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unsupported HTTP method: {self.method!r}")
        if not self.path.startswith("/"):
            raise ValueError(f"request path must be absolute: {self.path!r}")

    @property
    def is_root_page(self) -> bool:
        """Whether this is a root page load (``GET /``), the paper's filter 3."""
        return self.method == "GET" and self.path == "/"

    @property
    def url(self) -> str:
        """The absolute URL of the request target."""
        return f"{self.scheme}://{self.host}{self.path}"


@dataclass
class HttpResponse:
    """An HTTP response message.

    Attributes:
        status: numeric status code.
        headers: response headers (Content-Type, cf-ray...).
        body: response body (empty for HEAD).
    """

    status: int
    headers: HeaderMap = field(default_factory=HeaderMap)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        """True for 2xx responses (the paper's 200-only filter)."""
        return 200 <= self.status < 300

    @property
    def content_type(self) -> Optional[str]:
        """The media type without parameters, lowercased (or None)."""
        raw = self.headers.get("Content-Type")
        if raw is None:
            return None
        return raw.split(";", 1)[0].strip().lower()

    @property
    def served_by_cloudflare(self) -> bool:
        """Whether the response carries Cloudflare's ``cf-ray`` header."""
        return "cf-ray" in self.headers


Handler = Callable[[HttpRequest], HttpResponse]

_RAY_COUNTER = itertools.count(1)


def _next_ray_id(colo: str) -> str:
    """Generate a plausible cf-ray value: 16 hex chars plus a colo code."""
    return f"{next(_RAY_COUNTER):016x}-{colo}"


@dataclass
class VirtualServer:
    """A simulated origin or reverse proxy for one hostname.

    Args:
        host: the hostname this server answers for.
        behind_cloudflare: if true, every response is stamped with a
          ``cf-ray`` header and a ``Server: cloudflare`` header, exactly
          what the paper's HEAD probe keys on.
        status: default status code for successful routing.
        content_type: Content-Type returned for page requests.
        colo: Cloudflare colo code used in the cf-ray suffix.
        handler: optional custom handler overriding the default behaviour.
    """

    host: str
    behind_cloudflare: bool = False
    status: int = 200
    content_type: str = "text/html"
    colo: str = "SFO"
    handler: Optional[Handler] = None

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Produce the response for ``request``."""
        if self.handler is not None:
            response = self.handler(request)
        else:
            response = self._default_response(request)
        if self.behind_cloudflare:
            response.headers.set("cf-ray", _next_ray_id(self.colo))
            response.headers.set("Server", "cloudflare")
        return response

    def _default_response(self, request: HttpRequest) -> HttpResponse:
        headers = HeaderMap({"Content-Type": self.content_type})
        if request.method == "HEAD":
            return HttpResponse(status=self.status, headers=headers)
        body = f"<html><body>{self.host}{request.path}</body></html>".encode()
        return HttpResponse(status=self.status, headers=headers, body=body)


class VirtualNetwork:
    """Routes requests to registered virtual servers by hostname.

    Unregistered hostnames raise :class:`HttpError`, modelling NXDOMAIN or
    connection failure — the probe treats those sites as not
    Cloudflare-served.
    """

    def __init__(self) -> None:
        self._servers: Dict[str, VirtualServer] = {}
        self.request_log: List[HttpRequest] = []
        self.log_requests = False

    def register(self, server: VirtualServer) -> None:
        """Attach a server; later registrations replace earlier ones."""
        self._servers[server.host.lower()] = server

    def deregister(self, host: str) -> None:
        """Remove a server if present."""
        self._servers.pop(host.lower(), None)

    def __contains__(self, host: str) -> bool:
        return host.lower() in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def route(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` and return the server's response.

        Raises:
            HttpError: when no server is registered for the host.
        """
        if self.log_requests:
            self.request_log.append(request)
        server = self._servers.get(request.host.lower())
        if server is None:
            raise HttpError(f"no route to host: {request.host}")
        return server.handle(request)


class HttpClient:
    """A small HTTP client over a :class:`VirtualNetwork`.

    Follows up to ``max_redirects`` same-host redirects, which some
    simulated sites use to bounce ``/`` to a localized landing page.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        user_agent: str = "repro-probe/1.0",
        max_redirects: int = 5,
    ) -> None:
        self._network = network
        self._user_agent = user_agent
        self._max_redirects = max_redirects

    def request(
        self,
        method: str,
        host: str,
        path: str = "/",
        scheme: str = "https",
        headers: Optional[Mapping[str, str]] = None,
    ) -> HttpResponse:
        """Issue a request, following redirects.

        Raises:
            HttpError: on routing failure or redirect loops.
        """
        header_map = HeaderMap({"User-Agent": self._user_agent, "Host": host})
        if headers:
            for name, value in headers.items():
                header_map.set(name, value)
        current_path = path
        for _ in range(self._max_redirects + 1):
            request = HttpRequest(
                method=method,
                host=host,
                path=current_path,
                scheme=scheme,
                headers=header_map.copy(),
            )
            response = self._network.route(request)
            if response.status in (301, 302):
                location = response.headers.get("Location")
                if location is None or not location.startswith("/"):
                    return response  # Cross-host redirects end the probe.
                current_path = location
                continue
            return response
        raise HttpError(f"redirect loop at {host}")

    def head(self, host: str, path: str = "/") -> HttpResponse:
        """Issue a ``HEAD`` request (the paper's probe method)."""
        return self.request("HEAD", host, path)

    def get(self, host: str, path: str = "/") -> HttpResponse:
        """Issue a ``GET`` request."""
        return self.request("GET", host, path)
