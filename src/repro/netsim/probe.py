"""The Cloudflare detection probe (Section 4.3).

To filter top lists down to Cloudflare-powered sites, the paper performs an
HTTP ``HEAD`` request against each website and keeps those whose response
includes the ``cf_ray`` header that Cloudflare stamps on everything it
proxies.  :class:`CloudflareProbe` runs that methodology against a
:class:`~repro.netsim.http.VirtualNetwork`, with per-host memoization so a
month of daily evaluations only probes each host once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.netsim.http import HttpClient, HttpError, VirtualNetwork

__all__ = ["CloudflareProbe", "ProbeResult"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of probing a single host.

    Attributes:
        host: the probed hostname.
        reachable: whether any HTTP response came back.
        status: the response status (None when unreachable).
        cloudflare: whether the response carried a ``cf-ray`` header.
    """

    host: str
    reachable: bool
    status: Optional[int]
    cloudflare: bool


class CloudflareProbe:
    """Probes hostnames for the ``cf-ray`` Cloudflare marker header.

    Args:
        network: the virtual network to probe over.
        user_agent: User-Agent to present (kept constant, as a real
          measurement crawler would).
    """

    def __init__(self, network: VirtualNetwork, user_agent: str = "repro-probe/1.0") -> None:
        self._client = HttpClient(network, user_agent=user_agent)
        self._cache: Dict[str, ProbeResult] = {}

    def probe(self, host: str) -> ProbeResult:
        """Probe one hostname (memoized)."""
        host = host.lower()
        cached = self._cache.get(host)
        if cached is not None:
            return cached
        try:
            response = self._client.head(host)
        except HttpError:
            result = ProbeResult(host=host, reachable=False, status=None, cloudflare=False)
        else:
            result = ProbeResult(
                host=host,
                reachable=True,
                status=response.status,
                cloudflare=response.served_by_cloudflare,
            )
        self._cache[host] = result
        return result

    def probe_many(self, hosts: Iterable[str]) -> List[ProbeResult]:
        """Probe a collection of hostnames, preserving input order."""
        return [self.probe(host) for host in hosts]

    def cloudflare_hosts(self, hosts: Iterable[str]) -> List[str]:
        """The subset of ``hosts`` that Cloudflare serves, in input order."""
        return [result.host for result in self.probe_many(hosts) if result.cloudflare]

    @property
    def probes_issued(self) -> int:
        """Number of distinct hosts probed so far."""
        return len(self._cache)
