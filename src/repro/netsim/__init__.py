"""A minimal simulated HTTP substrate.

The paper detects Cloudflare-served sites by issuing an HTTP ``HEAD`` request
to each candidate website and checking for the ``cf-ray`` response header
that Cloudflare's reverse proxy stamps on everything it serves (Section 4.3).
This package provides just enough of an HTTP stack to run that methodology
against the synthetic world: header maps, request/response messages, virtual
servers, a virtual network, and a client.

The event-level traffic simulator (:mod:`repro.traffic.eventsim`) also emits
its request logs as :class:`~repro.netsim.http.HttpRequest` /
:class:`~repro.netsim.http.HttpResponse` pairs so that the Cloudflare metric
engine consumes the same record shape the real system would.
"""

from repro.netsim.http import (
    HeaderMap,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    VirtualNetwork,
    VirtualServer,
    reason_phrase,
)
from repro.netsim.probe import CloudflareProbe, ProbeResult

__all__ = [
    "CloudflareProbe",
    "HeaderMap",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "ProbeResult",
    "VirtualNetwork",
    "VirtualServer",
    "reason_phrase",
]
