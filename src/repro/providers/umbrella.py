"""The Cisco Umbrella 1 Million simulator.

Umbrella ranks the most *queried DNS names* — not websites — by the number
of unique client IPs looking each name up on Cisco's resolvers, relative to
total query volume.  Mechanism details that matter for the paper's findings
and that this simulator reproduces:

* **FQDN granularity**: ``www.example.com``, ``api.example.com`` and
  ``example.com`` are separate entries; bare TLDs (``com`` is #1) and
  OS/CDN infrastructure names crowd the head (Table 2's 71-78% PSL
  deviation).
* **Enterprise, US-centric client base**: Umbrella is sold to businesses;
  weekday traffic dominates (Figure 3's weekly periodicity) and category
  blocking hides adult/gambling/abuse domains (Table 3).
* **DNS caching**: a client's repeat visits within a TTL produce no
  repeat queries, so query counts compress real popularity differences —
  the paper's explanation for Umbrella's good set coverage but poor rank
  accuracy.
* **Alphabetical tie-breaking**: equal scores are ordered
  lexicographically, producing the long alphabetized runs prior work
  observed.
"""

from __future__ import annotations

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.calendar import TrafficCalendar
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World
from repro.worldgen.zipf import sample_counts

__all__ = ["UmbrellaProvider"]

#: Fraction of Umbrella's client base behind enterprise policy.
_ENTERPRISE_FRACTION = 0.8

# A site's repeat lookups within an org are answered from the shared
# forwarder cache, so Umbrella effectively counts *organizations*, not
# devices — the head of the distribution saturates (every org queries
# google.com every day) and rank information above the saturation point is
# destroyed.  This models "caching, TTLs, and other DNS complexities
# prevent capturing fine grained popularity" (Section 5.2); the org size
# lives in WorldConfig.umbrella_org_size so the ablation bench can sweep it.


class UmbrellaProvider(TopListProvider):
    """DNS unique-client ranking over FQDNs."""

    name = "umbrella"
    granularity = Granularity.FQDN

    def __init__(self, world: World, traffic: TrafficModel) -> None:
        super().__init__(world, traffic)
        self._calendar = TrafficCalendar(world.config)
        names = world.names
        self._fqdn_rows = names.rows_of_kind(NameKind.FQDN)
        self._fqdn_sites = names.site[self._fqdn_rows]
        self._fqdn_share = names.share[self._fqdn_rows]
        self._infra_weight = names.dns_weight[self._fqdn_rows]
        # Umbrella's per-country client base.
        self._clients_by_country = (
            world.config.umbrella_clients * world.clients.umbrella_share
        )
        # Enterprise browsing has its own persistent site mix (SaaS tools,
        # B2B services) beyond what category blocking captures.
        self._taste = self._panel_composition_bias(0.4, common=0.5)
        # TTL-policy heterogeneity: a site's DNS record TTL decides how
        # many resolver queries a visit generates, so query counts
        # conflate popularity with TTL policy.  The factor is bounded
        # (x1/5..x5), which reorders neighbours aggressively — wrecking
        # rank accuracy — while rarely jumping the decade-wide set
        # boundaries, the paper's good-coverage/bad-ranks signature.
        ttl_rng = world.day_rng(self.name, 99_993)
        self._ttl_factor = np.exp(
            ttl_rng.uniform(-np.log(5.0), np.log(5.0), world.n_sites)
        )

    def _site_query_sessions(self, day: int) -> np.ndarray:
        """Expected per-site, per-country visit sessions originating from
        Umbrella's client base (``[n_sites, n_countries]``), before policy
        and caching effects."""
        world = self._world
        tensors = self._traffic.day(day)
        country_clients = world.clients.country_clients()
        with np.errstate(divide="ignore", invalid="ignore"):
            base_ratio = np.where(
                country_clients > 0, self._clients_by_country / country_clients, 0.0
            )
        return tensors.sessions * base_ratio[None, :] * self._ttl_factor[:, None]

    def _unique_clients_per_fqdn(self, day: int) -> np.ndarray:
        """Expected unique client IPs querying each FQDN row on ``day``."""
        sites = self._world.sites
        sessions = self._site_query_sessions(day)  # [n_sites, n_countries]
        clients = self._clients_by_country[None, :]

        # Per-FQDN sessions: a visit to the site queries the FQDNs its
        # pages touch; service FQDNs are queried proportionally to share.
        fqdn_sessions = np.zeros((len(self._fqdn_rows), sessions.shape[1]))
        owned = self._fqdn_sites >= 0
        fqdn_sessions[owned] = (
            sessions[self._fqdn_sites[owned]] * self._fqdn_share[owned, None]
        )

        # Per-tier activity.  The enterprise tier carries the panel's
        # taste bias and category blocking and browses on the workweek;
        # the (small) home tier is an unbiased sample of the population.
        # On weekends the enterprise tier collapses, so the observed mix
        # shifts toward the accurate home view — Umbrella's weekly
        # periodicity and weekend accuracy gain in Figure 3.
        block = np.zeros(len(self._fqdn_rows))
        taste = np.ones(len(self._fqdn_rows))
        block[owned] = sites.enterprise_block[self._fqdn_sites[owned]]
        taste[owned] = self._taste[self._fqdn_sites[owned]]
        ent_factor = (
            self._calendar.enterprise_desktop_factor(day) * (1.0 - block) * taste
        )
        home_factor = self._calendar.home_desktop_factor(day)

        # Caching suppression, two tiers.  Enterprise devices sit behind
        # shared forwarder caches: Umbrella sees one client per *org* per
        # day per name, and an org queries a name if any member does
        # (org-level occupancy — saturates quickly, destroying rank
        # information at the head: the paper's "caching, TTLs, and other
        # DNS complexities" argument).  Home clients count individually.
        ent = _ENTERPRISE_FRACTION
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(clients > 0, fqdn_sessions / clients, 0.0)
        org_size = max(1.0, self._world.config.umbrella_org_size)
        orgs = clients * ent / org_size
        org_unique = orgs * -np.expm1(-rate * org_size * ent_factor[:, None])
        home_unique = clients * (1.0 - ent) * -np.expm1(-rate * home_factor)
        unique = (org_unique + home_unique).sum(axis=1)

        # Infrastructure names: queried by nearly every client.
        total_clients = self._clients_by_country.sum()
        infra = total_clients * np.minimum(1.0, self._infra_weight * 30.0)
        return unique + infra

    def daily_list(self, day: int) -> RankedList:
        """The Umbrella list for ``day``: FQDNs by unique querying IPs,
        integer-quantized, ties broken alphabetically."""
        expected = self._unique_clients_per_fqdn(day)
        rng = self._world.day_rng("umbrella", day)
        # Resolver-fleet sampling and anycast routing shift which slice of
        # the client base each datacenter counts day to day; this perturbs
        # counts (and thus ranks) much more than set membership.
        expected = expected * rng.lognormal(0.0, 0.6, size=len(expected))
        counts = sample_counts(rng, expected)
        # Rank-resolution loss: between caching and normalization, DNS
        # counts only support coarse popularity bands.  Scores collapse to
        # geometric buckets, creating the long alphabetically-sorted tie
        # runs prior work observed in the published list.
        quantized = np.where(
            counts > 0, np.power(2.2, np.floor(np.log(counts + 1.0) / np.log(2.2))), 0.0
        )
        return self._assemble(
            quantized, self._fqdn_rows, day=day, tie_break_alpha=True, min_score=0.0
        )
