"""Top-list providers.

Each module simulates one published list's documented measurement mechanism
over the shared world:

* :mod:`repro.providers.alexa` — browser-extension panel, pageviews +
  visitors, 3-month smoothing; tiny, desktop-only, private-mode-blind.
* :mod:`repro.providers.umbrella` — unique client IPs querying each FQDN on
  Cisco's (enterprise-heavy, US-centric) DNS resolvers; bare TLDs and
  infrastructure names included; alphabetical tie-breaking.
* :mod:`repro.providers.majestic` — backlink counts from an SEO crawl.
* :mod:`repro.providers.secrank` — diversity-weighted client voting on a
  large Chinese resolver.
* :mod:`repro.providers.tranco` — Dowdall-rule aggregation of Alexa,
  Umbrella, and Majestic over a 30-day window.
* :mod:`repro.providers.trexa` — Alexa-weighted interleave of Tranco and
  Alexa.
* :mod:`repro.providers.crux_list` — Chrome telemetry completed pageloads,
  aggregated monthly by origin and published in rank-magnitude buckets.
"""

from repro.providers.alexa import AlexaProvider
from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.providers.crux_list import CruxProvider
from repro.providers.majestic import MajesticProvider
from repro.providers.registry import PROVIDER_ORDER, build_providers
from repro.providers.secrank import SecrankProvider
from repro.providers.tranco import TrancoProvider
from repro.providers.trexa import TrexaProvider
from repro.providers.umbrella import UmbrellaProvider

__all__ = [
    "AlexaProvider",
    "CruxProvider",
    "Granularity",
    "MajesticProvider",
    "PROVIDER_ORDER",
    "RankedList",
    "SecrankProvider",
    "TopListProvider",
    "TrancoProvider",
    "TrexaProvider",
    "UmbrellaProvider",
    "build_providers",
]
