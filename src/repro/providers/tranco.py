"""The Tranco list simulator.

Tranco (Le Pochat et al., NDSS '19) hardens top lists against manipulation
and churn by aggregating Alexa, Umbrella, and Majestic over a 30-day window
with the Dowdall rule: a domain scores the sum of ``1/rank`` over every
(list, day) in the window, and domains are ranked by total score.

We reimplement the algorithm faithfully over our simulated component
lists.  Umbrella's FQDN entries are first folded to registrable domains
(best rank wins), matching the domain-level Tranco archive the paper used
(its Table 2 PSL deviation for Tranco is 0.0).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = ["TrancoProvider", "dowdall_scores", "site_rank_vector"]


def site_rank_vector(world: World, name_rows: Sequence[int]) -> np.ndarray:
    """Best 1-based rank per site for one published list (0 = absent).

    Folds name-table rows to registrable domains first (infrastructure
    names, ``site < 0``, contribute nothing) and keeps the best-ranked
    occurrence of each site — the same folding the batch Tranco path
    applies to its components.  The degraded-ingestion layer reuses this
    so a repaired or truncated day aggregates exactly like a clean one.
    """
    rows = np.asarray(name_rows, dtype=np.int64)
    sites = world.names.site[rows]
    ranks = np.zeros(world.n_sites, dtype=np.float64)
    position = np.arange(1, len(sites) + 1, dtype=np.float64)
    owned = sites >= 0
    site_ids = sites[owned]
    pos = position[owned]
    first = np.zeros(world.n_sites, dtype=bool)
    for site, rank in zip(site_ids, pos):
        if not first[site]:
            first[site] = True
            ranks[site] = rank
    return ranks


def dowdall_scores(rank_vectors: Sequence[np.ndarray], n_sites: int) -> np.ndarray:
    """Dowdall-rule aggregation.

    Args:
        rank_vectors: per-(list, day) arrays of 1-based site ranks, with 0
          meaning "absent from that list".
        n_sites: universe size.

    Returns:
        Per-site total score (sum of reciprocal ranks).
    """
    scores = np.zeros(n_sites)
    for ranks in rank_vectors:
        present = ranks > 0
        scores[present] += 1.0 / ranks[present]
    return scores


class TrancoProvider(TopListProvider):
    """Dowdall aggregation of Alexa, Umbrella, and Majestic."""

    name = "tranco"
    granularity = Granularity.DOMAIN

    def __init__(
        self,
        world: World,
        traffic: TrafficModel,
        components: Sequence[TopListProvider],
    ) -> None:
        """Args:
        world: the shared world.
        traffic: the shared traffic model.
        components: the component providers (canonically Alexa, Umbrella,
          Majestic), already constructed over the same world.
        """
        super().__init__(world, traffic)
        if not components:
            raise ValueError("Tranco needs at least one component list")
        self._components = tuple(components)
        self._rank_cache: Dict[tuple, np.ndarray] = {}

    @property
    def components(self) -> tuple:
        """The aggregated component providers."""
        return self._components

    def _component_site_ranks(self, provider: TopListProvider, day: int) -> np.ndarray:
        """Best 1-based rank per site in a component's daily list (0 =
        absent), after folding entries to registrable domains."""
        key = (provider.name, day)
        cached = self._rank_cache.get(key)
        if cached is not None:
            return cached
        ranked = provider.daily_list(day)
        ranks = site_rank_vector(self._world, ranked.name_rows)
        self._rank_cache[key] = ranks
        return ranks

    def window_days(self, day: int) -> range:
        """The trailing aggregation window ending at ``day`` (inclusive),
        clipped at day 0 — the days whose component lists feed the Dowdall
        sum for ``day``."""
        window = self._world.config.tranco_window
        return range(max(0, day - window + 1), day + 1)

    def component_day_ranks(self, day: int) -> List[np.ndarray]:
        """One rank vector per component for a single ``day``, in canonical
        component order.

        This is the per-day unit of work the incremental pipeline
        (:mod:`repro.ranking`) folds into its rolling window: everything a
        new day contributes to the aggregation, and nothing older.
        """
        return [self._component_site_ranks(p, day) for p in self._components]

    def assemble_scores(self, scores: np.ndarray, day: int) -> RankedList:
        """Turn a per-site Dowdall score vector into the ranked list for
        ``day``, using the same ordering/truncation rules as the batch path."""
        name_rows = np.arange(self._world.n_sites)
        return self._assemble(scores, name_rows, day=day, min_score=0.0)

    def daily_list(self, day: int) -> RankedList:
        """The Tranco list for ``day``: Dowdall over the trailing window."""
        days = self.window_days(day)
        vectors = [
            self._component_site_ranks(provider, d)
            for provider in self._components
            for d in days
        ]
        scores = dowdall_scores(vectors, self._world.n_sites)
        return self.assemble_scores(scores, day)
