"""Provider base types: ranked lists and the provider interface.

A :class:`RankedList` is what a provider publishes: an ordered array of
name-table rows (so a list may rank domains, FQDNs, or origins — Section 4.2)
plus, for CrUX, rank-magnitude bucket assignments instead of exact ranks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = ["Granularity", "RankedList", "TopListProvider"]


class Granularity:
    """What kind of name a list ranks."""

    DOMAIN = "domain"
    FQDN = "fqdn"
    ORIGIN = "origin"


@dataclass
class RankedList:
    """A published top list.

    Attributes:
        provider: provider name (``"alexa"``...).
        day: day index of a daily snapshot, or None for a monthly list.
        granularity: one of :class:`Granularity`.
        name_rows: name-table rows in rank order (rank 1 first).
        bucket_bounds: for bucketed lists (CrUX), the cumulative bucket
          sizes (e.g. ``(1000, 10000, ...)``); None for exactly-ranked
          lists.  Within a bucket, order carries no information.
    """

    provider: str
    day: Optional[int]
    granularity: str
    name_rows: np.ndarray
    bucket_bounds: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.name_rows)

    @property
    def is_bucketed(self) -> bool:
        """True when the list publishes rank magnitudes, not ranks."""
        return self.bucket_bounds is not None

    def strings(self, world: World, limit: Optional[int] = None) -> List[str]:
        """The textual list entries, rank order (for display and Table 2)."""
        rows = self.name_rows if limit is None else self.name_rows[:limit]
        return [world.names.strings[int(row)] for row in rows]

    def head(self, k: int) -> "RankedList":
        """The top-``k`` prefix as a new list (bucket bounds clipped)."""
        bounds = self.bucket_bounds
        if bounds is not None:
            bounds = bounds[bounds <= k]
            if len(bounds) == 0 or bounds[-1] != min(k, len(self.name_rows)):
                bounds = np.append(bounds, min(k, len(self.name_rows)))
        return RankedList(
            provider=self.provider,
            day=self.day,
            granularity=self.granularity,
            name_rows=self.name_rows[:k],
            bucket_bounds=bounds,
        )


class TopListProvider(abc.ABC):
    """Base class for top-list simulators.

    Args:
        world: the shared world.
        traffic: the shared traffic model — one per world, so every
          provider observes the same underlying days.
    """

    #: Provider name; subclasses set this.
    name: str = ""
    #: Default granularity of published lists.
    granularity: str = Granularity.DOMAIN
    #: Whether the provider publishes a fresh list every day.
    publishes_daily: bool = True

    def __init__(self, world: World, traffic: TrafficModel) -> None:
        self._world = world
        self._traffic = traffic

    @property
    def world(self) -> World:
        """The shared world."""
        return self._world

    @property
    def traffic(self) -> TrafficModel:
        """The shared traffic model."""
        return self._traffic

    def _panel_composition_bias(
        self,
        sigma: float,
        stream: Optional[str] = None,
        common: float = 0.0,
    ) -> np.ndarray:
        """Persistent per-site panel-composition bias factors.

        A vantage point measures *its* population, not the web population:
        extension installers, enterprise employees, one resolver's users.
        Their tastes differ persistently from the average user's, which
        shifts whole regions of the measured ranking rather than jittering
        it day to day.

        Panels also share a skew with *each other* — the kind of user who
        is measurable at all (installs extensions, works behind a corporate
        resolver) over-represents the same slice of the web.  ``common``
        adds that shared component, drawn from a world-level stream, so
        amalgam lists like Tranco inherit their components' biases instead
        of cancelling them (Section 6.4's observation).

        Args:
            sigma: lognormal sigma of the provider-specific component.
            stream: world RNG stream for the specific component (defaults
              to the provider's name).
            common: lognormal sigma of the cross-panel shared component.
        """
        n = self._world.n_sites
        rng = self._world.day_rng(stream or self.name, 99_991)
        bias = rng.lognormal(0.0, sigma, size=n) if sigma > 0 else np.ones(n)
        if common > 0:
            shared_rng = self._world.day_rng("clients", 99_990)
            bias = bias * shared_rng.lognormal(0.0, common, size=n)
        return bias

    @abc.abstractmethod
    def daily_list(self, day: int) -> RankedList:
        """The list as published for simulated ``day``.

        Monthly-cadence providers return their monthly list regardless of
        day (CrUX is fixed for the whole window, as in Figure 3's note).
        """

    def monthly_list(self) -> RankedList:
        """The provider's list for the whole window.

        Default: the middle day's snapshot, which matches how researchers
        pin one snapshot for a study period.  Monthly-aggregated providers
        override this.
        """
        return self.daily_list(self._world.config.n_days // 2)

    def _assemble(
        self,
        scores: np.ndarray,
        name_rows: np.ndarray,
        day: Optional[int],
        tie_break_alpha: bool = False,
        min_score: float = 0.0,
    ) -> RankedList:
        """Rank ``name_rows`` by ``scores`` (descending) into a list.

        Args:
            scores: per-row scores; rows with score <= ``min_score`` are
              excluded (a panel can't rank what it never saw).
            name_rows: candidate name-table rows, aligned with scores.
            day: publication day tag.
            tie_break_alpha: break score ties alphabetically (Umbrella's
              documented artifact) instead of arbitrarily.
        """
        keep = scores > min_score
        scores = scores[keep]
        name_rows = name_rows[keep]
        if tie_break_alpha:
            strings = self._world.names.strings
            alpha = np.array([strings[int(r)] for r in name_rows])
            order = np.lexsort((alpha, -scores))
        else:
            order = np.argsort(-scores, kind="stable")
        limit = self._world.config.list_length
        return RankedList(
            provider=self.name,
            day=day,
            granularity=self.granularity,
            name_rows=name_rows[order][:limit],
        )
