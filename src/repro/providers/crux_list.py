"""The Chrome User Experience Report (CrUX) list simulator.

CrUX publishes, monthly, the set of origins whose completed pageloads
(measured at First Contentful Paint) place them in each rank order-of-
magnitude bucket: top 1K, 10K, 100K, 1M.  Entries are **origins**
(``https://www.example.com``), the ranking is **bucketed** (no individual
ranks — the reason the paper cannot compute Spearman correlations for
CrUX), and origins with too few distinct panel visitors are withheld for
privacy.

The list is derived from the same :class:`~repro.telemetry.chrome.
ChromeTelemetry` panel as the Section 6 analyses, aggregated over the whole
window, so within the simulation CrUX relates to Chrome telemetry exactly
as in reality: same data, different publication surface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World

__all__ = ["CruxProvider"]


class CruxProvider(TopListProvider):
    """Monthly, origin-aggregated, rank-magnitude-bucketed Chrome list."""

    name = "crux"
    granularity = Granularity.ORIGIN
    publishes_daily = False

    def __init__(
        self,
        world: World,
        traffic: TrafficModel,
        telemetry: Optional[ChromeTelemetry] = None,
    ) -> None:
        super().__init__(world, traffic)
        self._telemetry = (
            telemetry if telemetry is not None else ChromeTelemetry(world, traffic)
        )
        names = world.names
        self._origin_rows = names.rows_of_kind(NameKind.ORIGIN)
        self._origin_sites = names.site[self._origin_rows]
        self._origin_share = names.share[self._origin_rows]
        self._monthly: Optional[RankedList] = None
        self._country_cache: dict = {}

    @property
    def telemetry(self) -> ChromeTelemetry:
        """The underlying Chrome panel."""
        return self._telemetry

    def monthly_list(self) -> RankedList:
        """The month's CrUX release (cached)."""
        if self._monthly is None:
            self._monthly = self._build_monthly()
        return self._monthly

    def daily_list(self, day: int) -> RankedList:
        """CrUX does not publish daily; every day sees the monthly list."""
        return self.monthly_list()

    def country_list(self, code: str) -> RankedList:
        """The month's per-country CrUX table (cached per country).

        The real CrUX publishes one BigQuery table per country alongside
        the global one; this builds ours from the same telemetry panel,
        restricted to the country's clients (summed over platforms).

        Raises:
            KeyError: for unknown country codes.
        """
        from repro.worldgen.countries import country_index

        country = country_index(code)
        cached = self._country_cache.get(code)
        if cached is None:
            site_completed = (
                self._telemetry.metric_counts("completed", country, 0)
                + self._telemetry.metric_counts("completed", country, 1)
            )
            cached = self._publish(site_completed)
            self._country_cache[code] = cached
        return cached

    def _build_monthly(self) -> RankedList:
        site_completed = self._telemetry.global_completed_by_site()
        return self._publish(site_completed)

    def _publish(self, site_completed) -> RankedList:
        """Aggregate site-level completed pageloads into a bucketed,
        privacy-thresholded origin list."""
        world = self._world
        origin_completed = (
            site_completed[self._origin_sites] * self._origin_share
        )

        # Privacy threshold: approximate distinct panel visitors per origin
        # by de-duplicating pageloads through visit depth.
        pages = self._traffic.pages_per_visit[self._origin_sites]
        approx_visitors = origin_completed / pages
        visible = approx_visitors >= world.config.crux_privacy_threshold

        rows = self._origin_rows[visible]
        scores = origin_completed[visible]
        order = np.argsort(-scores, kind="stable")
        ranked_rows = rows[order]

        limit = world.config.list_length
        ranked_rows = ranked_rows[:limit]
        bounds = np.array(
            [b for b in world.config.bucket_sizes if b <= len(ranked_rows)],
            dtype=np.int64,
        )
        if len(bounds) == 0 or bounds[-1] != len(ranked_rows):
            bounds = np.append(bounds, len(ranked_rows))
        return RankedList(
            provider=self.name,
            day=None,
            granularity=self.granularity,
            name_rows=ranked_rows,
            bucket_bounds=bounds,
        )
