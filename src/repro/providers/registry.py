"""Provider assembly.

Builds the full set of seven top lists over one shared world and traffic
model, wiring composite lists (Tranco, Trexa) to their components and CrUX
to the Chrome telemetry panel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.providers.alexa import AlexaProvider
from repro.providers.base import TopListProvider
from repro.providers.crux_list import CruxProvider
from repro.providers.majestic import MajesticProvider
from repro.providers.secrank import SecrankProvider
from repro.providers.tranco import TrancoProvider
from repro.providers.trexa import TrexaProvider
from repro.providers.umbrella import UmbrellaProvider
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = ["PROVIDER_ORDER", "build_providers"]

#: Canonical display order (the paper's table row order).
PROVIDER_ORDER: Tuple[str, ...] = (
    "alexa",
    "majestic",
    "secrank",
    "tranco",
    "trexa",
    "umbrella",
    "crux",
)


def build_providers(
    world: World,
    traffic: Optional[TrafficModel] = None,
    telemetry: Optional[ChromeTelemetry] = None,
) -> Dict[str, TopListProvider]:
    """Construct all seven providers over a shared world.

    Args:
        world: the simulated world.
        traffic: shared traffic model (built if absent).
        telemetry: shared Chrome panel (built if absent) — pass the same
          instance used for the Section 6 analyses so CrUX and the private
          telemetry views are derived from identical data, as in reality.

    Returns:
        Mapping from provider name to provider, in :data:`PROVIDER_ORDER`.
    """
    traffic = traffic if traffic is not None else TrafficModel(world)
    telemetry = telemetry if telemetry is not None else ChromeTelemetry(world, traffic)

    alexa = AlexaProvider(world, traffic)
    umbrella = UmbrellaProvider(world, traffic)
    majestic = MajesticProvider(world, traffic)
    secrank = SecrankProvider(world, traffic)
    tranco = TrancoProvider(world, traffic, components=(alexa, umbrella, majestic))
    trexa = TrexaProvider(world, traffic, alexa=alexa, tranco=tranco)
    crux = CruxProvider(world, traffic, telemetry=telemetry)

    providers: Dict[str, TopListProvider] = {
        "alexa": alexa,
        "majestic": majestic,
        "secrank": secrank,
        "tranco": tranco,
        "trexa": trexa,
        "umbrella": umbrella,
        "crux": crux,
    }
    return {name: providers[name] for name in PROVIDER_ORDER}
