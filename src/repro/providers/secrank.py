"""The Secrank simulator.

Secrank (Xie et al., USENIX Security '22) builds a top list from DNS logs
of a major Chinese resolver: each client IP "votes" for domains by request
volume and access frequency, with votes weighted by the client's domain
diversity and total volume, and the aggregate smoothed for stability.

From the paper's evaluation perspective the dominant property is the
vantage point: essentially all clients are in China, so the list captures
the Chinese web well (Figure 7) and the global web poorly (Figure 2,
Table 1 — Cloudflare coverage of Secrank is 0.6-8%, partly because
Cloudflare serves few China-homed sites).  We implement a simplified
diversity-weighted voting over the simulated Chinese client base.
"""

from __future__ import annotations

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World
from repro.worldgen.zipf import sample_counts

__all__ = ["SecrankProvider"]

#: Exponential smoothing factor (Secrank is designed to be stable).
_SMOOTHING = 0.15


class SecrankProvider(TopListProvider):
    """Diversity-weighted client voting on a Chinese resolver."""

    name = "secrank"
    granularity = Granularity.DOMAIN

    def __init__(self, world: World, traffic: TrafficModel) -> None:
        super().__init__(world, traffic)
        self._client_base = (
            world.config.secrank_daily_events * world.clients.secrank_share
        )
        # One ISP resolver's users are a further-skewed slice even of the
        # Chinese web population.
        self._taste = self._panel_composition_bias(1.3, common=0.5)
        # National filtering: a large share of foreign sites are
        # unreachable from the resolver's network, so they generate almost
        # no resolvable traffic regardless of global popularity.
        rng = world.day_rng(self.name, 99_992)
        from repro.worldgen.countries import country_index

        foreign = world.sites.home_country != country_index("cn")
        blocked = foreign & (rng.random(world.n_sites) < 0.60)
        self._reachability = np.where(blocked, 0.02, 1.0)
        self._smoothed: dict = {}

    def _daily_votes(self, day: int) -> np.ndarray:
        """Per-site vote mass on ``day`` from the resolver's clients."""
        world = self._world
        tensors = self._traffic.day(day)

        # Sessions visible to the resolver, per country (dominated by CN).
        country_clients = world.clients.country_clients()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                country_clients > 0, self._client_base / country_clients, 0.0
            )
        sessions = (
            tensors.sessions
            * ratio[None, :]
            * (self._taste * self._reachability)[:, None]
        )

        # Voting: request volume dampened per client (each IP's votes are
        # normalized by its own volume), which compresses heavy hitters.
        # Unique clients dominate; log-volume adds frequency information.
        unique = (country_clients[None, :] * -np.expm1(
            -np.divide(
                sessions,
                country_clients[None, :],
                out=np.zeros_like(sessions),
                where=country_clients[None, :] > 0,
            )
        )).sum(axis=1)
        volume = sessions.sum(axis=1)
        votes = unique * np.log1p(np.divide(
            volume, np.maximum(unique, 1e-9)
        ))
        rng = world.day_rng("secrank", day)
        return sample_counts(rng, votes)

    def _smoothed_votes(self, day: int) -> np.ndarray:
        cached = self._smoothed.get(day)
        if cached is not None:
            return cached
        start = max((d for d in self._smoothed if d < day), default=-1)
        score = self._smoothed.get(start)
        for d in range(start + 1, day + 1):
            votes = self._daily_votes(d)
            score = votes if score is None else (1 - _SMOOTHING) * score + _SMOOTHING * votes
            self._smoothed[d] = score
        return self._smoothed[day]

    def daily_list(self, day: int) -> RankedList:
        """The Secrank list for ``day`` (smoothed votes, descending)."""
        scores = self._smoothed_votes(day)
        name_rows = np.arange(self._world.n_sites)
        return self._assemble(scores, name_rows, day=day, min_score=0.5)
