"""Event-level Majestic: rank by crawling an explicit link graph.

The analytic Majestic provider consumes the world's closed-form backlink
counts.  This module closes the loop for small worlds the way
:mod:`repro.providers.dns_pipeline` does for Umbrella: materialize the
hyperlink graph (:mod:`repro.worldgen.linkgraph`), run a budgeted breadth-
first crawl from seed sites — a crawler never sees the whole web — and
rank sites by backlinks *discovered by the crawl*.

The integration tests compare this crawl-derived ranking with the analytic
provider's; the ablation-minded can also rank by PageRank over the crawled
subgraph (Majestic's "Trust Flow" flavour).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

import networkx as nx
import numpy as np

from repro.providers.base import Granularity, RankedList
from repro.worldgen.linkgraph import build_link_graph
from repro.worldgen.world import World

__all__ = ["crawl_link_graph", "crawled_backlink_ranking", "CrawledMajestic"]


def crawl_link_graph(
    graph: nx.DiGraph,
    seeds: Optional[Set[int]] = None,
    budget: int = 10_000,
) -> nx.DiGraph:
    """Breadth-first crawl of a link graph under a page budget.

    Args:
        graph: the full hyperlink graph.
        seeds: starting sites (default: the 10 lowest-index nodes —
          a crawler seeds from well-known sites).
        budget: maximum number of sites whose outlinks are fetched.

    Returns:
        The subgraph of crawled sites plus every edge *discovered* (edges
        to uncrawled sites are kept: a backlink is visible once the
        linking page is fetched, even if the target never is).
    """
    if seeds is None:
        seeds = set(sorted(graph.nodes())[:10])
    crawled: Set[int] = set()
    discovered = nx.DiGraph()
    queue = deque(sorted(seeds))
    while queue and len(crawled) < budget:
        node = queue.popleft()
        if node in crawled or node not in graph:
            continue
        crawled.add(node)
        discovered.add_node(node)
        for target in graph.successors(node):
            discovered.add_edge(node, target)
            if target not in crawled:
                queue.append(target)
    return discovered


def crawled_backlink_ranking(
    discovered: nx.DiGraph, n_sites: int, use_pagerank: bool = False
) -> np.ndarray:
    """Sites ranked by crawl-visible link authority, best first.

    Args:
        discovered: the crawl result.
        n_sites: universe size.
        use_pagerank: rank by PageRank over the discovered subgraph
          instead of raw in-degree.
    """
    scores = np.zeros(n_sites)
    if discovered.number_of_nodes() == 0:
        return np.array([], dtype=np.int64)
    if use_pagerank:
        for node, value in nx.pagerank(discovered, alpha=0.85).items():
            if 0 <= node < n_sites:
                scores[node] = value
    else:
        for node, degree in discovered.in_degree():
            if 0 <= node < n_sites:
                scores[node] = degree
    ranked = np.argsort(-scores, kind="stable")
    return ranked[scores[ranked] > 0]


class CrawledMajestic:
    """A Majestic built from an actual crawl (small worlds only).

    Satisfies enough of the provider interface for normalization and
    evaluation: ``daily_list`` returns the same list every day (crawls
    move slowly).
    """

    name = "majestic-crawl"
    granularity = Granularity.DOMAIN
    publishes_daily = True

    def __init__(
        self,
        world: World,
        budget: int = 10_000,
        mean_outlinks: float = 12.0,
        use_pagerank: bool = False,
    ) -> None:
        self._world = world
        rng = world.rng("linkgraph")
        graph = build_link_graph(
            world.sites, rng, mean_outlinks=mean_outlinks, max_sites=world.n_sites
        )
        discovered = crawl_link_graph(graph, budget=budget)
        ranking = crawled_backlink_ranking(
            discovered, world.n_sites, use_pagerank=use_pagerank
        )
        limit = world.config.list_length
        self._list = RankedList(
            provider=self.name,
            day=None,
            granularity=self.granularity,
            name_rows=ranking[:limit].astype(np.int64),
        )
        self.crawled_sites = discovered.number_of_nodes()
        self.discovered_edges = discovered.number_of_edges()

    def daily_list(self, day: int) -> RankedList:
        """The crawl's ranking (static across days)."""
        return self._list

    def monthly_list(self) -> RankedList:
        """Same list — crawls change on month-plus timescales."""
        return self._list
