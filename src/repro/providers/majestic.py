"""The Majestic Million simulator.

Majestic ranks websites by the number of referring subnets/backlinks seen
by its SEO crawler.  Link authority correlates only loosely with traffic —
"there is little evidence to support that the number of links to a website
correlates strongly with page views" (Section 5.1) — and is strongly tilted
toward link-magnet categories (government, news, travel: Table 3).

Both properties live in the world's backlink model
(:mod:`repro.worldgen.sites`, ``majestic_link_fidelity``); this provider
just publishes the crawl's view of it.  Backlink counts drift slowly, so
the daily snapshots are nearly constant over a month, as the real list is.
"""

from __future__ import annotations

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = ["MajesticProvider"]


class MajesticProvider(TopListProvider):
    """Backlink-count ranking from a simulated SEO crawl."""

    name = "majestic"
    granularity = Granularity.DOMAIN

    def __init__(self, world: World, traffic: TrafficModel) -> None:
        super().__init__(world, traffic)
        # The crawler's view: true backlinks plus crawl-coverage noise
        # (a crawler sees a sample of the link graph, not all of it).
        rng = world.rng("majestic")
        coverage = rng.beta(8.0, 2.0, size=world.n_sites)
        self._crawled_links = world.sites.backlinks * coverage

    def daily_list(self, day: int) -> RankedList:
        """The Majestic Million for ``day``.

        Day-to-day movement is limited to slow crawl-frontier drift.
        """
        rng = self._world.day_rng("majestic", day)
        drift = rng.lognormal(0.0, 0.01, size=self._world.n_sites)
        scores = self._crawled_links * drift
        name_rows = np.arange(self._world.n_sites)
        return self._assemble(scores, name_rows, day=day, min_score=0.5)
