"""The Alexa Top Sites simulator.

Alexa inferred popularity from a panel of users who installed one of ~25K
partner browser extensions, ranking by a blend of average daily visitors
and pageviews over a trailing three-month window.  The mechanism has three
documented consequences that this simulator reproduces:

* the panel is **small** — tail sites are observed rarely or never, so the
  deep list is noisy and incomplete;
* the panel is **desktop-only** (extensions barely exist on mobile) and
  unevenly distributed across countries — strongest in the US and several
  sub-Saharan African markets;
* extensions are **disabled in private browsing**, making adult and
  gambling traffic nearly invisible (Table 3's exclusion bias).

Figure 3 of the paper observes an unexplained accuracy improvement in late
February 2022; we model it as a silent panel enlargement on a configurable
day.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.calendar import TrafficCalendar
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World
from repro.worldgen.zipf import sample_counts

__all__ = ["AlexaProvider"]


class AlexaProvider(TopListProvider):
    """Browser-extension panel ranking (visitors + pageviews, smoothed)."""

    name = "alexa"
    granularity = Granularity.DOMAIN

    def __init__(self, world: World, traffic: TrafficModel) -> None:
        super().__init__(world, traffic)
        self._calendar = TrafficCalendar(world.config)
        sites = world.sites
        clients = world.clients
        # Static panel-visibility weight per site: desktop share of its
        # traffic, weighted by panel density where that traffic originates,
        # minus private-mode browsing.
        panel_density = clients.alexa_panel_rate
        geo = sites.country_share @ panel_density
        # Extension installers are a strongly self-selected population.
        # The skew is heavy-tailed rather than uniform: most sites are
        # sampled roughly faithfully, but a minority are wildly over- or
        # under-represented (deal/toolbar/download ecosystems).  The
        # mixture breaks Alexa's *set* accuracy while leaving rank order
        # within the faithful majority intact — the paper's Figure 2
        # pattern of bad Jaccard but relatively good Spearman.
        mix_rng = self._world.day_rng(self.name, 99_993)
        skewed = mix_rng.random(world.n_sites) < 0.40
        taste = np.where(
            skewed, mix_rng.lognormal(0.0, 2.3, world.n_sites), 1.0
        )
        taste = taste * self._panel_composition_bias(0.0, common=0.5)
        # Private-mode visits disable extensions entirely, and the kind of
        # user who installs tracking extensions avoids browsing sensitive
        # categories under them at all — a compounding penalty, hence the
        # squared factor (Gao et al., via Section 6.4).
        private_blindness = (1.0 - sites.private_rate) ** 2
        # The panel lives on *home* desktops: its browsing mix tilts
        # toward leisure sites and away from office-hours destinations,
        # which is also why Alexa tracks weekend web activity best
        # (Figure 3).
        leisure_tilt = 1.55 - 1.1 * sites.work_affinity
        self._visibility = (
            geo * (1.0 - sites.mobile_share) * private_blindness * taste * leisure_tilt
        )
        self._smoothed: Dict[int, np.ndarray] = {}

    def _panel_counts(self, day: int) -> np.ndarray:
        """Panel pageview observations per site on ``day``."""
        world = self._world
        config = world.config
        tensors = self._traffic.day(day)
        weights = tensors.pageloads * self._visibility
        total = weights.sum()
        if total <= 0:
            return np.zeros(world.n_sites)
        budget = config.alexa_daily_events * self._calendar.alexa_panel_boost(day)
        rng = world.day_rng("alexa", day)
        return sample_counts(rng, budget * weights / total)

    def _smoothed_scores(self, day: int) -> np.ndarray:
        """Trailing-average score through ``day`` (EMA standing in for the
        3-month window, computed sequentially and cached)."""
        cached = self._smoothed.get(day)
        if cached is not None:
            return cached
        alpha = self._world.config.alexa_smoothing
        pages = self._traffic.pages_per_visit
        start = max((d for d in self._smoothed if d < day), default=-1)
        score = self._smoothed.get(start)
        for d in range(start + 1, day + 1):
            counts = self._panel_counts(d)
            # "Average daily visitors and pageviews": approximate panel
            # visitors by de-duplicating pageviews through visit depth.
            daily = counts + 3.0 * counts / pages
            score = daily if score is None else (1 - alpha) * score + alpha * daily
            self._smoothed[d] = score
        return self._smoothed[day]

    def daily_list(self, day: int) -> RankedList:
        """The Alexa list published on ``day``.

        Sites the panel has never observed cannot be ranked and are
        absent — the key accuracy limitation of a small panel.
        """
        scores = self._smoothed_scores(day)
        name_rows = np.arange(self._world.n_sites)  # Domain rows lead the table.
        return self._assemble(scores, name_rows, day=day, min_score=0.0)
