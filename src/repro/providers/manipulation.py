"""Adversarial list manipulation (the Tranco threat model).

The paper repeatedly cites the manipulation line of work — lists can be
gamed with fake panel traffic or botnet DNS queries, and Tranco exists to
harden against it (Le Pochat et al.).  This module implements both classic
attacks against our simulated providers and measures how far a target site
climbs, so the hardening claim can be tested rather than assumed:

* **Panel inflation** (vs Alexa): buy fake pageviews from panel members —
  the attack that put throwaway domains in the real Alexa top 1000.
* **Botnet queries** (vs Umbrella): resolve the target from many source
  addresses.

Tranco's 30-day Dowdall aggregation over three lists should blunt a
short-lived attack on one component; ``run_manipulation_experiment``
produces the rank trajectories that show whether it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.providers.alexa import AlexaProvider
from repro.providers.base import TopListProvider
from repro.providers.majestic import MajesticProvider
from repro.providers.tranco import TrancoProvider
from repro.providers.umbrella import UmbrellaProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = [
    "AttackWindow",
    "ManipulatedAlexa",
    "ManipulatedUmbrella",
    "ManipulationReport",
    "rank_of_site",
    "run_manipulation_experiment",
]


@dataclass(frozen=True)
class AttackWindow:
    """When and how hard the attacker pushes.

    Attributes:
        target_site: the site index being promoted.
        start_day: first attack day (inclusive).
        end_day: last attack day (inclusive).
        intensity: attack magnitude — fake panel pageviews per day for
          Alexa; distinct querying bot addresses per day for Umbrella.
    """

    target_site: int
    start_day: int
    end_day: int
    intensity: float

    def active(self, day: int) -> bool:
        """Whether the attack runs on ``day``."""
        return self.start_day <= day <= self.end_day


class ManipulatedAlexa(AlexaProvider):
    """Alexa under a panel-inflation attack.

    Fake pageviews enter the same smoothing pipeline as real ones, so the
    attack decays with the EMA after it stops — matching the observed
    behaviour of real Alexa injections.
    """

    def __init__(self, world: World, traffic: TrafficModel, attack: AttackWindow) -> None:
        super().__init__(world, traffic)
        self._attack = attack

    def _panel_counts(self, day: int) -> np.ndarray:
        counts = super()._panel_counts(day)
        if self._attack.active(day):
            counts = counts.copy()
            counts[self._attack.target_site] += self._attack.intensity
        return counts


class ManipulatedUmbrella(UmbrellaProvider):
    """Umbrella under a botnet-query attack.

    Each bot address queries the target's primary name once per day —
    unique-client counting makes this the cheapest possible attack, which
    is exactly why the real Umbrella list proved so easy to infiltrate.
    """

    def __init__(self, world: World, traffic: TrafficModel, attack: AttackWindow) -> None:
        super().__init__(world, traffic)
        self._attack = attack

    def _unique_clients_per_fqdn(self, day: int) -> np.ndarray:
        unique = super()._unique_clients_per_fqdn(day)
        if self._attack.active(day):
            unique = unique.copy()
            target_rows = np.flatnonzero(self._fqdn_sites == self._attack.target_site)
            if len(target_rows):
                # The bots hammer the site's best-known name.
                best = target_rows[np.argmax(self._fqdn_share[target_rows])]
                unique[best] += self._attack.intensity
        return unique


def rank_of_site(world: World, provider: TopListProvider, day: int, site: int) -> Optional[int]:
    """The site's 1-based rank in a provider's daily list (None if absent).

    FQDN/origin lists report the best rank of any of the site's names.
    """
    ranked = provider.daily_list(day)
    sites = world.names.site[ranked.name_rows]
    positions = np.flatnonzero(sites == site)
    if len(positions) == 0:
        return None
    return int(positions[0]) + 1


@dataclass
class ManipulationReport:
    """Rank trajectories of the target under attack.

    Attributes:
        target_site: attacked site index.
        true_rank: the site's true global popularity rank (1-based).
        trajectories: ``{provider: [rank or None per day]}``.
    """

    target_site: int
    true_rank: int
    trajectories: Dict[str, List[Optional[int]]]

    def best_rank(self, provider: str) -> Optional[int]:
        """The best (smallest) rank achieved on a provider."""
        ranks = [r for r in self.trajectories[provider] if r is not None]
        return min(ranks) if ranks else None

    def rank_gain(self, provider: str, baseline: "ManipulationReport") -> Optional[int]:
        """Positions gained at best vs an unattacked baseline run."""
        attacked = self.best_rank(provider)
        clean = baseline.best_rank(provider)
        if attacked is None or clean is None:
            return None
        return clean - attacked


def run_manipulation_experiment(
    world: World,
    traffic: TrafficModel,
    attack: Optional[AttackWindow],
    days: Optional[range] = None,
) -> ManipulationReport:
    """Build Alexa/Umbrella/Majestic (+Tranco over them) with or without an
    attack and record the target's daily ranks on each.

    Call once with ``attack=None`` for the baseline and once with the
    attack; compare via :meth:`ManipulationReport.rank_gain`.
    """
    target = attack.target_site if attack is not None else world.n_sites // 2
    if attack is not None:
        alexa: AlexaProvider = ManipulatedAlexa(world, traffic, attack)
        umbrella: UmbrellaProvider = ManipulatedUmbrella(world, traffic, attack)
    else:
        alexa = AlexaProvider(world, traffic)
        umbrella = UmbrellaProvider(world, traffic)
    majestic = MajesticProvider(world, traffic)
    tranco = TrancoProvider(world, traffic, components=(alexa, umbrella, majestic))

    providers: Dict[str, TopListProvider] = {
        "alexa": alexa,
        "umbrella": umbrella,
        "tranco": tranco,
    }
    day_list = days if days is not None else range(world.config.n_days)
    trajectories: Dict[str, List[Optional[int]]] = {name: [] for name in providers}
    for day in day_list:
        for name, provider in providers.items():
            trajectories[name].append(rank_of_site(world, provider, day, target))
    return ManipulationReport(
        target_site=target,
        true_rank=target + 1,
        trajectories=trajectories,
    )
