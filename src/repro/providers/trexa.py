"""The Trexa list simulator.

Trexa (Zeber et al., WWW '20) interleaves Tranco and Alexa rankings with
extra weight toward Alexa, aiming to better approximate intentional URL
loads as observed in a Mozilla user study.  The published construction
takes entries alternately from the two source lists — ``alexa_weight``
Alexa entries for every Tranco entry — skipping duplicates, preserving
each entry's first-seen position.
"""

from __future__ import annotations

import numpy as np

from repro.providers.base import Granularity, RankedList, TopListProvider
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World

__all__ = ["TrexaProvider", "interleave_rankings"]


def interleave_rankings(
    primary: np.ndarray, secondary: np.ndarray, primary_per_secondary: int
) -> np.ndarray:
    """Interleave two ranked id arrays, deduplicating on first occurrence.

    Args:
        primary: the up-weighted ranking (Alexa).
        secondary: the other ranking (Tranco).
        primary_per_secondary: primary entries taken per secondary entry.

    Returns:
        The merged ranking containing every id from either input once.
    """
    if primary_per_secondary < 1:
        raise ValueError("primary_per_secondary must be >= 1")
    out = []
    seen = set()
    i = j = 0
    while i < len(primary) or j < len(secondary):
        for _ in range(primary_per_secondary):
            if i < len(primary):
                item = int(primary[i])
                i += 1
                if item not in seen:
                    seen.add(item)
                    out.append(item)
        if j < len(secondary):
            item = int(secondary[j])
            j += 1
            if item not in seen:
                seen.add(item)
                out.append(item)
    return np.asarray(out, dtype=primary.dtype if len(primary) else np.int64)


class TrexaProvider(TopListProvider):
    """Alexa-weighted interleave of Tranco and Alexa."""

    name = "trexa"
    granularity = Granularity.DOMAIN

    def __init__(
        self,
        world: World,
        traffic: TrafficModel,
        alexa: TopListProvider,
        tranco: TopListProvider,
    ) -> None:
        super().__init__(world, traffic)
        self._alexa = alexa
        self._tranco = tranco

    def daily_list(self, day: int) -> RankedList:
        """The Trexa list for ``day``."""
        alexa_rows = self._alexa.daily_list(day).name_rows
        tranco_rows = self._tranco.daily_list(day).name_rows
        merged = interleave_rankings(
            alexa_rows, tranco_rows, self._world.config.trexa_alexa_weight
        )
        limit = self._world.config.list_length
        return RankedList(
            provider=self.name,
            day=day,
            granularity=self.granularity,
            name_rows=merged[:limit],
        )
