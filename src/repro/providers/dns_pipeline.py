"""Event-level DNS list construction.

The analytic Umbrella provider computes expected unique-client counts; this
module builds the same style of list by *counting actual queries* from the
:mod:`repro.dnslib` stack — resolve events flow through per-org caching
forwarders, the upstream log records one client per org per TTL window, and
the list is the log's unique-client ranking with alphabetical tie-breaking.

It exists to validate the analytic model (the integration tests compare
the two pipelines' lists over the same world) and to let the examples show
a DNS-derived ranking being assembled from first principles.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dnslib.querylog import QueryLog
from repro.providers.base import Granularity, RankedList
from repro.worldgen.world import World

__all__ = ["dns_list_from_log", "dns_site_ranking"]


def dns_list_from_log(
    world: World,
    log: QueryLog,
    day: int,
    provider_name: str = "umbrella-events",
    limit: Optional[int] = None,
) -> RankedList:
    """Build an Umbrella-style ranked list from an observed query log.

    Names are ranked by distinct observed clients (orgs, in a forwarding
    deployment), ties broken alphabetically, and mapped back to name-table
    rows.  Names the world doesn't know (stray queries) are dropped.

    Args:
        world: the shared world (for name-table lookup).
        log: the query log (typically ``DayEvents.dns_log``).
        day: the day to aggregate.
        provider_name: provider tag for the resulting list.
        limit: optional length cap (defaults to the config's list length).
    """
    ranking = log.ranking(day)
    limit = limit if limit is not None else world.config.list_length

    rows: List[int] = []
    for name in ranking:
        row = world.names.lookup(name)
        if row is None:
            continue
        rows.append(int(row))
        if len(rows) >= limit:
            break
    return RankedList(
        provider=provider_name,
        day=day,
        granularity=Granularity.FQDN,
        name_rows=np.asarray(rows, dtype=np.int64),
    )


def dns_site_ranking(world: World, log: QueryLog, day: int) -> np.ndarray:
    """Site indices ranked by their best DNS-observed name.

    The quick path for tests: fold the log's ranking straight to unique
    sites without materializing a RankedList.
    """
    seen = set()
    sites: List[int] = []
    for name in log.ranking(day):
        row = world.names.lookup(name)
        if row is None:
            continue
        site = int(world.names.site[row])
        if site >= 0 and site not in seen:
            seen.add(site)
            sites.append(site)
    return np.asarray(sites, dtype=np.int64)
