"""Structured tracing: nested spans and counters for the pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
instrumented stage (world construction, per-day traffic tensors, CDN metric
computation, store IO...) — each carrying wall time, peak RSS, and named
counters (``store.hits``, ``traffic.rows``, ``cdn.requests_simulated``...).

Instrumentation points call the *module-level* :func:`span` and
:func:`count` helpers, which are zero-overhead when no tracer is active:
``span`` returns a shared null context manager and ``count`` returns
immediately, so production code pays one attribute load and an ``is None``
check per call site.  Activating a tracer (:func:`tracing`) routes every
helper call into its span stack.

Tracing never touches any random stream and never feeds back into
experiment data, so traced and untraced runs are bit-identical — the golden
harness (``repro verify-goldens``) is the proof.

Span trees serialize to plain dicts (:meth:`Span.to_dict`), which is how
parallel workers ship their traces back through the run manifest, and
render two ways: a human-readable tree (:func:`render_span_tree`) and
Chrome ``chrome://tracing`` / Perfetto trace events
(:func:`chrome_trace_events`).
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Span",
    "Tracer",
    "peak_rss_bytes",
    "tracing",
    "current_tracer",
    "span",
    "count",
    "render_span_tree",
    "chrome_trace_events",
    "stage_totals",
    "merge_stage_totals",
]

try:  # pragma: no cover - platform dependent
    import resource

    def peak_rss_bytes() -> int:
        """Peak resident set size of this process, in bytes."""
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS reports bytes.
        return int(rss) if sys.platform == "darwin" else int(rss) * 1024

except ImportError:  # pragma: no cover - non-POSIX fallback

    def peak_rss_bytes() -> int:
        """Peak RSS is unavailable on this platform."""
        return 0


@dataclass
class Span:
    """One timed stage, possibly with nested children.

    Attributes:
        name: stage id (``context/world``, ``traffic/compute-day``...).
        start: seconds since the owning tracer started (for trace-event
          export; merged spans keep the earliest start).
        seconds: total wall time spent inside the span.
        calls: number of merged invocations (1 for a raw span).
        counters: named numeric counters attributed to this span.
        children: nested spans, in execution order.
        peak_rss_bytes: process peak RSS observed when the span closed.
    """

    name: str
    start: float = 0.0
    seconds: float = 0.0
    calls: int = 1
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    peak_rss_bytes: int = 0

    def add(self, name: str, n: float = 1.0) -> None:
        """Increment a counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def total_counters(self) -> Dict[str, float]:
        """This span's counters plus every descendant's, summed by name."""
        totals = dict(self.counters)
        for child in self.children:
            for key, value in child.total_counters().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def merged_children(self) -> List["Span"]:
        """Children collapsed by name: sums of seconds/calls/counters.

        Repeated stages (28 ``traffic/compute-day`` spans) merge into one
        line for rendering and stage aggregation; children merge
        recursively.  Execution order of first appearance is preserved.
        """
        merged: Dict[str, Span] = {}
        for child in self.children:
            flat = Span(
                name=child.name,
                start=child.start,
                seconds=child.seconds,
                calls=child.calls,
                counters=dict(child.counters),
                children=list(child.children),
                peak_rss_bytes=child.peak_rss_bytes,
            )
            slot = merged.get(child.name)
            if slot is None:
                merged[child.name] = flat
            else:
                slot.seconds += flat.seconds
                slot.calls += flat.calls
                slot.start = min(slot.start, flat.start)
                slot.peak_rss_bytes = max(slot.peak_rss_bytes, flat.peak_rss_bytes)
                for key, value in flat.counters.items():
                    slot.counters[key] = slot.counters.get(key, 0.0) + value
                slot.children.extend(flat.children)
        return list(merged.values())

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict projection (JSON-safe, pickles across workers)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "calls": self.calls,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.peak_rss_bytes:
            payload["peak_rss_bytes"] = self.peak_rss_bytes
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            start=float(payload.get("start", 0.0)),
            seconds=float(payload.get("seconds", 0.0)),
            calls=int(payload.get("calls", 1)),
            counters={
                str(k): float(v)
                for k, v in dict(payload.get("counters", {})).items()
            },
            children=[cls.from_dict(c) for c in payload.get("children", [])],
            peak_rss_bytes=int(payload.get("peak_rss_bytes", 0)),
        )


class Tracer:
    """Collects a span tree for one traced unit of work.

    Args:
        name: root span name (conventionally the experiment id).

    The tracer is single-threaded by design: the pipeline parallelizes
    across *processes*, and each worker owns its own tracer whose tree is
    serialized back through the run manifest.
    """

    def __init__(self, name: str = "run") -> None:
        self.root = Span(name)
        self._stack: List[Span] = [self.root]
        self._epoch = time.perf_counter()
        self._finished = False
        self._root_lock = threading.Lock()

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a nested span; closes (and times) it on exit."""
        entry = Span(name, start=time.perf_counter() - self._epoch)
        self._stack[-1].children.append(entry)
        self._stack.append(entry)
        started = time.perf_counter()
        try:
            yield entry
        finally:
            entry.seconds = time.perf_counter() - started
            entry.peak_rss_bytes = peak_rss_bytes()
            self._stack.pop()

    def count(self, name: str, n: float = 1.0) -> None:
        """Increment a counter on the innermost open span."""
        self._stack[-1].add(name, n)

    def count_root(self, name: str, n: float = 1.0) -> None:
        """Thread-safe counter increment on the *root* span.

        The span stack is single-threaded by design, but a long-lived
        multi-threaded consumer (``repro.serve`` handles each request on
        its own thread) still wants one shared set of service counters.
        Those go straight onto the root span under a lock, bypassing the
        stack entirely.
        """
        with self._root_lock:
            self.root.add(name, n)

    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if not self._finished:
            self.root.seconds = time.perf_counter() - self._epoch
            self.root.peak_rss_bytes = peak_rss_bytes()
            self._finished = True
        return self.root

    def to_dict(self) -> Dict[str, object]:
        """The (finished) span tree as a plain dict."""
        return self.finish().to_dict()


# ---------------------------------------------------------------------------
# The ambient tracer: module-level helpers instrumentation points call.

_ACTIVE: Optional[Tracer] = None

#: Shared reusable null context manager — the no-tracer fast path allocates
#: nothing.
_NULL = nullcontext()


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Activate ``tracer`` for the duration of the block.

    Nesting restores the previously active tracer on exit, so a traced
    helper calling another traced helper behaves sanely.  Passing None
    explicitly *disables* tracing inside the block, which lets callers
    write ``with tracing(tracer or None)`` unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str):
    """A context manager timing ``name`` under the active tracer.

    Zero-overhead when tracing is disabled: returns a shared null context
    manager without allocating.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL
    return tracer.span(name)


def count(name: str, n: float = 1.0) -> None:
    """Increment a counter on the active tracer's current span (no-op when
    tracing is disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, n)


# ---------------------------------------------------------------------------
# Rendering and aggregation.

_COUNTER_RENDER_LIMIT = 6


def _format_counters(counters: Dict[str, float]) -> str:
    parts = []
    for key in sorted(counters)[:_COUNTER_RENDER_LIMIT]:
        value = counters[key]
        text = f"{int(value)}" if float(value).is_integer() else f"{value:.3g}"
        parts.append(f"{key}={text}")
    if len(counters) > _COUNTER_RENDER_LIMIT:
        parts.append("...")
    return " ".join(parts)


def render_span_tree(root: Span, show_counters: bool = True) -> str:
    """Human-readable span tree: one line per (merged) span.

    Repeated child spans collapse into one line with a ``xN`` call count;
    counters (store hits/misses, rows simulated...) print inline.
    """
    lines: List[str] = []

    def emit(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("`- " if is_last else "|- ")
        calls = f" x{node.calls}" if node.calls > 1 else ""
        label = f"{prefix}{connector}{node.name}{calls}"
        line = f"{label:<46s} {node.seconds:>8.3f}s"
        counters = node.total_counters() if is_root else node.counters
        if show_counters and counters:
            line += "  " + _format_counters(counters)
        lines.append(line.rstrip())
        children = node.merged_children()
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
        for i, child in enumerate(children):
            emit(child, child_prefix, i == len(children) - 1, False)

    emit(root, "", True, True)
    return "\n".join(lines)


def chrome_trace_events(
    root: Span, pid: int = 0, tid: int = 0
) -> List[Dict[str, object]]:
    """Flatten a span tree into Chrome trace-event ``X`` phases.

    Load the resulting JSON (``{"traceEvents": [...]}``) in
    ``chrome://tracing`` or https://ui.perfetto.dev.  ``ts``/``dur`` are in
    microseconds relative to the tracer epoch.
    """
    events: List[Dict[str, object]] = []

    def walk(node: Span) -> None:
        event: Dict[str, object] = {
            "name": node.name,
            "ph": "X",
            "ts": round(node.start * 1e6, 3),
            "dur": round(node.seconds * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if node.counters:
            event["args"] = dict(node.counters)
        events.append(event)
        for child in node.children:
            walk(child)

    walk(root)
    return events


def stage_totals(root: Span) -> Dict[str, float]:
    """Wall seconds per stage name, summed over the whole tree (root
    excluded — its name is the experiment, not a stage)."""
    totals: Dict[str, float] = {}

    def walk(node: Span) -> None:
        for child in node.children:
            totals[child.name] = totals.get(child.name, 0.0) + child.seconds
            walk(child)

    walk(root)
    return totals


def merge_stage_totals(roots: List[Span]) -> Dict[str, float]:
    """Per-stage totals merged across many span trees (one per worker or
    experiment) — how ``--jobs N`` runs collapse into one trace summary."""
    merged: Dict[str, float] = {}
    for root in roots:
        for name, seconds in stage_totals(root).items():
            merged[name] = merged.get(name, 0.0) + seconds
    return merged
