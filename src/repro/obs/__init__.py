"""repro.obs — structured observability for the pipeline.

Two pieces:

* :mod:`repro.obs.tracer` — nested spans + counters threaded through every
  pipeline stage (worldgen, traffic tensors, CDN metrics, provider lists,
  store IO), zero-overhead when disabled, serializable across the process
  pool so ``--jobs N`` runs merge into one trace.
* :mod:`repro.obs.bench` — the ``repro bench`` perf baseline: runs the
  experiment battery cold then warm at a pinned config and writes a
  canonical ``BENCH_<yyyymmdd>.json`` that later optimization PRs diff
  against.
"""

from repro.obs.tracer import (
    Span,
    Tracer,
    chrome_trace_events,
    count,
    current_tracer,
    merge_stage_totals,
    peak_rss_bytes,
    render_span_tree,
    span,
    stage_totals,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace_events",
    "count",
    "current_tracer",
    "merge_stage_totals",
    "peak_rss_bytes",
    "render_span_tree",
    "span",
    "stage_totals",
    "tracing",
]
