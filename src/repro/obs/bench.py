"""``repro bench`` — the canonical performance baseline.

Runs a set of experiments twice through the parallel runner against a
fresh throwaway artifact store — once **cold** (every artifact built from
scratch) and once **warm** (every artifact hydrated from the store) — with
tracing enabled, then folds the traces and run manifests into one
canonical ``BENCH_<yyyymmdd>.json`` document:

* per-experiment cold/warm wall seconds,
* requests simulated and requests simulated per second (from the
  ``cdn.requests_simulated`` trace counter),
* per-stage wall-time breakdowns for the cold and warm passes,
* store hit/miss splits proving the warm pass actually hydrated.

The file is the before/after evidence artifact for performance PRs;
``--quick`` benches at the golden-config scale so CI can smoke it in
seconds.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiments import SPECS
from repro.core.pipeline import clear_contexts
from repro.obs import Span
from repro.worldgen.config import WorldConfig

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "QUICK_CONFIG",
    "bench_path",
    "run_bench",
    "write_bench",
]

#: Layout version of the BENCH JSON document.
BENCH_SCHEMA_VERSION = 1

#: ``--quick`` scale — the golden-config scale, cheap enough for CI smoke.
QUICK_CONFIG = WorldConfig(n_sites=2500, n_days=8)


def _run_pass(
    names: List[str], config: WorldConfig, jobs: int, cache_dir: str
) -> Tuple[List[Dict[str, object]], object, float]:
    """One traced runner pass; returns (payloads, manifest, wall seconds)."""
    from repro.runner.parallel import run_experiments

    # Drop memoized in-process contexts so the pass measures real work:
    # cold must build, warm must hydrate from the store — not reuse live
    # objects from a previous pass.
    clear_contexts()
    started = time.perf_counter()
    payloads, manifest, _ = run_experiments(
        names, config, jobs=jobs, cache_dir=cache_dir, trace=True
    )
    return payloads, manifest, time.perf_counter() - started


def run_bench(
    config: WorldConfig,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    quick: bool = False,
) -> Dict[str, object]:
    """Bench ``names`` (default: the whole registry) at ``config`` scale.

    Returns the canonical BENCH document (see the module docstring).
    Deterministic apart from the timing fields: two runs at the same
    config produce identical keys and identical ``requests_simulated``.

    Raises:
        KeyError: for unknown experiment names.
    """
    names = list(names) if names is not None else list(SPECS)
    unknown = [name for name in names if name not in SPECS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cold, cold_manifest, cold_wall = _run_pass(names, config, jobs, tmp)
        warm, warm_manifest, warm_wall = _run_pass(names, config, jobs, tmp)
        # Contexts built in this process reference the store under the
        # temp dir being deleted; drop them rather than leak them.
        clear_contexts()

    experiments: Dict[str, Dict[str, object]] = {}
    for name, cold_payload, warm_payload in zip(names, cold, warm):
        requests = 0.0
        trace = cold_payload.get("trace")
        if isinstance(trace, dict):
            totals = Span.from_dict(trace).total_counters()
            requests = float(totals.get("cdn.requests_simulated", 0.0))
        cold_seconds = float(cold_payload.get("seconds", 0.0))
        experiments[name] = {
            "ok": bool(cold_payload.get("ok")) and bool(warm_payload.get("ok")),
            "cold_seconds": cold_seconds,
            "warm_seconds": float(warm_payload.get("seconds", 0.0)),
            "requests_simulated": requests,
            "requests_per_sec": requests / cold_seconds if cold_seconds > 0 else 0.0,
            "cache_cold": cold_payload.get("cache", {}),
            "cache_warm": warm_payload.get("cache", {}),
        }

    def _stages(manifest: object) -> Dict[str, float]:
        timings = getattr(manifest, "timings", None) or {}
        return dict(timings.get("stages", {}))

    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "date": time.strftime("%Y%m%d"),
        "quick": bool(quick),
        "jobs": max(1, jobs),
        "config": json.loads(config.to_json()),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "experiments": experiments,
        "stages": {
            "cold": _stages(cold_manifest),
            "warm": _stages(warm_manifest),
        },
        "totals": {
            "cold_seconds": cold_wall,
            "warm_seconds": warm_wall,
            "cold_store_hits": cold_manifest.total_hits(),
            "warm_store_hits": warm_manifest.total_hits(),
        },
    }


def bench_path(out_dir: os.PathLike = ".", date: Optional[str] = None) -> Path:
    """The canonical output path: ``<out_dir>/BENCH_<yyyymmdd>.json``."""
    stamp = date if date is not None else time.strftime("%Y%m%d")
    return Path(os.fspath(out_dir)) / f"BENCH_{stamp}.json"


def write_bench(payload: Dict[str, object], path: os.PathLike) -> Path:
    """Write a BENCH document as stable (sorted-key) indented JSON."""
    target = Path(os.fspath(path))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
