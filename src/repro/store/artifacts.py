"""The content-addressed on-disk artifact store.

Every expensive artifact in the reproduction — the site universe, the
per-day traffic tensors, the 21-combination CDN metric counts, provider
lists, experiment results — is a pure function of a frozen
:class:`~repro.worldgen.config.WorldConfig`.  The store exploits that:
artifacts are addressed by ``(schema version, sha256(config), name)``, so a
world built once is reusable by every later process, CLI invocation, bench
session, and parallel worker.

Durability model (inspired by Tranco's permanently citable list artifacts):

* **Atomic writes** — payloads are written to a temp file in the target
  directory and published with ``os.replace``; readers never observe a
  half-written entry, even with concurrent writers on the same key.
* **Checksummed reads** — each entry starts with a one-line header carrying
  the SHA-256 of the payload.  A corrupt or truncated entry is logged,
  quarantined, and reported as a miss so callers rebuild — the store never
  raises on bad cache state.
* **Quarantine, not destruction** — corrupt entries move to
  ``<root>/quarantine/`` (bounded at :data:`MAX_QUARANTINE`, inspectable
  via ``repro cache ls --quarantined``) so cache-decay incidents stay
  debuggable instead of silently vanishing.
* **Read-only degradation** — when the root is unwritable or the disk
  fills (``ENOSPC``/``EROFS``/``EACCES``), the store warns once, stops
  persisting, and keeps serving reads; callers recompute and the run
  completes instead of crashing mid-batch.
* **Size-capped LRU** — reads refresh an entry's mtime; when the store
  exceeds its byte cap the oldest entries are evicted first.

Every IO path is threaded through the :mod:`repro.faults` choke point, so
``repro chaos`` can deterministically corrupt reads, fill the disk, and
tear writes to prove the guarantees above hold.

Bump :data:`SCHEMA_VERSION` whenever the serialized layout of any artifact
changes; old entries are simply orphaned under the previous version prefix
(see DESIGN.md).
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import logging
import os
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro import obs
from repro.faults import inject as faults
from repro.worldgen.config import WorldConfig

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "MAX_QUARANTINE",
    "ArtifactStore",
    "StoreStats",
    "ArtifactEntry",
    "config_key",
    "default_cache_dir",
]

logger = logging.getLogger(__name__)

#: Serialized-artifact layout version.  Bump when any codec changes shape.
SCHEMA_VERSION = 1

#: Default store size cap: 4 GiB.
DEFAULT_MAX_BYTES = 4 * 1024**3

#: Corrupt blobs kept under ``<root>/quarantine/``; oldest pruned beyond this.
MAX_QUARANTINE = 16

#: Write errors that demote the store to read-only (vs. one-off failures).
_READ_ONLY_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EROFS, errno.EACCES, errno.EPERM, errno.EDQUOT}
)

_HEADER_PREFIX = f"repro-artifact/{SCHEMA_VERSION} sha256=".encode("ascii")


def config_key(config: WorldConfig) -> str:
    """Cache key for a config: sha256 of canonical JSON + schema version.

    Stable across processes, Python versions, and dataclass field
    orderings, because it hashes :meth:`WorldConfig.to_json`'s canonical
    (sorted-key, compact) encoding.
    """
    payload = f"v{SCHEMA_VERSION}:{config.to_json()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def default_cache_dir() -> Path:
    """The store root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-toplists``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-toplists"


@dataclass
class StoreStats:
    """Counters for one store instance, broken down by artifact kind.

    The *kind* of an artifact is the first segment of its name
    (``world``, ``traffic``, ``metrics``, ``providers``, ``results``).
    """

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    puts: Dict[str, int] = field(default_factory=dict)
    corrupt: int = 0
    quarantined: int = 0
    evictions: int = 0
    write_errors: int = 0
    writes_skipped: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record(self, table: Dict[str, int], name: str) -> None:
        kind = name.split("/", 1)[0]
        table[kind] = table.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A JSON-safe copy: ``{kind: {"hits": n, "misses": n, "puts": n}}``."""
        kinds = set(self.hits) | set(self.misses) | set(self.puts)
        return {
            kind: {
                "hits": self.hits.get(kind, 0),
                "misses": self.misses.get(kind, 0),
                "puts": self.puts.get(kind, 0),
            }
            for kind in sorted(kinds)
        }


@dataclass(frozen=True)
class ArtifactEntry:
    """One stored artifact, as reported by :meth:`ArtifactStore.entries`."""

    key: str  # e.g. "v1/<confighash>/traffic/day-003.npz"
    size: int
    mtime: float


class ArtifactStore:
    """Content-addressed artifact store rooted at a directory.

    Args:
        root: store directory (created on demand).
        max_bytes: byte cap; the LRU eviction target.  ``None`` disables
          eviction.
    """

    def __init__(self, root: os.PathLike, max_bytes: Optional[int] = DEFAULT_MAX_BYTES) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._read_only = False
        self._warned_read_only = False
        #: Optional read-path observer, called synchronously on the reading
        #: thread after every payload read attempt as ``(name, status,
        #: seconds)`` with status in ``{"hit", "miss", "corrupt"}`` and
        #: ``seconds`` the wall time of the attempt (injected latency
        #: included).  ``repro.serve`` hangs its circuit breaker here:
        #: corrupt and slow reads count as dependency failures, misses and
        #: fast hits as health signals.  Observer exceptions propagate —
        #: the hook owner is part of the read path by choice.
        self.read_observer: Optional[Callable[[str, str, float], None]] = None

    @property
    def read_only(self) -> bool:
        """True once a fatal write error demoted the store to read-only."""
        return self._read_only

    # ------------------------------------------------------------------
    # Paths.

    def _path(self, cfg_key: str, name: str, ext: str) -> Path:
        return self.root / f"v{SCHEMA_VERSION}" / cfg_key / f"{name}.{ext}"

    # ------------------------------------------------------------------
    # Raw payload IO (header + checksum + atomic replace).

    def _notify_read(self, name: str, status: str, started: float) -> None:
        observer = self.read_observer
        if observer is not None:
            observer(name, status, time.perf_counter() - started)

    def _read_payload(self, cfg_key: str, name: str, ext: str) -> Optional[bytes]:
        path = self._path(cfg_key, name, ext)
        started = time.perf_counter()
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.record(self.stats.misses, name)
            obs.count("store.misses")
            self._notify_read(name, "miss", started)
            return None
        rule = faults.fire("store.read.slow", name)
        if rule is not None:
            # A slow dependency, not a broken one: the payload stays valid
            # but the read-path observer sees the elapsed time balloon.
            logger.warning("injected store.read.slow on %s", name)
            time.sleep(rule.delay_seconds if rule.delay_seconds is not None else 0.25)
        if faults.fire("store.read.corrupt", name) is not None:
            logger.warning("injected store.read.corrupt on %s", name)
            blob = faults.corrupt(blob)
        newline = blob.find(b"\n")
        header = blob[:newline] if newline >= 0 else b""
        payload = blob[newline + 1 :] if newline >= 0 else b""
        expected = (
            header[len(_HEADER_PREFIX) :].decode("ascii", "replace")
            if header.startswith(_HEADER_PREFIX)
            else None
        )
        if expected is None or hashlib.sha256(payload).hexdigest() != expected:
            logger.warning("quarantining corrupt artifact %s", path)
            self.stats.corrupt += 1
            self.stats.record(self.stats.misses, name)
            obs.count("store.misses")
            self._quarantine(path)
            self._notify_read(name, "corrupt", started)
            return None
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass
        self.stats.record(self.stats.hits, name)
        self.stats.bytes_read += len(payload)
        obs.count("store.hits")
        obs.count("store.bytes_read", len(payload))
        self._notify_read(name, "hit", started)
        return payload

    def _write_payload(self, cfg_key: str, name: str, ext: str, payload: bytes) -> None:
        if self._read_only:
            self.stats.writes_skipped += 1
            obs.count("store.writes_skipped")
            return
        path = self._path(cfg_key, name, ext)
        digest = hashlib.sha256(payload).hexdigest()
        header = _HEADER_PREFIX + digest.encode("ascii") + b"\n"
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        body = payload
        try:
            if faults.fire("store.write.enospc", name) is not None:
                logger.warning("injected store.write.enospc on %s", name)
                raise OSError(errno.ENOSPC, "injected disk-full (store.write.enospc)")
            if faults.fire("store.write.partial", name) is not None:
                # Torn-but-published write: full-payload checksum over a
                # truncated body, caught by the next checksummed read.
                logger.warning("injected store.write.partial on %s", name)
                body = payload[: len(payload) // 2]
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(header)
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            # The rename itself lives in the directory; without fsyncing it
            # a crash can resurrect the old entry or lose the new one, and
            # a concurrent reader on a journaled-metadata filesystem may
            # briefly see neither.  Data fsync above + dir fsync here makes
            # publish atomic *and* durable.
            self._fsync_dir(path.parent)
        except OSError as error:
            self._unlink(tmp)
            self.stats.write_errors += 1
            if getattr(error, "errno", None) in _READ_ONLY_ERRNOS:
                self._read_only = True
                if not self._warned_read_only:
                    self._warned_read_only = True
                    logger.warning(
                        "store %s degraded to read-only (%s); artifacts will "
                        "be recomputed instead of persisted", self.root, error,
                    )
            else:
                logger.warning("failed to write artifact %s", path, exc_info=True)
            return
        self.stats.record(self.stats.puts, name)
        self.stats.bytes_written += len(body)
        obs.count("store.puts")
        obs.count("store.bytes_written", len(body))
        self._evict_over_cap(keep=path)

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Best-effort fsync of a directory (publishes renames durably)."""
        try:
            fd = os.open(path, getattr(os, "O_DIRECTORY", os.O_RDONLY))
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Quarantine.

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry to ``<root>/quarantine/`` for inspection.

        The move is atomic (same filesystem), so a reader racing an
        eviction or another quarantine sees either the entry or nothing.
        Falls back to plain eviction when the move itself fails (directory
        unwritable, entry already gone).  The quarantine is bounded:
        oldest residents are pruned beyond :data:`MAX_QUARANTINE`.
        """
        qdir = self.root / "quarantine"
        try:
            rel = path.relative_to(self.root)
        except ValueError:
            rel = Path(path.name)
        target = qdir / f"{int(time.time() * 1000):013d}-{os.getpid()}-{'__'.join(rel.parts)}"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            self._unlink(path)
            return
        self.stats.quarantined += 1
        obs.count("store.quarantined")
        residents = self.quarantined()
        for entry in residents[: max(0, len(residents) - MAX_QUARANTINE)]:
            self._unlink(self.root / entry.key)

    def quarantined(self) -> List[ArtifactEntry]:
        """Quarantined corrupt blobs, oldest first (never counted against
        the byte cap and never hydrated from)."""
        qdir = self.root / "quarantine"
        if not qdir.is_dir():
            return []
        out = []
        for path in qdir.iterdir():
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.is_file():
                out.append(
                    ArtifactEntry(
                        key=str(path.relative_to(self.root)),
                        size=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
        # The filename leads with a zero-padded quarantine timestamp, so
        # key order (not blob mtime, which os.replace preserves) is
        # quarantine order.
        out.sort(key=lambda e: e.key)
        return out

    # ------------------------------------------------------------------
    # Typed accessors.

    def get_arrays(self, cfg_key: str, name: str) -> Optional[Dict[str, np.ndarray]]:
        """Load a numpy artifact, or None on miss/corruption."""
        payload = self._read_payload(cfg_key, name, "npz")
        if payload is None:
            return None
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as data:
                return {key: data[key] for key in data.files}
        except (KeyboardInterrupt, SystemExit):
            # np.load can surface almost anything on a mangled zip, so the
            # handler below is deliberately broad — but an interrupt or a
            # shutdown must never be mistaken for a corrupt artifact.
            raise
        except Exception:
            logger.warning("quarantining unreadable npz artifact %s/%s", cfg_key, name)
            self.stats.corrupt += 1
            self._quarantine(self._path(cfg_key, name, "npz"))
            self._notify_read(name, "corrupt", time.perf_counter())
            return None

    def put_arrays(self, cfg_key: str, name: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Persist a numpy artifact atomically."""
        buffer = io.BytesIO()
        np.savez(buffer, **dict(arrays))
        self._write_payload(cfg_key, name, "npz", buffer.getvalue())

    def get_json(self, cfg_key: str, name: str) -> Optional[Any]:
        """Load a JSON artifact, or None on miss/corruption."""
        payload = self._read_payload(cfg_key, name, "json")
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            logger.warning("quarantining unreadable json artifact %s/%s", cfg_key, name)
            self.stats.corrupt += 1
            self._quarantine(self._path(cfg_key, name, "json"))
            self._notify_read(name, "corrupt", time.perf_counter())
            return None

    def put_json(self, cfg_key: str, name: str, value: Any) -> None:
        """Persist a JSON artifact atomically."""
        payload = json.dumps(value, sort_keys=True).encode("utf-8")
        self._write_payload(cfg_key, name, "json", payload)

    def checksum(self, cfg_key: str, name: str, ext: str = "json") -> Optional[str]:
        """The recorded sha256 of an artifact's payload, read from its
        header line alone — no payload read, no hit/miss accounting.

        This is the store's content version for the blob.  The serving
        layer reuses it as a strong ETag / snapshot version without
        paying for (or being observed performing) a full checksummed
        read; a mismatch against the actual payload still surfaces on
        the next real read.  Returns None when the artifact is absent or
        its header is unrecognizable.
        """
        path = self._path(cfg_key, name, ext)
        try:
            with open(path, "rb") as handle:
                header = handle.readline(len(_HEADER_PREFIX) + 65).rstrip(b"\n")
        except OSError:
            return None
        if not header.startswith(_HEADER_PREFIX):
            return None
        digest = header[len(_HEADER_PREFIX) :].decode("ascii", "replace")
        return digest if len(digest) == 64 else None

    # ------------------------------------------------------------------
    # Inventory, eviction, maintenance.

    def _iter_files(self) -> List[Path]:
        # Only versioned artifact directories count as store contents; run
        # manifests and other sidecars at the root are never evicted.
        if not self.root.is_dir():
            return []
        return [
            path
            for version_dir in self.root.glob("v*")
            if version_dir.is_dir()
            for path in version_dir.rglob("*")
            if path.is_file() and not path.name.startswith(".")
        ]

    def entries(self) -> List[ArtifactEntry]:
        """All stored artifacts, oldest (least recently used) first."""
        out = []
        for path in self._iter_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(
                ArtifactEntry(
                    key=str(path.relative_to(self.root)),
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        out.sort(key=lambda e: (e.mtime, e.key))
        return out

    def total_bytes(self) -> int:
        """Bytes currently stored."""
        return sum(entry.size for entry in self.entries())

    def _evict_over_cap(self, keep: Optional[Path] = None) -> None:
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(entry.size for entry in entries)
        for entry in entries:
            if total <= self.max_bytes:
                break
            path = self.root / entry.key
            if keep is not None and path == keep:
                continue  # never evict the entry being published
            self._unlink(path)
            self.stats.evictions += 1
            total -= entry.size
        # A single oversized artifact may still exceed the cap; that is
        # logged rather than refused (the caller already paid to build it).
        if total > self.max_bytes:
            logger.warning(
                "store over cap after eviction: %d > %d bytes", total, self.max_bytes
            )

    def clear(self) -> int:
        """Delete every stored artifact; returns the bytes freed."""
        freed = self.total_bytes()
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                else:
                    self._unlink(child)
        return freed
