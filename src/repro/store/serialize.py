"""Hydration glue between domain objects and the artifact store.

Artifact names, all under one config key:

* ``world/arrays`` — the flattened :class:`~repro.worldgen.world.World`.
* ``traffic/day-NNN`` — one day's :class:`~repro.traffic.fastpath.DayTraffic`.
* ``metrics/day-NNN`` — all 21 observed CDN combination arrays for a day.
* ``providers/<name>/day-NNN`` / ``providers/<name>/monthly`` — published
  :class:`~repro.providers.base.RankedList` payloads.
* ``results/<experiment>`` — JSON run records (written by the runner).

Every artifact is a pure function of the config, so concurrent writers to
the same name race benignly: whoever wins ``os.replace`` published the same
content.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cdn.filters import ALL_COMBINATIONS
from repro.cdn.metrics import CdnMetricEngine
from repro.providers.base import RankedList, TopListProvider
from repro.store.artifacts import ArtifactStore
from repro.traffic.fastpath import DayTraffic, TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

__all__ = [
    "WORLD_ARTIFACT",
    "load_or_build_world",
    "attach_traffic_store",
    "attach_engine_store",
    "StoredProvider",
    "wrap_providers",
]

WORLD_ARTIFACT = "world/arrays"


def load_or_build_world(store: ArtifactStore, cfg_key: str, config: WorldConfig) -> World:
    """Hydrate a world from the store, building and persisting on miss."""
    arrays = store.get_arrays(cfg_key, WORLD_ARTIFACT)
    if arrays is not None:
        try:
            return World.from_arrays(config, arrays)
        except (KeyError, TypeError, ValueError):
            # Layout drift within one schema version is a bug, but the
            # store's contract is rebuild-not-crash.
            pass
    world = build_world(config)
    store.put_arrays(cfg_key, WORLD_ARTIFACT, world.to_arrays())
    return world


def attach_traffic_store(traffic: TrafficModel, store: ArtifactStore, cfg_key: str) -> None:
    """Wire a traffic model's per-day cache through the store."""

    def load(day: int) -> Optional[DayTraffic]:
        arrays = store.get_arrays(cfg_key, f"traffic/day-{day:03d}")
        if arrays is None:
            return None
        try:
            return DayTraffic.from_arrays(arrays)
        except (KeyError, TypeError, ValueError):
            return None

    def save(day: int, tensors: DayTraffic) -> None:
        store.put_arrays(cfg_key, f"traffic/day-{day:03d}", tensors.to_arrays())

    traffic.day_loader = load
    traffic.day_saver = save


def attach_engine_store(engine: CdnMetricEngine, store: ArtifactStore, cfg_key: str) -> None:
    """Wire the CDN metric engine's per-day observed counts through the store."""

    def load(day: int) -> Optional[Dict[str, np.ndarray]]:
        arrays = store.get_arrays(cfg_key, f"metrics/day-{day:03d}")
        if arrays is None or any(key not in arrays for key in ALL_COMBINATIONS):
            return None
        return {key: arrays[key] for key in ALL_COMBINATIONS}

    def save(day: int, counts: Dict[str, np.ndarray]) -> None:
        store.put_arrays(cfg_key, f"metrics/day-{day:03d}", counts)

    engine.day_loader = load
    engine.day_saver = save


# ---------------------------------------------------------------------------
# Provider list artifacts.


def _encode_list(ranked: RankedList) -> Dict[str, np.ndarray]:
    arrays = {
        "name_rows": ranked.name_rows,
        "day": np.asarray(-1 if ranked.day is None else ranked.day),
        "granularity": np.asarray(ranked.granularity),
    }
    if ranked.bucket_bounds is not None:
        arrays["bucket_bounds"] = ranked.bucket_bounds
    return arrays


def _decode_list(provider: str, arrays: Dict[str, np.ndarray]) -> RankedList:
    day = int(arrays["day"])
    bounds = arrays.get("bucket_bounds")
    return RankedList(
        provider=provider,
        day=None if day < 0 else day,
        granularity=str(arrays["granularity"]),
        name_rows=np.asarray(arrays["name_rows"]),
        bucket_bounds=None if bounds is None else np.asarray(bounds),
    )


class StoredProvider(TopListProvider):
    """A provider wrapper that persists published lists in the store.

    The wrapped provider computes a list at most once per process; the
    store makes that once per *cache lifetime*.  Wrapping happens at the
    registry boundary, so composite providers (Tranco, Trexa) still consume
    their components in-process on a cold build.
    """

    def __init__(self, inner: TopListProvider, store: ArtifactStore, cfg_key: str) -> None:
        super().__init__(inner.world, inner.traffic)
        self._inner = inner
        self._store = store
        self._cfg_key = cfg_key
        self.name = inner.name
        self.granularity = inner.granularity
        self.publishes_daily = inner.publishes_daily

    @property
    def inner(self) -> TopListProvider:
        """The wrapped provider (for callers that need its full surface,
        e.g. the incremental ranking pipeline over Tranco components)."""
        return self._inner

    def _cached_list(self, artifact: str, compute) -> RankedList:
        arrays = self._store.get_arrays(self._cfg_key, artifact)
        if arrays is not None:
            try:
                return _decode_list(self.name, arrays)
            except (KeyError, TypeError, ValueError):
                pass
        ranked = compute()
        self._store.put_arrays(self._cfg_key, artifact, _encode_list(ranked))
        return ranked

    def daily_list(self, day: int) -> RankedList:
        """The published list for ``day``, store-backed."""
        if not self.publishes_daily:
            # Monthly-cadence providers return the same list for any day.
            return self.monthly_list()
        return self._cached_list(
            f"providers/{self.name}/day-{day:03d}", lambda: self._inner.daily_list(day)
        )

    def monthly_list(self) -> RankedList:
        """The whole-window list, store-backed."""
        return self._cached_list(
            f"providers/{self.name}/monthly", self._inner.monthly_list
        )


def wrap_providers(
    providers: Dict[str, TopListProvider], store: ArtifactStore, cfg_key: str
) -> Dict[str, TopListProvider]:
    """Wrap every provider in a :class:`StoredProvider` (order preserved)."""
    return {
        name: StoredProvider(provider, store, cfg_key)
        for name, provider in providers.items()
    }
