"""Persistent, content-addressed experiment artifact store.

See :mod:`repro.store.artifacts` for the on-disk format and
:mod:`repro.store.serialize` for the domain-object codecs.
"""

from repro.store.artifacts import (
    DEFAULT_MAX_BYTES,
    MAX_QUARANTINE,
    SCHEMA_VERSION,
    ArtifactEntry,
    ArtifactStore,
    StoreStats,
    config_key,
    default_cache_dir,
)
from repro.store.serialize import (
    StoredProvider,
    attach_engine_store,
    attach_traffic_store,
    load_or_build_world,
    wrap_providers,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "MAX_QUARANTINE",
    "SCHEMA_VERSION",
    "ArtifactEntry",
    "ArtifactStore",
    "StoreStats",
    "config_key",
    "default_cache_dir",
    "StoredProvider",
    "attach_engine_store",
    "attach_traffic_store",
    "load_or_build_world",
    "wrap_providers",
]
