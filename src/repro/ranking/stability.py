"""Incremental Scheitle-style stability metrics over a daily-list stream.

The two Scheitle et al. studies ("A Long Way to the Top", "Structure and
Stability of Internet Top Lists") characterize top lists by how their
membership moves day over day.  :class:`StabilityTracker` computes that
family incrementally: feed it each day's top-k names as the day lands
and it maintains

* **daily churn** — the fraction of day *t*'s top-k that was absent from
  day *t-1*'s (0.0 for day 0, which has no predecessor);
* **intersection decay** — ``|top_k(0) ∩ top_k(t)| / |top_k(0)|``, the
  paper's measure of how quickly a list forgets its first day;
* **weekday periodicity** — mean churn grouped by weekday, plus the
  weekend/weekday churn ratio, surfacing the weekly rhythm the paper's
  Figure 3 shows for DNS-derived lists.

Days observed from the degraded-ingestion path can be flagged
``degraded``: a carried-forward day is yesterday's list again, so its
0.0 churn is an artifact of the outage, not evidence of stability.  The
churn aggregates (mean churn, weekday buckets, the weekend ratio) skip
flagged days; the raw per-day series keeps them, flagged, so a consumer
can see exactly which samples were excluded and why.

Memory is O(k): only the baseline set, the previous day's set, and the
per-day scalar series are retained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

__all__ = ["StabilityTracker"]

_WEEKDAY_NAMES = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")


class StabilityTracker:
    """Incremental churn / intersection-decay / periodicity tracker."""

    def __init__(self, k: int) -> None:
        """Args:
        k: top-k horizon; only the first ``k`` names of each observed
          day participate in the metrics.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.churn: List[float] = []
        self.intersection: List[float] = []
        self.degraded: List[bool] = []
        self._baseline: Optional[Set[str]] = None
        self._previous: Optional[Set[str]] = None

    @property
    def days_observed(self) -> int:
        """How many days have been folded in."""
        return len(self.churn)

    def observe(self, names: Sequence[str], degraded: bool = False) -> None:
        """Fold in the next day's list (rank order, day indices implicit
        and consecutive from 0).

        Args:
            names: the day's list, rank order.  The top-``k`` prefix must
              not contain duplicates — a list that ranks the same name
              twice is malformed upstream data, and set-based churn over
              it would silently understate list size.
            degraded: flag the day as degraded / carried-forward; its
              churn is recorded but excluded from the aggregates.

        Raises:
            ValueError: when the top-``k`` prefix contains a duplicate
              name.
        """
        prefix = list(names[: self.k])
        top = set(prefix)
        if len(top) != len(prefix):
            seen: Set[str] = set()
            duplicate = ""
            for name in prefix:
                if name in seen:
                    duplicate = name
                    break
                seen.add(name)
            raise ValueError(
                f"duplicate name {duplicate!r} in day "
                f"{self.days_observed}'s top-{self.k}; lists must rank "
                "each name at most once"
            )
        if self._baseline is None:
            self._baseline = top
            self.churn.append(0.0)
            self.intersection.append(1.0)
        else:
            previous = self._previous if self._previous is not None else set()
            new_entries = len(top - previous)
            self.churn.append(new_entries / len(top) if top else 0.0)
            if self._baseline:
                overlap = len(self._baseline & top)
                self.intersection.append(overlap / len(self._baseline))
            else:
                self.intersection.append(1.0)
        self.degraded.append(bool(degraded))
        self._previous = top

    def weekday_summary(self, start_weekday: int) -> Dict:
        """Churn grouped by weekday (0=Monday), day 0 excluded since its
        churn is undefined and degraded days excluded since their churn
        measures the outage, not the list.

        Returns:
            dict with ``mean_churn`` per weekday name (None when no
            sample landed on that weekday) and ``weekend_weekday_ratio``
            (mean Sat/Sun churn over mean Mon-Fri churn; None when
            either side has no samples or weekday churn is zero).
        """
        buckets: List[List[float]] = [[] for _ in range(7)]
        for day in range(1, len(self.churn)):
            if self.degraded[day]:
                continue
            buckets[(start_weekday + day) % 7].append(self.churn[day])
        mean_churn = {
            _WEEKDAY_NAMES[i]: (sum(b) / len(b) if b else None)
            for i, b in enumerate(buckets)
        }
        weekday_samples = [v for b in buckets[:5] for v in b]
        weekend_samples = [v for b in buckets[5:] for v in b]
        ratio: Optional[float] = None
        if weekday_samples and weekend_samples:
            weekday_mean = sum(weekday_samples) / len(weekday_samples)
            weekend_mean = sum(weekend_samples) / len(weekend_samples)
            if weekday_mean > 0.0:
                ratio = weekend_mean / weekday_mean
        return {"mean_churn": mean_churn, "weekend_weekday_ratio": ratio}

    def summary(self, start_weekday: int = 0) -> Dict:
        """The full canonical-JSON-able stability report."""
        churned = [
            self.churn[day]
            for day in range(1, len(self.churn))
            if not self.degraded[day]
        ]
        degraded_days = [
            day for day, flag in enumerate(self.degraded) if flag
        ]
        return {
            "k": self.k,
            "days": self.days_observed,
            "churn": list(self.churn),
            "intersection_decay": list(self.intersection),
            "mean_churn": (sum(churned) / len(churned)) if churned else 0.0,
            "min_intersection": min(self.intersection) if self.intersection else None,
            "degraded_days": degraded_days,
            "weekday": self.weekday_summary(start_weekday),
        }
