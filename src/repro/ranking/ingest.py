"""Degraded-provider ingestion: contracts, gap policy, and the data feed.

Real top lists are messy upstream artifacts: providers skip days, repeat
yesterday's file, truncate, emit duplicate ranks, drift their format, and
— as Alexa did — retire outright.  This module is the validation layer
between "what a provider published" and "what the aggregation consumes".

The data-fault rule (DESIGN.md): every ingest path classifies each
arriving day as **clean**, **repaired**, or **quarantined** against the
provider's schema contract, and never silently coerces malformed input.
Whatever the classification, the resolution the pipeline actually uses —
accept, carry-forward with a staleness age, or an unrecoverable hole —
is recorded per (provider, day) and surfaced as ``data_health``.

Fault decisions come from the ordinary :class:`repro.faults.FaultPlan`
machinery at the ``data.*`` sites, keyed on ``<provider>/day-<ddd>``.
Each key is consulted exactly once per feed (ingestion is strictly
sequential per provider), so every decision is a pure function of
``(seed, provider, day)`` — which is what makes the fault-sequence
digest replayable, in-run and across processes.  Day 0 is the bootstrap
day and is never faulted: carry-forward always has a source.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.faults.plan import DATA_SITES, FaultPlan, FaultRule, day_key
from repro.providers.base import RankedList, TopListProvider
from repro.worldgen.world import World

__all__ = [
    "WIRE_SCHEMA",
    "LEGACY_WIRE_SCHEMA",
    "DEFAULT_TRUNCATE_FRACTION",
    "GapPolicy",
    "DayRecord",
    "ProviderContract",
    "IngestGate",
    "DegradedFeed",
    "ProviderStream",
    "contract_for",
    "decide_day",
    "digest_of_data_log",
    "legacy_wire_doc",
    "wire_doc",
]

#: Canonical wire schema a provider publishes one day's list under.
WIRE_SCHEMA = "repro/day-list/1"

#: The previous wire generation: rank/row entry objects instead of a row
#: array.  Contracts recognize and normalize it (a *repair*, recorded as
#: ``schema_drift``); anything else is quarantined as ``unknown_schema``.
LEGACY_WIRE_SCHEMA = "repro/day-list/0"

#: List fraction kept by ``data.day.truncated`` when the firing rule
#: carries no explicit ``fraction``.
DEFAULT_TRUNCATE_FRACTION = 0.4


def wire_doc(provider: str, day: int, granularity: str,
             rows: Sequence[int]) -> Dict:
    """One published provider day in the canonical wire schema."""
    return {
        "schema": WIRE_SCHEMA,
        "provider": provider,
        "day": int(day),
        "granularity": granularity,
        "rows": [int(r) for r in rows],
    }


def legacy_wire_doc(provider: str, day: int, granularity: str,
                    rows: Sequence[int]) -> Dict:
    """The same day in the drifted legacy schema (entry objects)."""
    return {
        "schema": LEGACY_WIRE_SCHEMA,
        "list": {
            "provider": provider,
            "day": int(day),
            "granularity": granularity,
            "entries": [
                {"rank": i + 1, "row": int(r)} for i, r in enumerate(rows)
            ],
        },
    }


@dataclass(frozen=True)
class GapPolicy:
    """How the pipeline resolves days the contract could not accept.

    Attributes:
        max_carry: consecutive days a provider's last accepted list may
          be carried forward (with a growing staleness age) before the
          gap becomes an unrecoverable hole and the aggregation window
          re-normalizes around it.
        truncation_floor: minimum fraction of the provider's learned
          publication length an arriving day must reach to be repairable;
          shorter days are quarantined as ``truncated``.
    """

    max_carry: int = 3
    truncation_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.max_carry < 0:
            raise ValueError(f"max_carry must be >= 0, got {self.max_carry}")
        if not 0.0 < self.truncation_floor <= 1.0:
            raise ValueError(
                f"truncation_floor must be in (0, 1], got {self.truncation_floor}"
            )


@dataclass(frozen=True)
class DayRecord:
    """The ingest ledger entry for one (provider, day).

    ``status`` is the contract classification of what arrived (``clean``
    / ``repaired`` / ``quarantined`` / ``missing`` / ``retired``);
    ``resolution`` is what the pipeline consumes (``clean`` /
    ``repaired`` / ``carried_forward`` / ``unrecoverable`` /
    ``retired``).  ``staleness`` is days since the provider's last
    accepted publication (0 for a fresh accept, 1 for a stale repeat).
    """

    provider: str
    day: int
    arrived: bool
    status: str
    resolution: str
    staleness: int
    reasons: Tuple[str, ...]
    repairs: Tuple[str, ...]
    injected: Optional[str]
    rows: Optional[Tuple[int, ...]]

    @property
    def degraded(self) -> bool:
        return self.resolution != "clean"

    def health(self) -> Dict:
        """The flat per-day ``data_health`` block the serving layer embeds."""
        return {
            "status": self.resolution,
            "degraded": self.degraded,
            "staleness": self.staleness,
            "reasons": list(self.reasons),
            "repairs": list(self.repairs),
            "injected": self.injected,
        }


class ProviderContract:
    """The schema contract one provider's published days must satisfy.

    Stateless: classification of a day depends only on the document, the
    previous accepted rows (stale-repeat detection), and the learned
    reference length (truncation detection) that the caller passes in.
    """

    def __init__(self, provider: str, granularity: str, n_rows: int,
                 max_length: int,
                 truncation_floor: float = GapPolicy.truncation_floor) -> None:
        if n_rows < 1:
            raise ValueError("contract needs a non-empty name table")
        if max_length < 1:
            raise ValueError("contract needs max_length >= 1")
        self.provider = provider
        self.granularity = granularity
        self.n_rows = n_rows
        self.max_length = max_length
        self.truncation_floor = truncation_floor

    def classify(
        self,
        doc: object,
        *,
        day: int,
        previous_rows: Optional[Tuple[int, ...]] = None,
        reference_length: Optional[int] = None,
    ) -> Tuple[str, Optional[Tuple[int, ...]], Tuple[str, ...], Tuple[str, ...]]:
        """Classify one arriving day.

        Returns ``(status, rows, reasons, repairs)`` where status is
        ``clean`` / ``repaired`` / ``quarantined`` and rows is the
        accepted (possibly repaired) row tuple, or None on quarantine.
        """
        reasons: List[str] = []
        repairs: List[str] = []

        def quarantined(reason: str):
            return "quarantined", None, tuple(reasons + [reason]), tuple(repairs)

        if not isinstance(doc, dict):
            return quarantined("not_a_document")
        schema = doc.get("schema")
        if schema == WIRE_SCHEMA:
            body = doc
            raw_rows = doc.get("rows")
        elif schema == LEGACY_WIRE_SCHEMA:
            body = doc.get("list")
            if not isinstance(body, dict):
                return quarantined("malformed_legacy_document")
            entries = body.get("entries")
            if not isinstance(entries, list) or not all(
                isinstance(e, dict) and "row" in e for e in entries
            ):
                return quarantined("malformed_legacy_document")
            raw_rows = [e["row"] for e in entries]
            repairs.append("schema_drift")
        else:
            return quarantined("unknown_schema")
        if body.get("provider") != self.provider:
            return quarantined("provider_mismatch")
        if body.get("day") != day:
            # Non-contiguous / relabeled day numbers: the stream is
            # strictly sequential, a day claiming another index is not
            # trustworthy as *this* day.
            return quarantined("day_mismatch")
        if body.get("granularity") != self.granularity:
            return quarantined("granularity_mismatch")
        if not isinstance(raw_rows, list):
            return quarantined("malformed_rows")
        rows: List[int] = []
        for value in raw_rows:
            if isinstance(value, bool) or not isinstance(value, int):
                return quarantined("malformed_rows")
            if not 0 <= value < self.n_rows:
                return quarantined("row_out_of_range")
            rows.append(value)
        if not rows:
            return quarantined("empty_day")
        if len(set(rows)) != len(rows):
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
            repairs.append("duplicate_ranks")
        if len(rows) > self.max_length:
            rows = rows[: self.max_length]
            repairs.append("overlong")
        if reference_length is not None and len(rows) < reference_length:
            if len(rows) < self.truncation_floor * reference_length:
                return quarantined("truncated")
            repairs.append("short_day")
        if previous_rows is not None and tuple(rows) == previous_rows:
            repairs.append("stale_repeat")
        status = "repaired" if repairs else "clean"
        return status, tuple(rows), tuple(reasons), tuple(repairs)


def contract_for(provider: TopListProvider, world: World,
                 truncation_floor: float = GapPolicy.truncation_floor
                 ) -> ProviderContract:
    """The contract a simulated provider's published days must satisfy."""
    return ProviderContract(
        provider=provider.name,
        granularity=provider.granularity,
        n_rows=len(world.names.strings),
        max_length=world.config.list_length,
        truncation_floor=truncation_floor,
    )


class IngestGate:
    """Stateful per-provider ingestion: contract + gap policy + ledger.

    Days must be ingested strictly in order.  Every day produces exactly
    one :class:`DayRecord`; nothing is ever silently coerced or dropped.
    """

    def __init__(self, contract: ProviderContract,
                 policy: Optional[GapPolicy] = None) -> None:
        self.contract = contract
        self.policy = policy or GapPolicy()
        self.records: List[DayRecord] = []
        self.retired_at: Optional[int] = None
        self._last_rows: Optional[Tuple[int, ...]] = None
        self._reference_length: Optional[int] = None
        self._staleness = 0

    @property
    def next_day(self) -> int:
        return len(self.records)

    def ingest(self, day: int, doc: Optional[object],
               injected: Optional[str] = None) -> DayRecord:
        """Classify and resolve one arriving day (or its absence).

        Args:
            day: the day index; must equal :attr:`next_day`.
            doc: the published wire document, or None when nothing
              arrived (missing day, or a retired provider).
            injected: the ``data.*`` site that degraded this day, if the
              feed knows it — recorded in the ledger for audit, never
              consulted for classification (the contract must catch the
              damage on its own).
        """
        if day != self.next_day:
            raise ValueError(
                f"days must be ingested in order: got day {day}, "
                f"expected {self.next_day}"
            )
        if injected == "data.provider.retired" and self.retired_at is None:
            self.retired_at = day
        if self.retired_at is not None:
            # Retirement is one-way: the component is dropped from
            # aggregation (no carry — the provider is gone, not late).
            self._staleness += 1
            record = DayRecord(
                provider=self.contract.provider, day=day, arrived=False,
                status="retired", resolution="retired",
                staleness=self._staleness, reasons=("provider_retired",),
                repairs=(), injected=injected, rows=None,
            )
            self.records.append(record)
            return record
        if doc is None:
            return self._resolve_gap(day, "missing", ("missing_day",),
                                     (), injected)
        status, rows, reasons, repairs = self.contract.classify(
            doc, day=day, previous_rows=self._last_rows,
            reference_length=self._reference_length,
        )
        if status == "quarantined":
            return self._resolve_gap(day, status, reasons, repairs, injected)
        assert rows is not None
        self._last_rows = rows
        self._reference_length = max(self._reference_length or 0, len(rows))
        self._staleness = 1 if "stale_repeat" in repairs else 0
        record = DayRecord(
            provider=self.contract.provider, day=day, arrived=True,
            status=status, resolution=status, staleness=self._staleness,
            reasons=reasons, repairs=repairs, injected=injected, rows=rows,
        )
        self.records.append(record)
        return record

    def _resolve_gap(self, day: int, status: str, reasons: Tuple[str, ...],
                     repairs: Tuple[str, ...],
                     injected: Optional[str]) -> DayRecord:
        self._staleness += 1
        if (self._last_rows is not None
                and self._staleness <= self.policy.max_carry):
            resolution = "carried_forward"
            rows: Optional[Tuple[int, ...]] = self._last_rows
        else:
            resolution = "unrecoverable"
            rows = None
        record = DayRecord(
            provider=self.contract.provider, day=day,
            arrived=status not in ("missing",), status=status,
            resolution=resolution, staleness=self._staleness,
            reasons=reasons, repairs=repairs, injected=injected, rows=rows,
        )
        self.records.append(record)
        return record

    def counts(self) -> Dict[str, int]:
        """Resolution counts over the ledger (for ``/metricz``)."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.resolution] = out.get(record.resolution, 0) + 1
        return out


def decide_day(plan: FaultPlan, provider: str,
               day: int) -> Tuple[Optional[str], Optional[FaultRule]]:
    """Consult the ``data.*`` sites for one (provider, day) key.

    Rules pinned to this exact key are consulted first (a background
    wildcard must not steal a pinned day), then the remaining sites in
    canonical :data:`DATA_SITES` order; the first fire wins — at most one
    data fault per provider-day.  Day 0 never faults (bootstrap day).
    """
    if day <= 0:
        return None, None
    key = day_key(provider, day)
    pinned = [r.site for r in plan.rules
              if r.site in DATA_SITES and r.match == key]
    order = list(dict.fromkeys(pinned))
    order += [site for site in DATA_SITES if site not in order]
    for site in order:
        rule = plan.fire(site, key)
        if rule is not None:
            return site, rule
    return None, None


def digest_of_data_log(entries: Sequence[Dict]) -> str:
    """Order-insensitive digest of a data-fault log.

    Canonicalized by sorting ``key:site`` lines, so concurrent serving
    paths that interleave providers differently still produce the same
    digest for the same decisions.
    """
    lines = sorted(f"{e['key']}:{e['site']}" for e in entries)
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


class DegradedFeed:
    """A fault-armed publisher: clean provider days, degraded on the wire.

    Wraps the simulated providers and applies plan-decided ``data.*``
    faults to each published day, producing exactly what a messy real
    provider would: a wire document (canonical or drifted), yesterday's
    file again, a truncated file, or nothing at all.  Keeps the ordered
    fault log whose digest the chaos-data gate replays.
    """

    def __init__(self, providers: Mapping[str, TopListProvider],
                 plan: Optional[FaultPlan]) -> None:
        self._providers = dict(providers)
        self.plan = plan
        self.retired: Dict[str, int] = {}
        self.fault_log: List[Dict] = []
        self._consulted: List[Tuple[str, int]] = []
        self._consulted_keys: set = set()
        self._published: Dict[str, List[int]] = {}

    def fetch(self, provider: str, day: int
              ) -> Tuple[Optional[Dict], Optional[str]]:
        """Publish one provider day; returns ``(doc, injected_site)``.

        ``doc`` is None for a missing day or a retired provider;
        ``injected_site`` names the fault that degraded this day (for
        the ledger — ``data.provider.retired`` is sticky and reported
        for every post-retirement day, though only the first consult
        fires and is logged).
        """
        if provider not in self._providers:
            raise KeyError(f"unknown provider {provider!r}")
        retired_at = self.retired.get(provider)
        if retired_at is not None and day >= retired_at:
            return None, "data.provider.retired"
        site: Optional[str] = None
        rule: Optional[FaultRule] = None
        if self.plan is not None and day > 0:
            key = (provider, day)
            if key in self._consulted_keys:
                raise ValueError(
                    f"day {day} of {provider!r} consulted twice; the feed "
                    "is strictly sequential per provider"
                )
            self._consulted_keys.add(key)
            self._consulted.append(key)
            site, rule = decide_day(self.plan, provider, day)
            if site is not None:
                obs.count(f"faults.{site}")
                self.fault_log.append(
                    {"key": day_key(provider, day), "site": site,
                     "provider": provider, "day": day}
                )
        if site == "data.provider.retired":
            self.retired[provider] = day
            return None, site
        if site == "data.day.missing":
            return None, site
        source = self._providers[provider]
        if site == "data.day.stale_repeat" and provider in self._published:
            rows = list(self._published[provider])
        else:
            rows = [int(r) for r in source.daily_list(day).name_rows]
            if site == "data.day.truncated":
                fraction = (rule.fraction if rule and rule.fraction is not None
                            else DEFAULT_TRUNCATE_FRACTION)
                rows = rows[: max(1, int(len(rows) * fraction))]
            elif site == "data.day.duplicate_ranks" and len(rows) >= 4:
                rows[len(rows) // 2] = rows[0]
                rows[(2 * len(rows)) // 3] = rows[1]
        self._published[provider] = rows
        if site == "data.day.schema_drift":
            return legacy_wire_doc(provider, day, source.granularity,
                                   rows), site
        return wire_doc(provider, day, source.granularity, rows), site

    def fired_sites(self) -> Dict[str, int]:
        """Fires per ``data.*`` site, from the feed's own log."""
        out: Dict[str, int] = {}
        for entry in self.fault_log:
            out[entry["site"]] = out.get(entry["site"], 0) + 1
        return out

    def fault_digest(self) -> str:
        return digest_of_data_log(self.fault_log)

    def replay_digest(self) -> str:
        """Re-run every recorded consult against a fresh plan copy.

        Equality with :meth:`fault_digest` proves the decision procedure
        is a pure function of (seed, provider, day) — no hidden state
        leaked into the sequence the run actually took.
        """
        if self.plan is None:
            return digest_of_data_log([])
        twin = FaultPlan.from_dict(self.plan.to_dict())
        log: List[Dict] = []
        for provider, day in self._consulted:
            site, _ = decide_day(twin, provider, day)
            if site is not None:
                log.append({"key": day_key(provider, day), "site": site})
        return digest_of_data_log(log)


class ProviderStream:
    """Serve-side sequential ingestion of one provider's published days.

    Resolution is strictly in day order with memoization, so a request
    for day *d* first materializes days ``0..d-1`` — which is what keeps
    every ``data.*`` consult a single, request-order-independent event.
    The stream never refuses a day: past the carry bound it keeps serving
    the last accepted list, but marks it ``unrecoverable`` (or
    ``retired``) with its staleness age in ``data_health`` — stale bytes
    are acceptable, unmarked stale bytes are not.
    """

    def __init__(self, provider: TopListProvider, world: World,
                 feed: DegradedFeed,
                 policy: Optional[GapPolicy] = None) -> None:
        self._provider = provider
        self._world = world
        self._feed = feed
        policy = policy or GapPolicy()
        self._gate = IngestGate(
            contract_for(provider, world,
                         truncation_floor=policy.truncation_floor),
            policy,
        )
        self._resolved: List[Tuple[RankedList, Dict]] = []
        self._last_served: Optional[RankedList] = None

    @property
    def gate(self) -> IngestGate:
        return self._gate

    def resolve(self, day: int) -> Tuple[RankedList, Dict]:
        """The list and ``data_health`` block served for ``day``."""
        if day < 0:
            raise ValueError("day must be >= 0")
        while len(self._resolved) <= day:
            self._resolved.append(self._resolve_next())
        return self._resolved[day]

    def _resolve_next(self) -> Tuple[RankedList, Dict]:
        day = len(self._resolved)
        doc, injected = self._feed.fetch(self._provider.name, day)
        record = self._gate.ingest(day, doc, injected=injected)
        health = record.health()
        if record.resolution == "clean" and injected is None:
            # Clean day straight from the source: serve the provider's
            # own list object so bucketed providers keep their bounds
            # and the clean path stays bit-identical to no-chaos serving.
            ranked = self._provider.daily_list(day)
        elif record.rows is not None:
            ranked = RankedList(
                provider=self._provider.name, day=day,
                granularity=self._provider.granularity,
                name_rows=np.asarray(record.rows, dtype=np.int64),
            )
        elif self._last_served is not None:
            previous = self._last_served
            ranked = RankedList(
                provider=previous.provider, day=day,
                granularity=previous.granularity,
                name_rows=previous.name_rows,
                bucket_bounds=previous.bucket_bounds,
            )
        else:
            # Unreachable with a day-0 bootstrap, but never serve
            # fabricated data: fall back to the source list, marked.
            ranked = self._provider.daily_list(day)
        self._last_served = ranked
        return ranked, health

    def counts(self) -> Dict[str, object]:
        """The per-provider block ``/metricz`` reports."""
        gate = self._gate
        return {
            "resolutions": gate.counts(),
            "retired_at": gate.retired_at,
            "max_staleness": max(
                (r.staleness for r in gate.records), default=0
            ),
            "days_resolved": len(gate.records),
        }
