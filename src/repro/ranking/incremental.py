"""Rolling-window Dowdall aggregation, bit-identical to batch recompute.

Why not a running ``+=`` / ``-=`` score accumulator?  Float addition is
not associative: subtracting day *t - w*'s contribution from a running
sum does not, in general, restore the bits that summing the surviving
days directly would produce.  A naive fold-in/fold-out accumulator is
therefore only *approximately* equal to the batch recompute, and the
acceptance bar here is byte equality.

Instead the window caches each day's per-component rank vectors — the
expensive part, since producing them means simulating that day's
component lists — and emits scores by summing the cached vectors in
exactly the batch order (components outer, days ascending inner, the
order ``TrancoProvider.daily_list`` uses).  Incremental work per day is
O(components) list simulations plus an O(window x n_sites) re-sum of
cached vectors, which is vector adds only and microscopic next to list
production.  Because the emit performs the *same* float additions in the
*same* order on the *same* inputs as the batch path, the result is
bit-identical by construction — and :func:`proof_of_equivalence` checks
that construction instead of trusting it.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.providers.base import RankedList
from repro.providers.tranco import TrancoProvider, dowdall_scores
from repro.ranking.snapshots import snapshot_doc

__all__ = [
    "ContinuousTranco",
    "RollingDowdall",
    "gap_dowdall_scores",
    "proof_of_equivalence",
]


def gap_dowdall_scores(
    cells: Sequence[Sequence[Optional[np.ndarray]]], n_sites: int
) -> np.ndarray:
    """Dowdall aggregation over a window with unrecoverable holes.

    Args:
        cells: per component, the window's rank vectors in day-ascending
          order, with ``None`` marking a day that could not be recovered
          (quarantined past the carry-forward bound, or retired).
        n_sites: universe size.

    A complete window takes the exact flat batch order (components outer,
    days ascending inner) — the same float additions as
    :func:`repro.providers.tranco.dowdall_scores` on the clean path, so
    clean-window emissions stay bit-identical to the undegraded pipeline.
    A window with holes switches to per-component accumulation with
    window-shrink re-normalization: each component's partial sum is
    scaled by ``window_days / present_days`` so a component that skipped
    a day is not structurally outranked by complete components, and a
    fully-absent (retired) component simply contributes nothing — the
    surviving components' mutual ordering is untouched.  Both the rolling
    emitter and the batch twin call this one function, so degraded
    equivalence is still an identical-float-program property.
    """
    if not cells:
        raise ValueError("need at least one component")
    expected = len(cells[0])
    if any(len(comp) != expected for comp in cells):
        raise ValueError("all components must cover the same window days")
    if expected == 0:
        raise ValueError("empty window")
    if all(v is not None for comp in cells for v in comp):
        flat = [v for comp in cells for v in comp]
        return dowdall_scores(flat, n_sites)
    total = np.zeros(n_sites)
    for comp in cells:
        present = [v for v in comp if v is not None]
        if not present:
            continue
        scores = dowdall_scores(present, n_sites)
        if len(present) < expected:
            scores = scores * (float(expected) / float(len(present)))
        total = total + scores
    return total


class RollingDowdall:
    """Rolling-window Dowdall score accumulator.

    Days must be fed in order via :meth:`fold_in`; each call drops the
    day that just left the trailing window, so memory is bounded at
    ``window x components`` cached rank vectors regardless of stream
    length.
    """

    def __init__(self, n_sites: int, window: int, n_components: int) -> None:
        """Args:
        n_sites: universe size (length of every rank vector).
        window: trailing window length in days (Tranco uses 30).
        n_components: number of component lists per day.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        if n_components < 1:
            raise ValueError("need at least one component")
        self.n_sites = n_sites
        self.window = window
        self.n_components = n_components
        # day -> per-component rank vectors, insertion-ordered (ascending).
        self._days: "OrderedDict[int, List[np.ndarray]]" = OrderedDict()
        self._last_day: Optional[int] = None

    @property
    def days_held(self) -> List[int]:
        """The days currently inside the window, ascending."""
        return list(self._days)

    def fold_in(
        self, day: int, component_ranks: Sequence[Optional[np.ndarray]]
    ) -> None:
        """Fold day ``day``'s component rank vectors into the window,
        evicting any day older than ``day - window + 1``.

        Days must arrive consecutively (each call one day after the
        previous), matching how provider updates land.  A ``None`` entry
        records an unrecoverable hole for that component-day — a day the
        ingestion layer quarantined past its carry-forward bound, or a
        retired provider; :meth:`scores` re-normalizes around holes.
        """
        if self._last_day is not None and day != self._last_day + 1:
            raise ValueError(
                f"days must be consecutive: got day {day} after {self._last_day}"
            )
        if len(component_ranks) != self.n_components:
            raise ValueError(
                f"expected {self.n_components} component vectors, "
                f"got {len(component_ranks)}"
            )
        vectors: List[Optional[np.ndarray]] = []
        for ranks in component_ranks:
            if ranks is None:
                vectors.append(None)
                continue
            arr = np.asarray(ranks, dtype=np.float64)
            if arr.shape != (self.n_sites,):
                raise ValueError(
                    f"rank vector shape {arr.shape} != ({self.n_sites},)"
                )
            vectors.append(arr)
        self._days[day] = vectors
        self._last_day = day
        floor = day - self.window + 1
        while self._days and next(iter(self._days)) < floor:
            self._days.popitem(last=False)

    def scores(self) -> np.ndarray:
        """Dowdall scores over the current window, bit-identical to the
        batch recompute over the same days.

        A hole-free window replays the cached vectors through
        :func:`dowdall_scores` in canonical batch order — components
        outer, days ascending inner — so every float addition happens in
        the order the batch path would perform it.  Windows with holes
        take :func:`gap_dowdall_scores`' re-normalized per-component
        path, which the degraded batch twin shares.
        """
        if not self._days:
            raise ValueError("no days folded in yet")
        days = list(self._days)
        cells = [
            [self._days[d][c] for d in days] for c in range(self.n_components)
        ]
        return gap_dowdall_scores(cells, self.n_sites)

    def window_cells(self) -> List[List[Optional[np.ndarray]]]:
        """The current window's cached vectors, components outer, days
        ascending inner — the exact input :meth:`scores` aggregates."""
        days = list(self._days)
        return [
            [self._days[d][c] for d in days] for c in range(self.n_components)
        ]


class ContinuousTranco:
    """Streams a :class:`TrancoProvider`'s days through a rolling window.

    Each :meth:`advance` folds the next day's component lists in (the
    only per-day simulation work) and emits that day's ranked list from
    the accumulator — the incremental twin of ``tranco.daily_list(day)``.
    """

    def __init__(self, tranco: TrancoProvider) -> None:
        self._tranco = tranco
        world = tranco.world
        self._world = world
        self._rolling = RollingDowdall(
            n_sites=world.n_sites,
            window=world.config.tranco_window,
            n_components=len(tranco.components),
        )
        self._next_day = 0

    @property
    def next_day(self) -> int:
        """The day the next :meth:`advance` call will emit."""
        return self._next_day

    def advance(self) -> RankedList:
        """Fold the next day in and emit its list."""
        day = self._next_day
        self._rolling.fold_in(day, self._tranco.component_day_ranks(day))
        self._next_day = day + 1
        return self._tranco.assemble_scores(self._rolling.scores(), day)

    def lists(self, n_days: Optional[int] = None) -> Iterator[RankedList]:
        """Emit lists for the next ``n_days`` days (default: the world's
        full day range from the current position)."""
        if n_days is None:
            n_days = self._world.config.n_days - self._next_day
        for _ in range(max(0, n_days)):
            yield self.advance()


def proof_of_equivalence(
    tranco: TrancoProvider,
    days: Optional[Sequence[int]] = None,
    k: Optional[int] = None,
) -> Dict:
    """Prove (or refute) bit-identity of incremental vs batch lists.

    Runs the incremental pipeline from day 0 through the last requested
    day and, for each requested day, compares against a fresh batch
    ``daily_list`` call three ways: raw score bits, ranked ``name_rows``,
    and the sha256 of the canonical JSON snapshot — the strongest check,
    since the snapshot bytes are what the serving layer versions.

    Returns a report dict with per-day digests and any mismatches.
    """
    world = tranco.world
    if days is None:
        days = range(world.config.n_days)
    wanted = sorted(set(int(d) for d in days))
    if not wanted:
        raise ValueError("no days to verify")
    if wanted[0] < 0:
        raise ValueError("days must be >= 0")
    stream = ContinuousTranco(tranco)
    checked = []
    mismatches = []
    for day in range(wanted[-1] + 1):
        incremental = stream.advance()
        if day not in wanted:
            continue
        batch = tranco.daily_list(day)
        inc_scores = stream._rolling.scores()
        batch_vectors = [
            tranco._component_site_ranks(provider, d)
            for provider in tranco.components
            for d in tranco.window_days(day)
        ]
        batch_scores = dowdall_scores(batch_vectors, world.n_sites)
        inc_doc = snapshot_doc(incremental, world, k=k)
        batch_doc = snapshot_doc(batch, world, k=k)
        inc_bytes = json.dumps(inc_doc, sort_keys=True).encode()
        batch_bytes = json.dumps(batch_doc, sort_keys=True).encode()
        inc_digest = hashlib.sha256(inc_bytes).hexdigest()
        batch_digest = hashlib.sha256(batch_bytes).hexdigest()
        entry = {
            "day": day,
            "scores_identical": inc_scores.tobytes() == batch_scores.tobytes(),
            "ranks_identical": np.array_equal(incremental.name_rows, batch.name_rows),
            "snapshot_identical": inc_bytes == batch_bytes,
            "incremental_sha256": inc_digest,
            "batch_sha256": batch_digest,
        }
        checked.append(entry)
        if not (
            entry["scores_identical"]
            and entry["ranks_identical"]
            and entry["snapshot_identical"]
        ):
            mismatches.append(day)
    return {
        "provider": tranco.name,
        "window": world.config.tranco_window,
        "days_checked": len(checked),
        "identical": not mismatches,
        "mismatched_days": mismatches,
        "days": checked,
    }
