"""Versioned list snapshots and rank diffs.

A *snapshot* is the canonical JSON document for one (provider, day)
list — the unit the serving layer versions.  Its identity is the sha256
of its canonical bytes (``json.dumps(..., sort_keys=True)``), which is
exactly the checksum the artifact store records for the same payload,
so store checksums double as strong ETags.

A *diff* compares two days' top-k prefixes the way the stability
literature does: who entered, who fell out, and how the survivors moved.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.providers.base import RankedList
from repro.worldgen.world import World

__all__ = ["canonical_bytes", "diff_ranked", "snapshot_doc", "snapshot_etag"]


def canonical_bytes(doc: Dict) -> bytes:
    """The canonical JSON encoding every digest and ETag is taken over."""
    return json.dumps(doc, sort_keys=True).encode()


def snapshot_etag(body: bytes) -> str:
    """Strong HTTP ETag for a response body: quoted sha256 hex."""
    return '"%s"' % hashlib.sha256(body).hexdigest()


def snapshot_doc(
    ranked: RankedList,
    world: World,
    *,
    k: Optional[int] = None,
    data_health: Optional[Dict] = None,
) -> Dict:
    """The canonical snapshot document for a ranked list (optionally its
    top-``k`` slice).

    ``data_health`` — when the list came through the degraded-ingestion
    layer — is embedded in the document, so a degraded emission can never
    share bytes (or an ETag) with a clean one: the marking is part of the
    versioned identity, not response decoration.  Clean-pipeline
    snapshots omit the key entirely, keeping their bytes unchanged.
    """
    sliced = ranked.head(k) if k is not None else ranked
    bounds = sliced.bucket_bounds
    doc = {
        "provider": sliced.provider,
        "day": sliced.day,
        "granularity": sliced.granularity,
        "bucketed": sliced.is_bucketed,
        "bucket_bounds": None if bounds is None else [int(b) for b in bounds],
        "count": len(sliced),
        "names": sliced.strings(world),
    }
    if data_health is not None:
        doc["data_health"] = data_health
    return doc


def diff_ranked(
    from_names: Sequence[str],
    to_names: Sequence[str],
) -> Dict:
    """Rank diff between two lists of names (rank 1 first).

    Returns:
        dict with ``entrants`` (in *to* but not *from*, with their new
        rank), ``dropouts`` (in *from* but not *to*, with the rank they
        held), ``moved`` (in both at different ranks, ``delta`` positive
        when the name climbed), and ``unchanged`` (count of names whose
        rank is identical).  Entry lists are ordered by rank for
        deterministic bytes.
    """
    from_rank = {name: i + 1 for i, name in enumerate(from_names)}
    to_rank = {name: i + 1 for i, name in enumerate(to_names)}
    entrants: List[Dict] = []
    moved: List[Dict] = []
    unchanged = 0
    for name, rank in to_rank.items():
        old = from_rank.get(name)
        if old is None:
            entrants.append({"name": name, "rank": rank})
        elif old != rank:
            moved.append(
                {"name": name, "from_rank": old, "to_rank": rank, "delta": old - rank}
            )
        else:
            unchanged += 1
    dropouts = [
        {"name": name, "rank": rank}
        for name, rank in from_rank.items()
        if name not in to_rank
    ]
    entrants.sort(key=lambda e: e["rank"])
    dropouts.sort(key=lambda e: e["rank"])
    moved.sort(key=lambda e: e["to_rank"])
    return {
        "entrants": entrants,
        "dropouts": dropouts,
        "moved": moved,
        "unchanged": unchanged,
        "from_count": len(from_rank),
        "to_count": len(to_rank),
    }
