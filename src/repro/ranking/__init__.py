"""Continuous ranking: incremental daily lists with stability analytics.

Batch list production (``TrancoProvider.daily_list``) recomputes the full
30-day Dowdall aggregation for every day served.  This package turns list
production into a streaming pipeline: each day's provider updates are
folded into a rolling window (day *t* in, day *t - window* out), so the
expensive per-day work — producing the component lists — happens exactly
once per day, and emitting day *t*'s list touches only cached window
state.

The rolling accumulator is constructed so its output is **bit-identical**
to the batch recompute (see :class:`RollingDowdall` for the float
ordering argument), and :func:`proof_of_equivalence` checks that claim
day by day against the batch path, down to the bytes of the canonical
JSON snapshots.

On top of the stream sit the Scheitle-style stability metrics ("A Long
Way to the Top" / "Structure and Stability of Internet Top Lists"):
daily rank churn, top-k intersection decay, and weekday periodicity,
computed incrementally as each day lands (:class:`StabilityTracker`).

``repro.serve`` exposes the results as versioned, cache-validatable list
snapshots (strong ETags + ``If-None-Match``), rank diffs
(``/v1/lists/<provider>/diff``) and churn surfaces
(``/v1/lists/<provider>/stability``).

Because real providers are messy (the paper's core premise — and Alexa
retired mid-study), the pipeline also has a degraded twin: days arrive
through a fault-armed :class:`DegradedFeed`, each component's
:class:`IngestGate` classifies them clean / repaired / quarantined
against its :class:`ProviderContract`, gaps resolve by bounded
carry-forward or window-shrink re-normalization
(:func:`gap_dowdall_scores`), and every emission carries a
``data_health`` block.  :func:`proof_of_degraded_equivalence` holds the
degraded stream to the same bit-identity bar as the clean one.
"""

from repro.ranking.degraded import DegradedTranco, proof_of_degraded_equivalence
from repro.ranking.incremental import (
    ContinuousTranco,
    RollingDowdall,
    gap_dowdall_scores,
    proof_of_equivalence,
)
from repro.ranking.ingest import (
    DegradedFeed,
    GapPolicy,
    IngestGate,
    ProviderContract,
    ProviderStream,
    contract_for,
)
from repro.ranking.snapshots import diff_ranked, snapshot_doc, snapshot_etag
from repro.ranking.stability import StabilityTracker

__all__ = [
    "ContinuousTranco",
    "DegradedFeed",
    "DegradedTranco",
    "GapPolicy",
    "IngestGate",
    "ProviderContract",
    "ProviderStream",
    "RollingDowdall",
    "StabilityTracker",
    "contract_for",
    "diff_ranked",
    "gap_dowdall_scores",
    "proof_of_degraded_equivalence",
    "proof_of_equivalence",
    "snapshot_doc",
    "snapshot_etag",
]
